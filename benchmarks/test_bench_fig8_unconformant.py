"""Bench: regenerate Figure 8 (unconformant customer-prefix propagation)."""

from __future__ import annotations

from repro.experiments import fig8_unconformant
from repro.topology.classify import SizeClass

LARGE_M = (SizeClass.LARGE, True)
SMALL_M = (SizeClass.SMALL, True)


def test_bench_fig8(benchmark, bench_world):
    cdfs = benchmark(fig8_unconformant.run, bench_world)
    print()
    print(fig8_unconformant.render(cdfs))
    # Figure 8: every large MANRS AS stays below 15% unconformant, and
    # the median is low single digits (2.5% in the paper).
    assert cdfs[LARGE_M].n > 0
    assert cdfs[LARGE_M].maximum < 15.0
    assert cdfs[LARGE_M].median < 8.0
    # Small MANRS ASes propagate essentially nothing unconformant.
    assert cdfs[SMALL_M].median == 0.0
