"""Bench: regenerate Findings 8.3/8.4 (Action 4 conformance)."""

from __future__ import annotations

from repro.experiments import f83_action4
from repro.manrs.actions import Program


def test_bench_f83(benchmark, bench_world):
    summaries = benchmark(f83_action4.run, bench_world)
    print()
    print(f83_action4.render(summaries))
    # Paper: 95% of ISPs, 86% (18/21) of CDNs conformant.
    assert summaries[Program.ISP].pct_conformant >= 88.0
    assert 60.0 <= summaries[Program.CDN].pct_conformant <= 97.0
    assert summaries[Program.CDN].unconformant_asns
