"""Bench: regenerate Figure 6 (RPKI saturation over time)."""

from __future__ import annotations

from repro.experiments import fig6_saturation


def test_bench_fig6(benchmark, bench_world):
    points = benchmark.pedantic(
        fig6_saturation.run, args=(bench_world,), rounds=1, iterations=1
    )
    print()
    print(fig6_saturation.render(points))
    final = points[-1]
    # Paper (May 2022): MANRS 58.2% vs non-MANRS 30.2% — roughly 2x.
    assert final.manrs_saturation > 1.5 * final.other_saturation
    assert 40.0 <= final.manrs_saturation <= 80.0
    # The CDN-program launch produces a pronounced 2020 jump.  (Early
    # years have few members, so a single big adopter can also produce a
    # large early swing — we assert the 2020 jump exists, not that it is
    # the unique maximum.)
    by_year = {p.year: p.manrs_saturation for p in points}
    jumps = {y: by_year[y] - by_year[y - 1] for y in range(2016, 2023)}
    assert jumps[2020] > 8.0
    assert by_year[2022] > by_year[2019] + 15.0
