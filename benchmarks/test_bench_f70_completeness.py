"""Bench: regenerate Finding 7.0 (registration completeness)."""

from __future__ import annotations

from repro.experiments import f70_completeness


def test_bench_f70(benchmark, bench_world):
    report = benchmark(f70_completeness.run, bench_world)
    print()
    print(f70_completeness.render(report))
    # Paper: 70% of orgs registered all ASNs; 82% announce only through
    # registered ASNs.
    assert 55.0 <= report.pct_all_asns <= 90.0
    assert report.pct_all_space >= report.pct_all_asns
