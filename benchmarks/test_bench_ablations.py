"""Bench: the two ablations of DESIGN.md §6.

* ROV sweep: Figure 9's Invalid-vs-Valid separation is produced by large
  MANRS transits deploying ROV — full deployment separates at least as
  strongly as zero deployment.
* Visibility sweep: §11's limitation quantified — fewer vantage points
  never *lower* the conformance estimate (unseen announcements can only
  hide problems).
"""

from __future__ import annotations

from repro.experiments import ablations


def test_bench_rov_ablation(benchmark, bench_world):
    points = benchmark.pedantic(
        ablations.rov_deployment_ablation,
        args=(bench_world,),
        kwargs={"levels": (0.0, 0.5, 1.0)},
        rounds=1,
        iterations=1,
    )
    print()
    print(ablations.render_rov_ablation(points))
    none, _, full = points
    assert full.deployed_large_members > none.deployed_large_members
    # The separation is the filtering signal: it must grow (or at least
    # not shrink) with deployment, and be substantial at full deployment.
    assert full.separation >= none.separation
    assert full.separation > 0.10
    # Valid routes are indifferent to ROV.
    assert abs(full.valid_prefer_manrs - none.valid_prefer_manrs) < 0.10


def test_bench_visibility_ablation(benchmark, bench_world):
    points = benchmark.pedantic(
        ablations.visibility_ablation,
        args=(bench_world,),
        kwargs={"fractions": (0.1, 0.5, 1.0)},
        rounds=1,
        iterations=1,
    )
    print()
    print(ablations.render_visibility_ablation(points))
    visible = [p.visible_prefix_origins for p in points]
    assert visible == sorted(visible)  # more VPs -> more visibility
    # §11: limited visibility can only overestimate conformance.
    assert points[0].isp_conformance_pct >= points[-1].isp_conformance_pct - 0.5
