"""Bench: regenerate Figure 5 (origination validity CDFs, Action 4)."""

from __future__ import annotations

from repro.experiments import fig5_origination
from repro.topology.classify import SizeClass

SMALL_M, SMALL_N = (SizeClass.SMALL, True), (SizeClass.SMALL, False)
LARGE_M, LARGE_N = (SizeClass.LARGE, True), (SizeClass.LARGE, False)


def test_bench_fig5(benchmark, bench_world):
    result = benchmark(fig5_origination.run, bench_world)
    print()
    print(fig5_origination.render(result))
    modes = result.modes
    # Finding 8.1: small MANRS markedly likelier to be all-RPKI-valid.
    assert modes[SMALL_M].only_rpki_valid > 1.8 * modes[SMALL_N].only_rpki_valid
    # Finding 8.2: large MANRS less IRR-valid than large non-MANRS.
    assert result.irr_cdf[LARGE_M].median < result.irr_cdf[LARGE_N].median
    # §8.2: IRR-only registration dominated by non-members.
    assert (
        modes[SMALL_N].irr_only_registration
        > 2 * modes[SMALL_M].irr_only_registration
    )
