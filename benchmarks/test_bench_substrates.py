"""Micro-benchmarks of the substrates the pipeline is built on.

These are not paper figures — they track the cost of the primitives a
downstream user would hit hardest: ROV lookups, IRR validation,
per-origin propagation, relying-party validation, and IHR construction.
"""

from __future__ import annotations

from repro.bgp.collector import collect_rib
from repro.bgp.policy import RouteClass
from repro.ihr.pipeline import build_ihr_dataset
from repro.irr.validation import validate_irr
from repro.rpki.validator import RelyingParty


def test_bench_rov_lookup(benchmark, bench_world):
    records = bench_world.ihr.prefix_origins[:2000]

    def run() -> int:
        validator = bench_world.rov
        return sum(
            1
            for record in records
            if validator.validate(record.prefix, record.origin).is_invalid
        )

    invalids = benchmark(run)
    assert invalids >= 0
    print(f"\n  {len(records)} ROV lookups per round over {len(bench_world.rov)} VRPs")


def test_bench_irr_validation(benchmark, bench_world):
    records = bench_world.ihr.prefix_origins[:2000]

    def run() -> int:
        return sum(
            1
            for record in records
            if validate_irr(
                bench_world.irr, record.prefix, record.origin
            ).is_invalid_origin
        )

    benchmark(run)
    print(
        f"\n  {len(records)} IRR validations per round over "
        f"{bench_world.irr.route_count} route objects"
    )


def test_bench_propagation(benchmark, bench_world):
    origins = [
        asn for asn in bench_world.topology.asns if bench_world.originations.get(asn)
    ][:200]

    def run() -> int:
        total = 0
        for origin in origins:
            total += len(
                bench_world.engine.paths_to(
                    origin, bench_world.vantage_points
                )
            )
        return total

    paths = benchmark(run)
    assert paths > 0
    print(
        f"\n  {len(origins)} origins propagated per round over "
        f"{len(bench_world.topology)} ASes, {len(bench_world.vantage_points)} VPs"
    )


def test_bench_relying_party(benchmark, bench_world):
    relying_party = RelyingParty(bench_world.rpki_repository)

    def run() -> int:
        return len(relying_party.validate(bench_world.snapshot_date).vrps)

    vrps = benchmark(run)
    assert vrps == len(bench_world.rov)
    print(f"\n  full RP validation: {vrps} VRPs")


def test_bench_ihr_pipeline(benchmark, bench_world):
    result = benchmark.pedantic(
        build_ihr_dataset,
        args=(
            bench_world.rib,
            bench_world.rov,
            bench_world.irr,
            bench_world.topology,
        ),
        rounds=2,
        iterations=1,
    )
    assert len(result.prefix_origins) == len(bench_world.ihr.prefix_origins)
    print(
        f"\n  IHR build: {len(result.prefix_origins)} prefix-origins, "
        f"{len(result.transit_groups)} transit groups"
    )


def test_bench_full_collection(benchmark, bench_world):
    announcements = [
        (announcement, RouteClass())
        for group in bench_world.rib.groups[:500]
        for announcement in _announcements(group)
    ]

    def run() -> int:
        rib = collect_rib(
            bench_world.engine, announcements, bench_world.vantage_points
        )
        return len(rib.groups)

    groups = benchmark.pedantic(run, rounds=2, iterations=1)
    assert groups > 0
    print(f"\n  collection of {len(announcements)} announcements per round")


def _announcements(group):
    from repro.bgp.announcement import Announcement

    return [Announcement(prefix, group.origin) for prefix in group.prefixes]
