"""Bench: regenerate Figure 7 (invalid-prefix propagation CDFs)."""

from __future__ import annotations

from repro.experiments import fig7_filtering
from repro.topology.classify import SizeClass

SMALL_M, SMALL_N = (SizeClass.SMALL, True), (SizeClass.SMALL, False)
LARGE_M, LARGE_N = (SizeClass.LARGE, True), (SizeClass.LARGE, False)


def test_bench_fig7(benchmark, bench_world):
    result = benchmark(fig7_filtering.run, bench_world)
    print()
    print(fig7_filtering.render(result))
    # §9.1: small ASes propagate almost no RPKI-Invalids (99% at zero).
    for population in (SMALL_M, SMALL_N):
        assert result.rpki_cdf[population].fraction_at_most(0.0) > 0.9
    # Figure 7a: large networks propagate at most a few percent.
    assert result.rpki_cdf[LARGE_M].maximum < 12.0
    assert result.rpki_cdf[LARGE_N].maximum < 12.0
    # Figure 7b: IRR-invalid propagation is far more common, and the
    # non-MANRS tail is heavier than the MANRS tail.
    assert result.irr_cdf[LARGE_N].maximum > result.irr_cdf[LARGE_M].median
