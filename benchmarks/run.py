"""Substrate benchmark runner: end-to-end build timings as a JSON trajectory.

Times the two substrate workloads every paper artefact sits on —
``build_world`` (topology → RPKI/IRR → propagation → RIB → IHR) and the
annual ``Timeline`` sweep — and writes a ``BENCH_<label>.json`` file with
mean/stddev per benchmark plus the run's provenance (scale, seed, jobs,
git revision, python).  Committing one file per PR gives a perf
trajectory future changes can be compared against.

Usage::

    PYTHONPATH=src python benchmarks/run.py --label pr1            # full scale
    PYTHONPATH=src python benchmarks/run.py --label pr1 --jobs 4
    PYTHONPATH=src python benchmarks/run.py --smoke --budget 60    # CI gate
    PYTHONPATH=src python benchmarks/run.py --experiments          # + registry
    PYTHONPATH=src python benchmarks/run.py --kernels              # + per-kernel
    PYTHONPATH=src python benchmarks/run.py --sweep                # + orchestrator
    PYTHONPATH=src python benchmarks/run.py --delta                # + event replay
    PYTHONPATH=src python benchmarks/run.py --scale-sweep 0.5 1 2  # + per-scale
    PYTHONPATH=src python benchmarks/run.py --compare BASELINE.json

``--experiments`` additionally times every experiment in
``repro.experiments.REGISTRY`` once on a built world, recording one
entry per experiment name.  The written payload always embeds the
observability snapshot (``repro.obs``: flat stage timings plus process
counters such as cache hit rates and routes propagated).

``--smoke`` runs one round at ``--scale 0.3`` (unless overridden) and
exits 1 if the end-to-end mean exceeds ``--budget`` seconds — a cheap
regression tripwire for CI.

``--scale-sweep S1 S2 ...`` measures each scale in a *fresh
subprocess* (so peak RSS is per-scale, not cumulative): one cold
sharded build + checkpoint save, one warm memory-mapped columnar load,
one warm eager load — recording wall time, peak RSS
(``resource.getrusage``) and the world digest per point.  The three
digests must agree; the rows land under ``scale_sweep`` in the JSON.

``--compare BASELINE.json`` re-reads a committed baseline payload after
the run and exits 3 if any shared benchmark's mean regressed by more
than ``--compare-threshold`` (default 25%) or any digest drifted.
``--compare-mode digests`` demotes the timing class to warnings and
exits 3 on digest drift only — the CI gate, where hosted-runner timing
noise must not block merges but a world that builds differently must.

``--sweep`` measures the ``repro.sweep`` orchestrator: an 8-job grid
(one experiment, 8 seeds at ``--sweep-scale``) is run once to warm a
shared checkpoint store, then re-run from scratch ledgers at 1 worker
and at ``--sweep-workers`` workers, recording jobs/min per worker count
and the parallel speedup under the ``sweep`` key.

Unless ``--no-warm-start`` is passed, the run also measures the
checkpoint store (``repro.datasets.checkpoint``): one cold build vs one
warm load from a freshly saved entry, recorded under ``warm_start`` with
the speedup and a cold/warm digest-equality check.

The paper-analysis benchmarks live in the pytest-benchmark suite
(``pytest benchmarks/ --benchmark-only``); this script covers the
substrate underneath them.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import kernels, obs  # noqa: E402
from repro.bench import compare_payloads, split_compare_problems  # noqa: E402,F401
from repro.experiments.registry import REGISTRY  # noqa: E402
from repro.scenario.build import build_world  # noqa: E402
from repro.scenario.timeline import Timeline  # noqa: E402


def peak_rss_mb() -> float:
    """This process's high-water RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_warm_start(
    scale: float, seed: int, jobs: int | None, shards: int | None = None
) -> dict:
    """Cold-build vs checkpoint-load timings for one world.

    Builds cold, saves a checkpoint into a temporary store, loads it
    back, and reports both wall times plus the speedup and whether the
    warm world is digest-identical to the cold one (it must be — the
    digests are part of the payload so a regression is visible in the
    BENCH trajectory, not just in the test suite).
    """
    import tempfile

    from repro.datasets.checkpoint import CheckpointStore, world_digest
    from repro.scenario.config import ScenarioConfig

    start = time.perf_counter()
    world = build_world(scale=scale, seed=seed, jobs=jobs, shards=shards)
    cold = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        store = CheckpointStore(tmp)
        start = time.perf_counter()
        store.save(world)
        save = time.perf_counter() - start
        start = time.perf_counter()
        warm_world = store.load(ScenarioConfig(), scale, seed)
        warm = time.perf_counter() - start
    digest_equal = (
        warm_world is not None
        and world_digest(warm_world) == world_digest(world)
    )
    print(
        f"warm start: cold={cold:.3f}s save={save:.3f}s warm={warm:.3f}s "
        f"speedup={cold / warm:.2f}x digest_equal={digest_equal}",
        file=sys.stderr,
    )
    return {
        "cold_build_seconds": cold,
        "save_seconds": save,
        "warm_load_seconds": warm,
        "speedup": cold / warm,
        "digest_equal": digest_equal,
    }


def percentiles(samples: list[float]) -> dict:
    """n plus p50/p95/p99 of ``samples`` (seconds) in milliseconds."""
    ordered = sorted(samples)

    def pct(p: float) -> float:
        if not ordered:
            return 0.0
        index = round(p / 100 * (len(ordered) - 1))
        return ordered[min(len(ordered) - 1, max(0, index))]

    return {
        "n": len(ordered),
        "p50_ms": round(pct(50) * 1000, 3),
        "p95_ms": round(pct(95) * 1000, 3),
        "p99_ms": round(pct(99) * 1000, 3),
    }


def run_serve_bench(
    scale: float, requests: int, workers: int = 2, fanout: int = 16
) -> dict:
    """Latency and throughput of the measurement service.

    Starts a real :class:`repro.serve.ReproService` (ephemeral port,
    throwaway store, the production spawn-based build pool) and measures
    three request populations: *cold* (distinct seeds, each triggering
    one pool build), *hot serial* (one cached key, fresh connection per
    request — per-request latency), and *hot concurrent* (``fanout``
    in-flight requests at a time — cache-hit QPS).  A final
    If-None-Match request pins the 304 path.
    """
    import asyncio
    import tempfile

    from repro.datasets.checkpoint import CheckpointStore
    from repro.serve import ReproService, http_get

    async def drive() -> dict:
        with tempfile.TemporaryDirectory() as tmp:
            service = ReproService(store=CheckpointStore(tmp), workers=workers)
            await service.start(port=0)
            try:
                host, port = "127.0.0.1", service.port
                cold: list[float] = []
                for seed in range(8):
                    target = f"/experiments/fig2?scale={scale:g}&seed={seed}"
                    start = time.perf_counter()
                    status, _headers, _body = await http_get(
                        host, port, target, timeout=600
                    )
                    cold.append(time.perf_counter() - start)
                    assert status == 200, f"cold request failed: {status}"
                hot_target = f"/experiments/fig2?scale={scale:g}&seed=0"
                status, headers, _body = await http_get(host, port, hot_target)
                etag = headers["etag"]
                hot: list[float] = []
                for _ in range(requests):
                    start = time.perf_counter()
                    status, _headers, _body = await http_get(
                        host, port, hot_target
                    )
                    hot.append(time.perf_counter() - start)
                    assert status == 200, f"hot request failed: {status}"
                serial_qps = len(hot) / sum(hot) if hot else 0.0
                start = time.perf_counter()
                done = 0
                while done < requests:
                    batch = min(fanout, requests - done)
                    results = await asyncio.gather(
                        *[
                            http_get(host, port, hot_target)
                            for _ in range(batch)
                        ]
                    )
                    assert all(r[0] == 200 for r in results)
                    done += batch
                concurrent_qps = done / (time.perf_counter() - start)
                status_304, _headers, body_304 = await http_get(
                    host, port, hot_target, headers={"if-none-match": etag}
                )
                return {
                    "scale": scale,
                    "workers": workers,
                    "cold": percentiles(cold),
                    "hot": {
                        **percentiles(hot),
                        "qps_serial": round(serial_qps, 1),
                        "qps_concurrent": round(concurrent_qps, 1),
                        "fanout": fanout,
                    },
                    "not_modified_304": status_304 == 304 and not body_304,
                }
            finally:
                await service.stop()

    result = asyncio.run(drive())
    print(
        f"serve: cold p50={result['cold']['p50_ms']:.0f}ms "
        f"hot p50={result['hot']['p50_ms']:.1f}ms "
        f"p99={result['hot']['p99_ms']:.1f}ms "
        f"qps serial={result['hot']['qps_serial']:.0f} "
        f"concurrent={result['hot']['qps_concurrent']:.0f} "
        f"304={result['not_modified_304']}",
        file=sys.stderr,
    )
    return result


def run_sweep_bench(sweep_scale: float, max_workers: int) -> dict:
    """Sweep-orchestrator throughput: jobs/min at 1 vs ``max_workers``.

    The grid is 8 independent jobs (8 seeds, one experiment each).  The
    checkpoint store is warmed by one throwaway pass first, so both
    measured phases run warm-started jobs against fresh ledgers — the
    comparison isolates scheduler throughput and worker scaling from
    first-build cost.
    """
    import os
    import tempfile

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        name="bench",
        scales=(sweep_scale,),
        seeds=tuple(range(1, 9)),
        experiment_sets=(("fig4",),),
        timeout=600.0,
        max_attempts=1,
        backoff=0.0,
    )
    n_jobs = len(spec.expand())
    # Parallel speedup is bounded by the host: on a single-core runner
    # the N-worker phase degenerates to time-slicing and the recorded
    # speedup hovers around 1.0x — the cores field makes that legible
    # in the BENCH trajectory instead of looking like a regression.
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    result: dict = {
        "scale": sweep_scale,
        "jobs": n_jobs,
        "cores": cores,
        "by_workers": {},
    }
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        root = Path(tmp)
        os.environ["REPRO_CACHE_DIR"] = str(root / "cache")
        try:
            start = time.perf_counter()
            warm = run_sweep(spec, root / "ledger-warm", workers=max_workers)
            result["warm_pass_seconds"] = time.perf_counter() - start
            if not warm.ok:
                raise RuntimeError(f"sweep warm pass failed: {warm.failures}")
            for workers in (1, max_workers):
                start = time.perf_counter()
                outcome = run_sweep(
                    spec, root / f"ledger-w{workers}", workers=workers
                )
                elapsed = time.perf_counter() - start
                if not outcome.ok:
                    raise RuntimeError(
                        f"sweep bench failed at {workers} workers: "
                        f"{outcome.failures}"
                    )
                result["by_workers"][str(workers)] = {
                    "seconds": elapsed,
                    "jobs_per_minute": 60.0 * n_jobs / elapsed,
                }
                print(
                    f"sweep: {n_jobs} jobs at {workers} worker(s) in "
                    f"{elapsed:.2f}s "
                    f"({60.0 * n_jobs / elapsed:.1f} jobs/min)",
                    file=sys.stderr,
                )
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous
    result["speedup"] = (
        result["by_workers"][str(max_workers)]["jobs_per_minute"]
        / result["by_workers"]["1"]["jobs_per_minute"]
    )
    print(
        f"sweep: {max_workers}-worker speedup {result['speedup']:.2f}x "
        f"on {cores} core(s)",
        file=sys.stderr,
    )
    return result


def run_delta_bench(
    scale: float, seed: int, events: int, event_seed: int
) -> dict:
    """Per-event incremental apply vs one cold rebuild of the same stream.

    Synthesizes ``events`` applicable events, times each
    :meth:`repro.delta.LiveWorld.apply` plus the final materialisation,
    then rebuilds the whole derived state cold from the same event list
    and checks the two worlds are digest-identical.  The headline number
    is ``speedup_apply`` — how many incremental applies fit in one cold
    rebuild — which is what makes event-stream replay viable at all.
    """
    from repro.datasets.checkpoint import world_digest
    from repro.delta import LiveWorld, cold_rebuild, synthesize_events

    world = build_world(scale=scale, seed=seed)
    stream = synthesize_events(world, n=events, seed=event_seed)
    live = LiveWorld(world)
    apply_samples: list[float] = []
    by_domain: dict[str, list[float]] = {}
    for event in stream:
        start = time.perf_counter()
        domain = live.apply(event)
        elapsed = time.perf_counter() - start
        apply_samples.append(elapsed)
        by_domain.setdefault(domain, []).append(elapsed)
    start = time.perf_counter()
    incremental = live.world()
    materialise_seconds = time.perf_counter() - start
    start = time.perf_counter()
    rebuilt = cold_rebuild(world, stream)
    cold_seconds = time.perf_counter() - start
    digest_equal = world_digest(incremental) == world_digest(rebuilt)
    mean_apply = statistics.fmean(apply_samples)
    result = {
        "scale": scale,
        "seed": seed,
        "event_seed": event_seed,
        "events": len(apply_samples),
        "apply": {
            **percentiles(apply_samples),
            "mean_ms": round(mean_apply * 1000, 3),
            "max_ms": round(max(apply_samples) * 1000, 3),
        },
        "by_domain": {
            domain: percentiles(samples)
            for domain, samples in sorted(by_domain.items())
        },
        "materialise_seconds": materialise_seconds,
        "cold_rebuild_seconds": cold_seconds,
        # Cold rebuilds amortise over the whole stream; incremental pays
        # per event.  This is the per-event advantage.
        "speedup_apply": cold_seconds / mean_apply,
        "digest_equal": digest_equal,
    }
    print(
        f"delta: {len(apply_samples)} events, apply p50="
        f"{result['apply']['p50_ms']:.1f}ms mean={mean_apply * 1000:.1f}ms, "
        f"materialise={materialise_seconds:.3f}s "
        f"cold={cold_seconds:.3f}s "
        f"speedup_apply={result['speedup_apply']:.1f}x "
        f"digest_equal={digest_equal}",
        file=sys.stderr,
    )
    return result


def run_kernels(
    scale: float, seed: int, jobs: int | None, rounds: int
) -> dict[str, dict]:
    """Per-kernel microbenchmarks: python vs numpy on one built world.

    Each kernel is timed through the public API it sits behind, with the
    relevant memo/index state reset per round so every round pays the
    real bulk-path cost (index construction included — each mode builds
    its own lookup structure, so that cost is part of the comparison).
    Both modes' outputs are compared for equality and the verdict is
    recorded next to the timings.
    """
    import os

    from repro.bgp.policy import RouteClass
    from repro.bgp.propagation import PropagationEngine
    from repro.ihr.pipeline import build_ihr_dataset
    from repro.irr.validation import validate_irr_many
    from repro.rpki.rov import ROVValidator
    from repro.rpki.validator import RelyingParty

    world = build_world(scale=scale, seed=seed, jobs=jobs)
    vrps = RelyingParty(world.rpki_repository).validate(
        world.snapshot_date
    ).vrps
    routes = [
        (origination.prefix, asn)
        for asn in sorted(world.originations)
        for origination in world.originations[asn]
    ]
    route_class = RouteClass(rpki_invalid=False, irr_invalid=False)
    paths_keys = [(group.origin, route_class) for group in world.rib.groups]

    def _reset_irr() -> None:
        world.irr.__dict__.pop("_validation_memo", None)
        world.irr.__dict__.pop("_interval_index", None)

    def bench_rov() -> object:
        return ROVValidator(vrps).validate_many(routes)

    def bench_irr() -> object:
        _reset_irr()
        return validate_irr_many(world.irr, routes)

    def bench_saturation() -> object:
        timeline = Timeline(world)
        return timeline.saturation_series()

    def bench_ihr() -> object:
        _reset_irr()
        return build_ihr_dataset(
            world.rib, ROVValidator(vrps), world.irr, world.topology
        )

    def bench_propagation() -> object:
        engine = PropagationEngine(world.topology, world.policies)
        engine.ensure_cache_capacity(len(paths_keys))
        if kernels.use_numpy():
            return engine.paths_to_many(paths_keys, world.vantage_points)
        return [
            engine.paths_to(origin, world.vantage_points, rc)
            for origin, rc in paths_keys
        ]

    cases = {
        "rov_classify": bench_rov,
        "irr_classify": bench_irr,
        "timeline_saturation": bench_saturation,
        "ihr_pipeline": bench_ihr,
        "propagation_paths": bench_propagation,
    }
    previous = os.environ.get("REPRO_KERNELS")
    results: dict[str, dict] = {}
    try:
        for name, fn in cases.items():
            per_mode: dict[str, dict] = {}
            outputs: dict[str, object] = {}
            for mode in ("python", "numpy"):
                os.environ["REPRO_KERNELS"] = mode
                samples: list[float] = []
                for _ in range(rounds):
                    start = time.perf_counter()
                    outputs[mode] = fn()
                    samples.append(time.perf_counter() - start)
                per_mode[mode] = summarize(samples)
            results[name] = {
                **per_mode,
                "speedup": per_mode["python"]["mean"]
                / per_mode["numpy"]["mean"],
                "equal": outputs["python"] == outputs["numpy"],
            }
            print(
                f"kernel {name}: python={per_mode['python']['mean']:.3f}s "
                f"numpy={per_mode['numpy']['mean']:.3f}s "
                f"({results[name]['speedup']:.2f}x, "
                f"equal={results[name]['equal']})",
                file=sys.stderr,
            )
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = previous
    return results


def run_scale_point(
    scale: float,
    seed: int,
    jobs: int | None,
    shards: int | None,
    mode: str,
    store_dir: Path,
) -> int:
    """One measured point of the scale sweep, inside this process.

    Invoked by :func:`run_scale_sweep` as a subprocess so ``ru_maxrss``
    reflects exactly one scale and one load strategy.  Emits a single
    JSON line on stdout.
    """
    from repro.datasets.checkpoint import CheckpointStore, world_digest
    from repro.scenario.config import ScenarioConfig

    store = CheckpointStore(store_dir)
    stage_rss: dict[str, float] | None = None
    spill: dict[str, float] | None = None
    budget_env = os.environ.get("REPRO_BUILD_BUDGET_MB")
    if mode == "cold":
        # Stamp every span close with the high-water RSS so the point
        # reports per-stage peaks, not just the whole-process number.
        os.environ["REPRO_SPAN_RSS"] = "1"
        start = time.perf_counter()
        world = build_world(scale=scale, seed=seed, jobs=jobs, shards=shards)
        seconds = time.perf_counter() - start
        rss_stage = peak_rss_mb()
        start = time.perf_counter()
        store.save(world)
        save_seconds = time.perf_counter() - start
        os.environ.pop("REPRO_SPAN_RSS", None)
        counters = obs.counters()
        spill = {
            name: counters[name]
            for name in (
                "build.spill.blocks",
                "build.spill.bytes",
                "build.spill.files",
                "hegemony.partitions",
            )
            if name in counters
        }
        stage_rss = {}
        for root in obs.root_spans():
            for node in _walk_spans(root):
                rss = node.attrs.get("rss_mb")
                if rss is not None and (
                    node.name.startswith("build.")
                    or node.name == "checkpoint.save"
                ):
                    # High-water RSS is monotone; the last close wins.
                    stage_rss[node.name] = rss
    else:
        load_mode = "columnar" if mode == "warm-lazy" else "eager"
        start = time.perf_counter()
        world = store.load(ScenarioConfig(), scale, seed, mode=load_mode)
        seconds = time.perf_counter() - start
        rss_stage = peak_rss_mb()
        save_seconds = None
        if world is None:
            print(f"scale point: no checkpoint in {store_dir}", file=sys.stderr)
            return 1
    start = time.perf_counter()
    digest = world_digest(world)
    digest_seconds = time.perf_counter() - start
    point = {
        "mode": mode,
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "seconds": seconds,
        "digest_seconds": digest_seconds,
        # RSS right after the stage (build or load) vs after the digest
        # walked every field — the gap is what laziness saves.
        "peak_rss_mb_stage": rss_stage,
        "peak_rss_mb": peak_rss_mb(),
        "world_digest": digest,
    }
    if save_seconds is not None:
        point["save_seconds"] = save_seconds
    if stage_rss:
        # Per-stage high-water RSS at each build span's close: the
        # increase between consecutive stages attributes peak growth.
        point["peak_rss_mb_stages"] = stage_rss
    if mode == "cold" and budget_env is not None:
        point["build_budget_mb"] = float(budget_env)
    if spill:
        point["spill"] = spill
    print(json.dumps(point))
    return 0


def _walk_spans(root):
    yield root
    for child in root.children:
        yield from _walk_spans(child)


def run_scale_sweep(
    scales: list[float],
    seed: int,
    jobs: int | None,
    shards: int | None,
    build_budget_mb: float | None = None,
) -> list[dict]:
    """Cold build vs warm mmap/eager load, one fresh subprocess each.

    Returns one row per scale: wall time and peak RSS for the cold
    sharded build, the memory-mapped columnar load, and the eager load,
    plus a three-way digest-equality verdict.  ``build_budget_mb`` caps
    the cold leg's buffered build columns (``REPRO_BUILD_BUDGET_MB``),
    so the sweep exercises — and its digest verdict covers — the
    spill-to-disk out-of-core build path.
    """
    import tempfile

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        for scale in scales:
            store_dir = Path(tmp) / f"scale-{scale}"
            points: dict[str, dict] = {}
            for mode in ("cold", "warm-lazy", "warm-eager"):
                cmd = [
                    sys.executable,
                    str(Path(__file__).resolve()),
                    "--scale-point", str(scale),
                    "--point-mode", mode,
                    "--store", str(store_dir),
                    "--seed", str(seed),
                ]
                if jobs is not None:
                    cmd += ["--jobs", str(jobs)]
                if shards is not None:
                    cmd += ["--shards", str(shards)]
                env = dict(os.environ)
                env.pop("REPRO_BUILD_BUDGET_MB", None)
                if mode == "cold" and build_budget_mb is not None:
                    env["REPRO_BUILD_BUDGET_MB"] = str(build_budget_mb)
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, env=env
                )
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"scale point {scale}/{mode} failed:\n{proc.stderr}"
                    )
                points[mode] = json.loads(
                    proc.stdout.strip().splitlines()[-1]
                )
            digests = {p["world_digest"] for p in points.values()}
            row = {
                "scale": scale,
                "seed": seed,
                "shards": shards,
                "world_digest": points["cold"]["world_digest"],
                "digest_equal": len(digests) == 1,
                "cold": points["cold"],
                "warm_lazy": points["warm-lazy"],
                "warm_eager": points["warm-eager"],
            }
            rows.append(row)
            print(
                f"scale {scale}: cold={row['cold']['seconds']:.2f}s "
                f"({row['cold']['peak_rss_mb']:.0f}MB) "
                f"lazy={row['warm_lazy']['seconds']:.3f}s "
                f"({row['warm_lazy']['peak_rss_mb_stage']:.0f}MB at load) "
                f"eager={row['warm_eager']['seconds']:.3f}s "
                f"({row['warm_eager']['peak_rss_mb']:.0f}MB) "
                f"digest_equal={row['digest_equal']}",
                file=sys.stderr,
            )
    return rows


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def summarize(samples: list[float]) -> dict:
    return {
        "mean": statistics.fmean(samples),
        "stddev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "min": min(samples),
        "max": max(samples),
        "rounds": samples,
    }


def run_rounds(
    scale: float,
    seed: int,
    jobs: int | None,
    rounds: int,
    shards: int | None = None,
) -> dict[str, dict]:
    build_samples: list[float] = []
    timeline_samples: list[float] = []
    total_samples: list[float] = []
    for i in range(rounds):
        start = time.perf_counter()
        world = build_world(scale=scale, seed=seed, jobs=jobs, shards=shards)
        build_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        timeline = Timeline(world)
        timeline.saturation_series()
        timeline.growth()
        timeline_elapsed = time.perf_counter() - start

        build_samples.append(build_elapsed)
        timeline_samples.append(timeline_elapsed)
        total_samples.append(build_elapsed + timeline_elapsed)
        print(
            f"round {i + 1}/{rounds}: build={build_elapsed:.3f}s "
            f"timeline={timeline_elapsed:.3f}s",
            file=sys.stderr,
        )
        del world, timeline
    return {
        "build_world_to_ihr": summarize(build_samples),
        "timeline_annual_series": summarize(timeline_samples),
        "end_to_end": summarize(total_samples),
    }


def run_experiments(
    scale: float, seed: int, jobs: int | None
) -> dict[str, dict]:
    """Time every registry experiment once on one freshly built world.

    Iterates :data:`repro.experiments.registry.REGISTRY` so newly added
    paper artefacts are benchmarked without touching this file.
    """
    world = build_world(scale=scale, seed=seed, jobs=jobs)
    results: dict[str, dict] = {}
    for spec in REGISTRY.values():
        with obs.span(f"bench.experiment.{spec.name}"):
            start = time.perf_counter()
            spec.run(world)
            elapsed = time.perf_counter() - start
        results[spec.name] = {"seconds": elapsed, "title": spec.title}
        print(f"experiment {spec.name}: {elapsed:.3f}s", file=sys.stderr)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="local", help="BENCH_<label>.json")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for collect_rib (default: REPRO_JOBS env)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="column shards for the build stages (default: REPRO_SHARDS env)",
    )
    parser.add_argument(
        "--scale-sweep",
        type=float,
        nargs="+",
        default=None,
        metavar="SCALE",
        help="also measure these scales (cold/lazy/eager, fresh subprocess "
        "each) and record the rows under scale_sweep",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help="after the run, exit 3 on >threshold regression or digest "
        "drift versus this committed baseline payload",
    )
    parser.add_argument(
        "--compare-threshold",
        type=float,
        default=0.25,
        help="fractional slowdown tolerated by --compare (default: 0.25)",
    )
    parser.add_argument(
        "--compare-mode",
        choices=("all", "digests"),
        default="all",
        help="'all' exits 3 on timing regressions and digest drift alike; "
        "'digests' prints timing regressions as warnings and exits 3 on "
        "digest drift only (the CI setting)",
    )
    parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=None,
        help="worker processes for the --scale-sweep legs only "
        "(default: --jobs); lets serial round timings coexist with a "
        "sharded sweep on few-core hosts",
    )
    parser.add_argument(
        "--sweep-shards",
        type=int,
        default=None,
        help="column shards for the --scale-sweep legs only "
        "(default: --shards)",
    )
    parser.add_argument(
        "--build-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="REPRO_BUILD_BUDGET_MB for the cold legs of --scale-sweep: "
        "sharded build stages spill column blocks to scratch files past "
        "this byte budget (default: unset, all in memory)",
    )
    # Internal: one subprocess-measured point of --scale-sweep.
    parser.add_argument("--scale-point", type=float, help=argparse.SUPPRESS)
    parser.add_argument(
        "--point-mode",
        choices=("cold", "warm-lazy", "warm-eager"),
        help=argparse.SUPPRESS,
    )
    parser.add_argument("--store", type=Path, help=argparse.SUPPRESS)
    parser.add_argument(
        "--experiments",
        action="store_true",
        help="also time every registry experiment on one built world",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="also microbenchmark each columnar kernel (python vs numpy)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one round at scale 0.3; exit 1 if end-to-end exceeds --budget",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=120.0,
        help="smoke-mode time budget in seconds (generous by design)",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="also benchmark repro.sweep throughput at 1 vs N workers",
    )
    parser.add_argument(
        "--sweep-scale",
        type=float,
        default=0.2,
        help="world scale for the sweep benchmark grid (default: 0.2)",
    )
    parser.add_argument(
        "--sweep-workers",
        type=int,
        default=4,
        help="worker count for the parallel sweep phase (default: 4)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also benchmark the measurement service (QPS, percentiles)",
    )
    parser.add_argument(
        "--serve-scale",
        type=float,
        default=0.05,
        help="world scale for the serve benchmark (default: 0.05)",
    )
    parser.add_argument(
        "--serve-requests",
        type=int,
        default=200,
        help="hot-cache requests per serve phase (default: 200)",
    )
    parser.add_argument(
        "--delta",
        action="store_true",
        help="also benchmark per-event incremental apply vs cold rebuild",
    )
    parser.add_argument(
        "--delta-scale",
        type=float,
        default=0.12,
        help="world scale for the delta benchmark (default: 0.12)",
    )
    parser.add_argument(
        "--delta-events",
        type=int,
        default=60,
        help="synthetic events in the delta benchmark stream (default: 60)",
    )
    parser.add_argument(
        "--delta-event-seed",
        type=int,
        default=0,
        help="RNG seed for the delta benchmark event stream (default: 0)",
    )
    parser.add_argument(
        "--no-warm-start",
        action="store_true",
        help="skip the checkpoint cold-vs-warm comparison",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=REPO_ROOT, help="where to write JSON"
    )
    args = parser.parse_args(argv)

    if args.scale_point is not None:
        if args.point_mode is None or args.store is None:
            parser.error("--scale-point requires --point-mode and --store")
        return run_scale_point(
            args.scale_point,
            args.seed,
            args.jobs,
            args.shards,
            args.point_mode,
            args.store,
        )

    rounds = 1 if args.smoke else args.rounds
    scale = args.scale if args.scale is not None else (0.3 if args.smoke else 1.0)

    obs.reset()
    # The sweep benchmark forks worker processes, so it runs first —
    # before the full-scale builds inflate this process's RSS and make
    # every fork (and its copy-on-write faults) needlessly expensive.
    sweep = (
        run_sweep_bench(args.sweep_scale, max(2, args.sweep_workers))
        if args.sweep
        else None
    )
    # The serve bench spawns its own worker processes (fresh
    # interpreters, so this process's RSS never contaminates them).
    serve = (
        run_serve_bench(args.serve_scale, args.serve_requests)
        if args.serve
        else None
    )
    # Scale-sweep points run in fresh subprocesses, so ordering versus
    # the in-process phases does not contaminate their RSS readings.
    scale_sweep = (
        run_scale_sweep(
            args.scale_sweep,
            args.seed,
            args.sweep_jobs if args.sweep_jobs is not None else args.jobs,
            args.sweep_shards
            if args.sweep_shards is not None
            else args.shards,
            build_budget_mb=args.build_budget_mb,
        )
        if args.scale_sweep
        else None
    )
    benchmarks = run_rounds(scale, args.seed, args.jobs, rounds, args.shards)
    warm_start = None if args.no_warm_start else run_warm_start(
        scale, args.seed, args.jobs, args.shards
    )
    experiments = (
        run_experiments(scale, args.seed, args.jobs)
        if args.experiments
        else None
    )
    kernel_benchmarks = (
        run_kernels(scale, args.seed, args.jobs, rounds)
        if args.kernels
        else None
    )
    delta = (
        run_delta_bench(
            args.delta_scale,
            args.seed,
            args.delta_events,
            args.delta_event_seed,
        )
        if args.delta
        else None
    )
    payload = {
        "label": args.label,
        "scale": scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "shards": args.shards,
        "rounds": rounds,
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "peak_rss_mb": peak_rss_mb(),
        "benchmarks": benchmarks,
        # Spans are omitted: BENCH files track the flat per-stage
        # timings and process counters, not every round's trace tree.
        "obs": obs.snapshot(spans=False),
    }
    if warm_start is not None:
        payload["warm_start"] = warm_start
    if scale_sweep is not None:
        payload["scale_sweep"] = scale_sweep
    if experiments is not None:
        payload["experiments"] = experiments
    if kernel_benchmarks is not None:
        payload["kernels"] = kernel_benchmarks
    if sweep is not None:
        payload["sweep"] = sweep
    if delta is not None:
        payload["delta"] = delta
    if serve is not None:
        payload["serve"] = serve
    out_path = args.output_dir / f"BENCH_{args.label}.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    mean = benchmarks["end_to_end"]["mean"]
    print(f"end-to-end mean: {mean:.3f}s over {rounds} round(s)")
    if args.smoke and mean > args.budget:
        print(
            f"SMOKE FAIL: {mean:.3f}s exceeds the {args.budget:.0f}s budget",
            file=sys.stderr,
        )
        return 1
    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        digest_problems, timing_problems = split_compare_problems(
            payload, baseline, args.compare_threshold
        )
        blocking = digest_problems
        if args.compare_mode == "all":
            blocking = digest_problems + timing_problems
        elif timing_problems:
            for problem in timing_problems:
                print(f"COMPARE WARN: {problem}", file=sys.stderr)
        if blocking:
            for problem in blocking:
                print(f"COMPARE FAIL: {problem}", file=sys.stderr)
            return 3
        clean = (
            "no digest drift"
            if args.compare_mode == "digests"
            else "no regression"
        )
        print(
            f"compare: {clean} versus {args.compare} "
            f"(threshold {args.compare_threshold:.0%})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
