"""Substrate benchmark runner: end-to-end build timings as a JSON trajectory.

Times the two substrate workloads every paper artefact sits on —
``build_world`` (topology → RPKI/IRR → propagation → RIB → IHR) and the
annual ``Timeline`` sweep — and writes a ``BENCH_<label>.json`` file with
mean/stddev per benchmark plus the run's provenance (scale, seed, jobs,
git revision, python).  Committing one file per PR gives a perf
trajectory future changes can be compared against.

Usage::

    PYTHONPATH=src python benchmarks/run.py --label pr1            # full scale
    PYTHONPATH=src python benchmarks/run.py --label pr1 --jobs 4
    PYTHONPATH=src python benchmarks/run.py --smoke --budget 60    # CI gate
    PYTHONPATH=src python benchmarks/run.py --experiments          # + registry

``--experiments`` additionally times every experiment in
``repro.experiments.REGISTRY`` once on a built world, recording one
entry per experiment name.  The written payload always embeds the
observability snapshot (``repro.obs``: flat stage timings plus process
counters such as cache hit rates and routes propagated).

``--smoke`` runs one round at ``--scale 0.3`` (unless overridden) and
exits 1 if the end-to-end mean exceeds ``--budget`` seconds — a cheap
regression tripwire for CI.

Unless ``--no-warm-start`` is passed, the run also measures the
checkpoint store (``repro.datasets.checkpoint``): one cold build vs one
warm load from a freshly saved entry, recorded under ``warm_start`` with
the speedup and a cold/warm digest-equality check.

The paper-analysis benchmarks live in the pytest-benchmark suite
(``pytest benchmarks/ --benchmark-only``); this script covers the
substrate underneath them.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.experiments.registry import REGISTRY  # noqa: E402
from repro.scenario.build import build_world  # noqa: E402
from repro.scenario.timeline import Timeline  # noqa: E402


def run_warm_start(scale: float, seed: int, jobs: int | None) -> dict:
    """Cold-build vs checkpoint-load timings for one world.

    Builds cold, saves a checkpoint into a temporary store, loads it
    back, and reports both wall times plus the speedup and whether the
    warm world is digest-identical to the cold one (it must be — the
    digests are part of the payload so a regression is visible in the
    BENCH trajectory, not just in the test suite).
    """
    import tempfile

    from repro.datasets.checkpoint import CheckpointStore, world_digest
    from repro.scenario.config import ScenarioConfig

    start = time.perf_counter()
    world = build_world(scale=scale, seed=seed, jobs=jobs)
    cold = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        store = CheckpointStore(tmp)
        start = time.perf_counter()
        store.save(world)
        save = time.perf_counter() - start
        start = time.perf_counter()
        warm_world = store.load(ScenarioConfig(), scale, seed)
        warm = time.perf_counter() - start
    digest_equal = (
        warm_world is not None
        and world_digest(warm_world) == world_digest(world)
    )
    print(
        f"warm start: cold={cold:.3f}s save={save:.3f}s warm={warm:.3f}s "
        f"speedup={cold / warm:.2f}x digest_equal={digest_equal}",
        file=sys.stderr,
    )
    return {
        "cold_build_seconds": cold,
        "save_seconds": save,
        "warm_load_seconds": warm,
        "speedup": cold / warm,
        "digest_equal": digest_equal,
    }


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def summarize(samples: list[float]) -> dict:
    return {
        "mean": statistics.fmean(samples),
        "stddev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "min": min(samples),
        "max": max(samples),
        "rounds": samples,
    }


def run_rounds(
    scale: float, seed: int, jobs: int | None, rounds: int
) -> dict[str, dict]:
    build_samples: list[float] = []
    timeline_samples: list[float] = []
    total_samples: list[float] = []
    for i in range(rounds):
        start = time.perf_counter()
        world = build_world(scale=scale, seed=seed, jobs=jobs)
        build_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        timeline = Timeline(world)
        timeline.saturation_series()
        timeline.growth()
        timeline_elapsed = time.perf_counter() - start

        build_samples.append(build_elapsed)
        timeline_samples.append(timeline_elapsed)
        total_samples.append(build_elapsed + timeline_elapsed)
        print(
            f"round {i + 1}/{rounds}: build={build_elapsed:.3f}s "
            f"timeline={timeline_elapsed:.3f}s",
            file=sys.stderr,
        )
        del world, timeline
    return {
        "build_world_to_ihr": summarize(build_samples),
        "timeline_annual_series": summarize(timeline_samples),
        "end_to_end": summarize(total_samples),
    }


def run_experiments(
    scale: float, seed: int, jobs: int | None
) -> dict[str, dict]:
    """Time every registry experiment once on one freshly built world.

    Iterates :data:`repro.experiments.registry.REGISTRY` so newly added
    paper artefacts are benchmarked without touching this file.
    """
    world = build_world(scale=scale, seed=seed, jobs=jobs)
    results: dict[str, dict] = {}
    for spec in REGISTRY.values():
        with obs.span(f"bench.experiment.{spec.name}"):
            start = time.perf_counter()
            spec.run(world)
            elapsed = time.perf_counter() - start
        results[spec.name] = {"seconds": elapsed, "title": spec.title}
        print(f"experiment {spec.name}: {elapsed:.3f}s", file=sys.stderr)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="local", help="BENCH_<label>.json")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for collect_rib (default: REPRO_JOBS env)",
    )
    parser.add_argument(
        "--experiments",
        action="store_true",
        help="also time every registry experiment on one built world",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one round at scale 0.3; exit 1 if end-to-end exceeds --budget",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=120.0,
        help="smoke-mode time budget in seconds (generous by design)",
    )
    parser.add_argument(
        "--no-warm-start",
        action="store_true",
        help="skip the checkpoint cold-vs-warm comparison",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=REPO_ROOT, help="where to write JSON"
    )
    args = parser.parse_args(argv)

    rounds = 1 if args.smoke else args.rounds
    scale = args.scale if args.scale is not None else (0.3 if args.smoke else 1.0)

    obs.reset()
    benchmarks = run_rounds(scale, args.seed, args.jobs, rounds)
    warm_start = None if args.no_warm_start else run_warm_start(
        scale, args.seed, args.jobs
    )
    experiments = (
        run_experiments(scale, args.seed, args.jobs)
        if args.experiments
        else None
    )

    payload = {
        "label": args.label,
        "scale": scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "rounds": rounds,
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmarks": benchmarks,
        # Spans are omitted: BENCH files track the flat per-stage
        # timings and process counters, not every round's trace tree.
        "obs": obs.snapshot(spans=False),
    }
    if warm_start is not None:
        payload["warm_start"] = warm_start
    if experiments is not None:
        payload["experiments"] = experiments
    out_path = args.output_dir / f"BENCH_{args.label}.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    mean = benchmarks["end_to_end"]["mean"]
    print(f"end-to-end mean: {mean:.3f}s over {rounds} round(s)")
    if args.smoke and mean > args.budget:
        print(
            f"SMOKE FAIL: {mean:.3f}s exceeds the {args.budget:.0f}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
