"""Bench: regenerate Figure 4 (participation by RIR over time)."""

from __future__ import annotations

from repro.experiments import fig4_participation
from repro.registry.rir import RIR


def test_bench_fig4(benchmark, bench_world):
    result = benchmark.pedantic(
        fig4_participation.run, args=(bench_world,), rounds=2, iterations=1
    )
    print()
    print(fig4_participation.render(result))
    # 4a: LACNIC wave in 2020 is its largest membership jump.
    lacnic = dict(result.ases_by_rir[RIR.LACNIC])
    jumps = {y: lacnic[y] - lacnic[y - 1] for y in range(2016, 2023)}
    assert max(jumps, key=jumps.get) == 2020
    # 4b: APNIC space jumps in 2020 (flagship transit joins).
    apnic = dict(result.space_share_by_rir[RIR.APNIC])
    assert apnic[2020] - apnic[2019] > 1.0
