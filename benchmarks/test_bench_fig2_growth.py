"""Bench: regenerate Figure 2 (MANRS growth 2015–2022)."""

from __future__ import annotations

from repro.experiments import fig2_growth


def test_bench_fig2(benchmark, bench_world):
    points = benchmark(fig2_growth.run, bench_world)
    print()
    print(fig2_growth.render(points))
    # Shape: monotone growth with the 2020 wave as the largest increment.
    orgs = [p.organizations for p in points]
    assert orgs == sorted(orgs)
    increments = {p.year: b - a for p, a, b in zip(points[1:], orgs, orgs[1:])}
    assert max(increments, key=increments.get) == 2020
