"""Benchmark fixtures: a shared full-scale world built once per session.

The benchmarks time the paper's *analyses* (the interesting part), not
world construction; the world is session-cached.  Scale can be reduced
for quick runs with ``REPRO_BENCH_SCALE=0.3 pytest benchmarks/``.
"""

from __future__ import annotations

import os

import pytest

from repro.scenario.build import build_world
from repro.scenario.world import World

BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_world() -> World:
    """The full-scale world every benchmark analyses."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return build_world(scale=scale, seed=BENCH_SEED)
