"""Bench: regenerate Figure 9 (MANRS preference score by RPKI status)."""

from __future__ import annotations

from repro.experiments import fig9_preference


def test_bench_fig9(benchmark, bench_world):
    cdfs = benchmark(fig9_preference.run, bench_world)
    print()
    print(fig9_preference.render(cdfs))
    invalid = cdfs["invalid"].fraction_above(0.0)
    valid = cdfs["valid"].fraction_above(0.0)
    not_found = cdfs["not_found"].fraction_above(0.0)
    # Finding 9.4: Invalid announcements avoid MANRS transit (14% vs
    # 34%/36% in the paper); Valid and NotFound behave alike.  The
    # NotFound pool includes the (stub-heavy) IPv6 announcements, which
    # drags its baseline down a little, hence the asymmetric margins.
    assert invalid < valid - 0.10
    assert invalid < not_found - 0.05
    assert abs(valid - not_found) < 0.15
