"""Bench: regenerate Finding 8.7 / §8.5 (conformance stability)."""

from __future__ import annotations

from repro.experiments import f87_stability


def test_bench_f87(benchmark, bench_world):
    result = benchmark.pedantic(
        f87_stability.run, args=(bench_world,), kwargs={"n_weeks": 12, "seed": 3},
        rounds=2, iterations=1,
    )
    print()
    print(f87_stability.render(result))
    report = result.report
    total = len(report.classification)
    # Paper: the overwhelming majority are stable; a handful flap.
    assert report.always_conformant / total > 0.8
    assert report.always_unconformant >= 1
    assert 1 <= report.flapping <= max(2, int(0.06 * total))
