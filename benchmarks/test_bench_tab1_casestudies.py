"""Bench: regenerate Table 1 (case-study attribution)."""

from __future__ import annotations

from repro.experiments import tab1_casestudies


def test_bench_tab1(benchmark, bench_world):
    rows = benchmark(tab1_casestudies.run, bench_world)
    print()
    print(tab1_casestudies.render(rows))
    assert len(rows) == 6  # 3 CDNs + 3 ISP orgs
    attributed = sum(row.total_attributed for row in rows)
    sibling_cp = sum(row.rpki_sibling_cp + row.irr_sibling_cp for row in rows)
    # Finding 8.5: >50% of mismatches point at siblings or direct C-P.
    assert attributed > 0
    assert sibling_cp / attributed > 0.5
    # IRR Invalid dominates RPKI Invalid (roughly 99:1 in the paper).
    assert sum(r.irr_invalid for r in rows) > sum(r.rpki_invalid for r in rows)
