"""Bench: regenerate Table 2 (Action 1 conformance by size class)."""

from __future__ import annotations

from repro.experiments import tab2_action1
from repro.topology.classify import SizeClass


def test_bench_tab2(benchmark, bench_world):
    summaries = benchmark(tab2_action1.run, bench_world)
    print()
    print(tab2_action1.render(summaries))
    small = summaries[SizeClass.SMALL]
    medium = summaries[SizeClass.MEDIUM]
    large = summaries[SizeClass.LARGE]
    # Paper Table 2: small 97.1% transit-conformant; medium 65.1%;
    # large 0% — partial filter coverage always leaks at scale.
    assert small.pct_transit_conformant > 88.0
    assert 40.0 < medium.pct_transit_conformant < 90.0
    assert large.transit_total > 0 and large.transit_conformant == 0
    # Most small members provide no customer transit at all (§9.3).
    assert small.transit_total < 0.5 * small.total_members
