"""Bench: the full-member-compliance counterfactual (§10's headroom)."""

from __future__ import annotations

from repro.experiments import counterfactual


def test_bench_counterfactual(benchmark, bench_world):
    result = benchmark.pedantic(
        counterfactual.run, args=(bench_world,), rounds=1, iterations=1
    )
    print()
    print(counterfactual.render(result))
    measured = result.measured
    compliant = result.full_compliance
    # Full compliance drives invalid traffic out of member networks
    # entirely (total transit pairs may *rise* as invalids detour onto
    # longer non-member paths), and no invalid announcement prefers
    # MANRS transit any more.
    assert compliant.invalid_member_transit_pairs == 0
    assert measured.invalid_member_transit_pairs > 0
    assert compliant.invalid_prefer_manrs <= measured.invalid_prefer_manrs
    assert compliant.invalid_prefer_manrs < 0.05
    # ...but cannot fix what non-members originate outside MANRS cones:
    # some invalids stay visible (the paper's "collective action" limit).
    assert compliant.visible_invalid_announcements > 0
