# Developer entry points.  All targets assume the repo root as CWD and
# need no installation: PYTHONPATH=src is injected here.

PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

JOBS ?=
SCALE ?= 1.0
LABEL ?= local
SMOKE_BUDGET ?= 120

.PHONY: test lint bench bench-baseline bench-pytest bench-smoke bench-compare build-smoke profile smoke-profile trace-smoke sweep-smoke scale-smoke serve-smoke delta-smoke scenarios-smoke

## Tier-1 test suite (unit + integration + equivalence).
test:
	$(PYTHON) -m pytest -x -q

## Static checks (ruff; config in pyproject.toml).  Skips gracefully
## when ruff is not installed so minimal containers can still run make.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

## Observability tripwire: a tiny reproduce run must emit a parseable
## trace whose span tree covers the build and every registry experiment.
trace-smoke:
	$(PYTHON) -m repro reproduce --scale 0.05 --trace-json /tmp/trace-smoke.json > /dev/null
	$(PYTHON) scripts/check_trace.py /tmp/trace-smoke.json

## Substrate benchmarks: end-to-end build + timeline, written to
## BENCH_$(LABEL).json.  Override JOBS=4 to exercise parallel collection.
bench:
	$(PYTHON) benchmarks/run.py --label $(LABEL) --scale $(SCALE) \
		$(if $(JOBS),--jobs $(JOBS))

## Paper-analysis benchmarks (pytest-benchmark; one per table/figure).
bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## Kernel-parity tripwire: a scale-0.1 world must be digest-identical
## under REPRO_KERNELS=python and =numpy (uncached builds, both modes).
bench-smoke:
	$(PYTHON) scripts/check_kernel_parity.py --scale 0.1

## Shard-parity tripwire: a scale-0.5 world built with 2 column shards
## on 2 workers must be digest-identical to the single-process build,
## and to its own checkpoint re-opened mmap'd and eagerly.
scale-smoke:
	$(PYTHON) scripts/check_shard_parity.py --scale 0.5 --shards 2 --jobs 2

## Spill-path tripwire: a small sharded build under a tiny
## REPRO_BUILD_BUDGET_MB (forcing the column accumulators to spill to
## scratch files) must be digest-identical to the unbudgeted build in
## both kernel modes, and must actually have spilled.
build-smoke:
	$(PYTHON) scripts/check_build_budget.py --scale 0.3 --shards 2 --jobs 2 \
		--budget-mb 0.05

## Regenerate benchmarks/BASELINE.json from a trusted local run.
## Refuses to overwrite the committed baseline when world digests
## drifted; acknowledge an intentional world change with
## BASELINE_FLAGS=--expect-digest-change.
BASELINE_FLAGS ?=
bench-baseline:
	$(PYTHON) scripts/refresh_baseline.py $(BASELINE_FLAGS)

## Perf gate: one quick benchmark run compared against the committed
## baseline.  COMPARE_MODE=all (default) exits 3 on >25% regression or
## digest drift; COMPARE_MODE=digests (the CI setting) warns on timing
## and exits 3 on digest drift only.
COMPARE_MODE ?= all
bench-compare:
	$(PYTHON) benchmarks/run.py --label compare --scale 0.3 --rounds 3 \
		--scale-sweep 0.3 --output-dir /tmp \
		--compare benchmarks/BASELINE.json \
		--compare-mode $(COMPARE_MODE)

## Stage-level wall-clock breakdown of one full-scale build.
profile:
	REPRO_PERF=1 $(PYTHON) benchmarks/run.py --label profile --rounds 1 \
		--scale $(SCALE) --output-dir /tmp $(if $(JOBS),--jobs $(JOBS))

## CI tripwire: scale-0.3 end-to-end build must fit a generous budget.
smoke-profile:
	$(PYTHON) benchmarks/run.py --smoke --budget $(SMOKE_BUDGET) \
		--label smoke --output-dir /tmp

## Measurement-service smoke: start `repro serve` as a subprocess, then
## liveness -> cold build -> warm hit -> 304 -> metrics -> SIGINT.
serve-smoke:
	$(PYTHON) scripts/check_serve.py

## Delta smoke: `repro replay` in a subprocess — a short synthetic event
## trace applied incrementally must digest-equal cold rebuilds at three
## instants (the replay==rebuild invariant, end to end).
delta-smoke:
	$(PYTHON) scripts/check_delta.py

## Scenario-pack smoke: every family in repro.scenarios runs on the
## pinned world in both kernel modes and must match its golden digest.
scenarios-smoke:
	$(PYTHON) scripts/check_scenarios.py

## Sweep orchestrator smoke: run -> resume -> report on the example
## grid, against a throwaway cache/ledger directory.
sweep-smoke:
	rm -rf /tmp/repro-sweep-smoke
	REPRO_CACHE_DIR=/tmp/repro-sweep-smoke $(PYTHON) -m repro sweep run examples/sweep_smoke.json --workers 2
	REPRO_CACHE_DIR=/tmp/repro-sweep-smoke $(PYTHON) -m repro sweep resume examples/sweep_smoke.json
	REPRO_CACHE_DIR=/tmp/repro-sweep-smoke $(PYTHON) -m repro sweep report examples/sweep_smoke.json
