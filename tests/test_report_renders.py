"""Tests for the ecosystem report and every experiment's render()."""

from __future__ import annotations

import pytest

from repro import experiments as ex
from repro.core.report import build_report, render_report
from repro.manrs.actions import Program
from repro.topology.classify import SizeClass


class TestEcosystemReport:
    @pytest.fixture(scope="class")
    def report(self, small_world):
        return build_report(small_world)

    def test_membership_counts(self, small_world, report):
        assert report.n_ases == len(small_world.topology)
        assert report.n_member_ases == len(small_world.members())
        assert report.n_member_orgs <= report.n_member_ases

    def test_action4_totals_add_up(self, small_world, report):
        for program in (Program.ISP, Program.CDN):
            summary = report.action4[program]
            assert (
                summary.conformant + len(summary.unconformant_asns)
                == summary.total_members
            )
            assert summary.trivially_conformant <= summary.conformant

    def test_action1_totals_add_up(self, report):
        for size in SizeClass:
            summary = report.action1[size]
            assert summary.transit_conformant <= summary.transit_total
            assert summary.total_conformant <= summary.total_members
            assert summary.transit_total <= summary.total_members

    def test_action1_members_partition_by_size(self, small_world, report):
        in_topology = sum(
            1 for a in small_world.members() if a in small_world.topology
        )
        assert (
            sum(s.total_members for s in report.action1.values())
            == in_topology
        )

    def test_saturation_bounds(self, report):
        assert 0 <= report.saturation_manrs <= 100
        assert 0 <= report.saturation_other <= 100
        assert 0 <= report.irr_coverage_manrs <= 100

    def test_preference_fractions_bounded(self, report):
        for fraction in report.preference_positive.values():
            assert 0.0 <= fraction <= 1.0

    def test_render_contains_sections(self, report):
        text = render_report(report)
        for marker in (
            "Participation",
            "Action 4",
            "Action 1",
            "Impact",
            "RPKI saturation",
        ):
            assert marker in text

    def test_empty_summaries_render_without_division_errors(self):
        from repro.core.report import Action1Summary, Action4Summary

        empty4 = Action4Summary(program=Program.ISP)
        assert empty4.pct_conformant == 100.0
        empty1 = Action1Summary(size=SizeClass.LARGE)
        assert empty1.pct_transit_conformant == 100.0
        assert empty1.pct_total_conformant == 100.0


class TestExperimentRenders:
    """Every experiment's render() must produce its table header."""

    def test_fig4(self, small_world):
        text = ex.fig4_participation.render(ex.fig4_participation.run(small_world))
        assert "Figure 4a" in text and "Figure 4b" in text

    def test_f70(self, small_world):
        text = ex.f70_completeness.render(ex.f70_completeness.run(small_world))
        assert "Finding 7.0" in text

    def test_fig5(self, small_world):
        text = ex.fig5_origination.render(ex.fig5_origination.run(small_world))
        assert "Figure 5" in text and "small MANRS" in text

    def test_f83(self, small_world):
        text = ex.f83_action4.render(ex.f83_action4.run(small_world))
        assert "ISP" in text and "CDN" in text

    def test_tab1(self, small_world):
        text = ex.tab1_casestudies.render(ex.tab1_casestudies.run(small_world))
        assert "Table 1" in text

    def test_f87(self, small_world):
        text = ex.f87_stability.render(ex.f87_stability.run(small_world))
        assert "Finding 8.7" in text

    def test_fig6(self, small_world):
        text = ex.fig6_saturation.render(ex.fig6_saturation.run(small_world))
        assert "Figure 6" in text and "2022" in text

    def test_fig7(self, small_world):
        text = ex.fig7_filtering.render(ex.fig7_filtering.run(small_world))
        assert "Figure 7" in text

    def test_fig8(self, small_world):
        text = ex.fig8_unconformant.render(ex.fig8_unconformant.run(small_world))
        assert "Figure 8" in text

    def test_tab2(self, small_world):
        text = ex.tab2_action1.render(ex.tab2_action1.run(small_world))
        assert "Table 2" in text

    def test_fig9(self, small_world):
        text = ex.fig9_preference.render(ex.fig9_preference.run(small_world))
        assert "Figure 9" in text

    def test_population_label(self):
        from repro.experiments.common import population_label

        assert population_label(SizeClass.LARGE, False) == "large non-MANRS"
        assert population_label(SizeClass.SMALL, True) == "small MANRS"

    def test_world_cache_reuses(self):
        from repro.experiments.common import world_cache

        first = world_cache(scale=0.05, seed=31)
        second = world_cache(scale=0.05, seed=31)
        assert first is second
