"""Unit tests for experiment plumbing: group_metric, case-study targets,
and World convenience accessors."""

from __future__ import annotations

from repro.experiments.common import POPULATIONS, group_metric
from repro.experiments.tab1_casestudies import case_study_targets
from repro.topology.classify import SizeClass


class TestGroupMetric:
    def test_groups_cover_all_known_ases(self, small_world):
        per_as = {asn: float(asn % 7) for asn in small_world.topology.asns}
        cdfs = group_metric(small_world, per_as, lambda value: value)
        assert set(cdfs) == set(POPULATIONS)
        assert sum(cdf.n for cdf in cdfs.values()) == len(per_as)

    def test_unknown_ases_skipped(self, small_world):
        per_as = {999999: 1.0}
        cdfs = group_metric(small_world, per_as, lambda value: value)
        assert sum(cdf.n for cdf in cdfs.values()) == 0

    def test_metric_applied(self, small_world):
        asn = small_world.topology.asns[0]
        cdfs = group_metric(small_world, {asn: 10.0}, lambda v: v * 2)
        population = (
            small_world.size_of[asn],
            asn in small_world.members(),
        )
        assert cdfs[population].values == (20.0,)


class TestCaseStudyTargets:
    def test_labels_and_membership(self, mid_world):
        targets = case_study_targets(mid_world)
        labels = [label for label, _ in targets]
        assert labels[:3] == ["CDN1", "CDN2", "CDN3"]
        assert any(label.startswith("ISP") for label in labels)
        members = mid_world.members()
        for _, asns in targets:
            assert asns
            assert all(asn in members for asn in asns)

    def test_isp_targets_are_distinct_orgs(self, mid_world):
        targets = case_study_targets(mid_world)
        isp_orgs = [
            mid_world.topology.get_as(asns[0]).org_id
            for label, asns in targets
            if label.startswith("ISP")
        ]
        assert len(isp_orgs) == len(set(isp_orgs))


class TestWorldAccessors:
    def test_all_announcements_counts(self, small_world):
        total = sum(
            len(origs) for origs in small_world.originations.values()
        )
        assert small_world.all_announcements() == total

    def test_members_defaults_to_snapshot(self, small_world):
        assert small_world.members() == small_world.manrs.member_asns(
            as_of=small_world.snapshot_date
        )

    def test_is_member_matches_set(self, small_world):
        members = small_world.members()
        some_member = next(iter(members))
        assert small_world.is_member(some_member)
        non_member = next(
            asn for asn in small_world.topology.asns if asn not in members
        )
        assert not small_world.is_member(non_member)
