"""Tests for route leaks, global hegemony, IHR serialisation, and the
delegated-stats parser."""

from __future__ import annotations

import pytest

from repro.bgp.leak import simulate_leak
from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine, RouteKind
from repro.errors import AllocationError, DatasetError, ReproError
from repro.hegemony.scores import global_hegemony, hegemony_scores
from repro.ihr.serialize import parse_ihr, serialize_ihr
from repro.registry.allocation import parse_delegations
from repro.registry.rir import RIR
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)

P2C = Relationship.PROVIDER_CUSTOMER
PEER = Relationship.PEER


def leak_topology() -> ASTopology:
    """Origin 1 and leaker 3 both customers of provider 2; leaker also
    customer of provider 4; observer 5 is a customer of 4."""
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    for asn in (1, 2, 3, 4, 5):
        topo.add_as(AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB))
    topo.add_link(2, 1, P2C)
    topo.add_link(2, 3, P2C)
    topo.add_link(4, 3, P2C)
    topo.add_link(4, 5, P2C)
    return topo


class TestRouteLeak:
    def test_leak_reaches_other_provider(self):
        engine = PropagationEngine(leak_topology())
        # 3's legitimate route to 1 is via provider 2; without the leak,
        # 4 and 5 have no route at all (2 and 4 are unconnected).
        baseline = engine.propagate(1)
        assert 4 not in baseline and 5 not in baseline
        outcome = simulate_leak(engine, origin=1, leaker=3, vantage_points=(4, 5))
        assert outcome.affected == {4: True, 5: True}
        assert outcome.affected_fraction == 1.0
        assert outcome.leaked_path == (3, 2, 1)

    def test_customer_route_is_not_a_leak(self):
        topo = leak_topology()
        engine = PropagationEngine(topo)
        # 2's route to 1 is customer-learned; "leaking" it is legal export
        with pytest.raises(ReproError):
            simulate_leak(engine, origin=1, leaker=2, vantage_points=(4,))

    def test_leaker_without_route_raises(self):
        engine = PropagationEngine(leak_topology())
        with pytest.raises(ReproError):
            simulate_leak(engine, origin=1, leaker=5, vantage_points=(4,))

    def test_origin_cannot_leak(self):
        engine = PropagationEngine(leak_topology())
        with pytest.raises(ReproError):
            simulate_leak(engine, origin=1, leaker=1, vantage_points=(4,))

    def test_rov_filters_leaked_invalid(self):
        policies = {4: ASPolicy(rov=True)}
        engine = PropagationEngine(leak_topology(), policies)
        outcome = simulate_leak(
            engine,
            origin=1,
            leaker=3,
            vantage_points=(4, 5),
            route_class=RouteClass(rpki_invalid=True),
        )
        assert outcome.affected == {4: False, 5: False}



    def test_leak_route_class_separates_baseline_from_leak(self):
        """A clean announcement leaks, but Action 1 filters see the
        leaked copy as IRR-invalid (prefix-list mismatch) and drop it."""
        policies = {4: ASPolicy(filter_customers_irr=True)}
        engine = PropagationEngine(leak_topology(), policies)
        contained = simulate_leak(
            engine,
            origin=1,
            leaker=3,
            vantage_points=(4, 5),
            leak_route_class=RouteClass(irr_invalid=True),
        )
        assert contained.affected == {4: False, 5: False}
        # without the separate class, the same leak spreads
        open_outcome = simulate_leak(
            engine, origin=1, leaker=3, vantage_points=(4, 5)
        )
        assert open_outcome.affected_fraction == 1.0


    def test_leak_on_world_spreads(self, small_world):
        engine = small_world.engine
        origin = next(
            asn
            for asn in small_world.topology.asns
            if small_world.originations.get(asn)
        )
        routes = engine.propagate(origin)
        leaker = next(
            asn
            for asn, route in routes.items()
            if route.kind is RouteKind.PROVIDER
            and small_world.topology.providers_of(asn)
        )
        outcome = simulate_leak(
            engine, origin, leaker, small_world.vantage_points
        )
        assert 0.0 <= outcome.affected_fraction <= 1.0


class TestGlobalHegemony:
    def test_average_over_destinations(self):
        local = [
            {9: 1.0, 8: 0.5},
            {9: 0.5},
        ]
        scores = global_hegemony(local)
        assert scores[9] == pytest.approx(0.75)
        assert scores[8] == pytest.approx(0.25)

    def test_empty(self):
        assert global_hegemony([]) == {}

    def test_world_global_hegemony_tops_out_at_large_transits(self, small_world):
        from repro.topology.classify import SizeClass

        local = [
            {asn: info.hegemony for asn, info in group.transits.items()}
            for group in small_world.ihr.transit_groups
        ]
        scores = global_hegemony(local)
        top = max(scores, key=scores.get)
        assert small_world.size_of[top] in (SizeClass.LARGE, SizeClass.MEDIUM)


class TestIHRSerialization:
    def test_roundtrip_prefix_origins(self, small_world):
        text = serialize_ihr(small_world.ihr)
        recovered = parse_ihr(text)
        original = {
            (r.prefix, r.origin): (r.rpki, r.irr, r.visibility)
            for r in small_world.ihr.prefix_origins
        }
        rebuilt = {
            (r.prefix, r.origin): (r.rpki, r.irr, r.visibility)
            for r in recovered.prefix_origins
        }
        assert rebuilt == original

    def test_roundtrip_transit_rows(self, small_world):
        text = serialize_ihr(small_world.ihr)
        recovered = parse_ihr(text)
        original = {
            (t.prefix, t.origin, t.transit): (t.hegemony, t.from_customer)
            for t in small_world.ihr.iter_transits()
        }
        rebuilt = {
            (t.prefix, t.origin, t.transit): (t.hegemony, t.from_customer)
            for t in recovered.iter_transits()
        }
        assert set(rebuilt) == set(original)
        for key, (hegemony, from_customer) in rebuilt.items():
            assert hegemony == pytest.approx(original[key][0], abs=1e-6)
            assert from_customer == original[key][1]

    def test_conformance_analysis_identical_after_roundtrip(self, small_world):
        from repro.core.conformance import propagation_stats

        recovered = parse_ihr(serialize_ihr(small_world.ihr))
        original_stats = propagation_stats(small_world.ihr)
        rebuilt_stats = propagation_stats(recovered)
        assert set(original_stats) == set(rebuilt_stats)
        for asn in original_stats:
            assert original_stats[asn].total == rebuilt_stats[asn].total
            assert (
                original_stats[asn].customer_unconformant
                == rebuilt_stats[asn].customer_unconformant
            )

    def test_parse_rejects_rows_before_header(self):
        with pytest.raises(DatasetError):
            parse_ihr("1.2.3.0/24,5,valid,valid,3\n")


class TestDelegatedStats:
    def test_roundtrip(self, small_world):
        text = small_world.address_space.serialize()
        records = parse_delegations(text)
        assert len(records) == len(small_world.address_space.delegations)
        original = {
            (d.prefix, d.rir, d.org_id, d.legacy)
            for d in small_world.address_space.delegations
        }
        rebuilt = {(d.prefix, d.rir, d.org_id, d.legacy) for d in records}
        assert rebuilt == original

    @pytest.mark.parametrize(
        "bad",
        [
            "ARIN|O|12.0.0.0/16",
            "NOPE|O|12.0.0.0/16|allocated",
            "ARIN|O|12.0.0.0/33|allocated",
            "ARIN|O|12.0.0.0/16|weird",
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AllocationError):
            parse_delegations(bad)
