"""Unit tests for AS number utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ASNError
from repro.net.asn import (
    AS_TRANS,
    MAX_ASN,
    format_as_path,
    format_asn,
    is_private_asn,
    is_reserved_asn,
    parse_as_path,
    parse_asn,
    strip_prepending,
    validate_asn,
)


class TestValidation:
    def test_accepts_bounds(self):
        assert validate_asn(0) == 0
        assert validate_asn(MAX_ASN) == MAX_ASN

    @pytest.mark.parametrize("bad", [-1, MAX_ASN + 1])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ASNError):
            validate_asn(bad)

    def test_rejects_bool(self):
        with pytest.raises(ASNError):
            validate_asn(True)

    def test_rejects_non_int(self):
        with pytest.raises(ASNError):
            validate_asn("65001")  # type: ignore[arg-type]


class TestParsing:
    @pytest.mark.parametrize("text", ["AS65001", "as65001", "65001", " AS65001 "])
    def test_parse_variants(self, text):
        assert parse_asn(text) == 65001

    def test_parse_rejects_garbage(self):
        with pytest.raises(ASNError):
            parse_asn("ASX")

    def test_format(self):
        assert format_asn(65001) == "AS65001"

    def test_path_roundtrip(self):
        path = (3356, 174, 65001)
        assert parse_as_path(format_as_path(path)) == path

    def test_parse_empty_path(self):
        assert parse_as_path("  ") == ()


class TestPrepending:
    def test_strip_collapses_runs(self):
        assert strip_prepending([1, 1, 1, 2, 3, 3]) == (1, 2, 3)

    def test_strip_keeps_nonadjacent_duplicates(self):
        assert strip_prepending([1, 2, 1]) == (1, 2, 1)

    def test_strip_empty(self):
        assert strip_prepending([]) == ()


class TestSpecialRanges:
    def test_private_ranges(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert is_private_asn(4200000000)
        assert not is_private_asn(3356)

    def test_reserved(self):
        assert is_reserved_asn(0)
        assert is_reserved_asn(AS_TRANS)
        assert is_reserved_asn(MAX_ASN)
        assert not is_reserved_asn(15169)


@given(st.lists(st.integers(min_value=0, max_value=MAX_ASN), max_size=20))
def test_strip_prepending_idempotent(path):
    once = strip_prepending(path)
    assert strip_prepending(once) == once
    # stripped path preserves the set of ASes
    assert set(once) == set(path)
