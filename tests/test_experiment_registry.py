"""Tests for the experiment registry (repro.experiments.registry).

Pins the registry's public contract: stable names in paper order, every
spec runnable end-to-end at a small scale, `select` filtering semantics,
and the bounded LRU behaviour of `world_cache`.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.experiments import REGISTRY, ExperimentSpec, select
from repro.experiments import common
from repro.experiments.registry import registry_table

#: The registry's names, in the paper's presentation order, followed by
#: the scenario pack (repro.scenarios) in its own order.  A new
#: experiment extends this list; renaming or reordering an existing one
#: is a breaking change for CLI users and BENCH history.
EXPECTED_NAMES = [
    "fig2",
    "fig4",
    "f70",
    "fig5",
    "f83",
    "tab1",
    "f87",
    "fig6",
    "fig7",
    "fig8",
    "tab2",
    "fig9",
    "rsrov",
    "cexp",
    "roastorm",
    "martian",
]


class TestRegistryShape:
    def test_names_stable_and_ordered(self):
        assert list(REGISTRY) == EXPECTED_NAMES

    def test_names_unique(self):
        assert len(set(REGISTRY)) == len(REGISTRY)

    def test_specs_are_complete(self):
        for name, spec in REGISTRY.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.name == name
            assert spec.title and spec.paper_ref
            assert callable(spec.run) and callable(spec.render)

    def test_registry_is_read_only(self):
        with pytest.raises(TypeError):
            REGISTRY["bogus"] = None  # type: ignore[index]

    def test_titles_unique(self):
        titles = [spec.title for spec in REGISTRY.values()]
        assert len(set(titles)) == len(titles)


class TestRegistryTable:
    def test_one_row_per_experiment(self):
        table = registry_table()
        lines = table.splitlines()
        assert lines[0].split() == ["name", "title", "paper", "ref"]
        assert len(lines) == 2 + len(REGISTRY)  # header + rule + rows

    def test_rows_carry_name_title_and_ref(self):
        table = registry_table()
        for name, spec in REGISTRY.items():
            row = next(
                line for line in table.splitlines()
                if line.startswith(f"{name} ")
            )
            assert spec.title in row
            assert spec.paper_ref in row


class TestSelect:
    def test_none_selects_everything_in_order(self):
        assert [s.name for s in select(None)] == EXPECTED_NAMES

    def test_csv_string(self):
        assert [s.name for s in select("fig5,tab2")] == ["fig5", "tab2"]

    def test_order_follows_registry_not_input(self):
        assert [s.name for s in select("tab2,fig5")] == ["fig5", "tab2"]

    def test_iterable_input(self):
        assert [s.name for s in select(["fig9", "fig2"])] == ["fig2", "fig9"]

    def test_whitespace_and_empty_parts_ignored(self):
        assert [s.name for s in select(" fig5 , ,tab2 ")] == ["fig5", "tab2"]

    def test_empty_string_selects_everything(self):
        assert [s.name for s in select("")] == EXPECTED_NAMES

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="fig99"):
            select("fig5,fig99")


class TestEverySpecRuns:
    """Every registry entry must run end-to-end on a small world."""

    @pytest.fixture(scope="class")
    def world(self):
        return common.world_cache(scale=0.05, seed=42)

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_run_and_render(self, world, name):
        spec = REGISTRY[name]
        result = spec.run(world)
        assert result is not None
        text = spec.render(result)
        assert isinstance(text, str) and text.strip()


class TestWorldCacheLRU:
    @pytest.fixture()
    def fake_builds(self, monkeypatch):
        """Replace build_world with a counter and start from an empty memo."""
        built: list[tuple[float, int]] = []

        def fake_build_world(scale, seed):
            built.append((scale, seed))
            return object()

        monkeypatch.setattr(common, "build_world", fake_build_world)
        monkeypatch.setattr(common, "_WORLDS", OrderedDict())
        return built

    def test_repeat_lookup_is_memoised(self, fake_builds):
        first = common.world_cache(0.1, 1)
        second = common.world_cache(0.1, 1)
        assert first is second
        assert fake_builds == [(0.1, 1)]

    def test_bound_evicts_least_recently_used(self, fake_builds, monkeypatch):
        monkeypatch.setattr(common, "WORLD_CACHE_SIZE", 2)
        common.world_cache(0.1, 1)
        common.world_cache(0.2, 1)
        common.world_cache(0.1, 1)  # refresh (0.1, 1): now (0.2, 1) is LRU
        common.world_cache(0.3, 1)  # evicts (0.2, 1)
        assert list(common._WORLDS) == [(0.1, 1), (0.3, 1)]
        common.world_cache(0.2, 1)  # rebuild after eviction
        assert fake_builds.count((0.2, 1)) == 2
        assert fake_builds.count((0.1, 1)) == 1

    def test_cache_never_exceeds_bound(self, fake_builds, monkeypatch):
        monkeypatch.setattr(common, "WORLD_CACHE_SIZE", 3)
        for seed in range(10):
            common.world_cache(0.1, seed)
            assert len(common._WORLDS) <= 3

    def test_bound_of_zero_still_keeps_one(self, fake_builds, monkeypatch):
        monkeypatch.setattr(common, "WORLD_CACHE_SIZE", 0)
        common.world_cache(0.1, 1)
        common.world_cache(0.1, 2)
        assert len(common._WORLDS) == 1
