"""Property-based tests for the conformance accounting (Formulas 1–6)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.classification import is_conformant, is_unconformant
from repro.core.conformance import OriginationStats, PropagationStats
from repro.irr.validation import IRRStatus
from repro.manrs.actions import Program
from repro.rpki.rov import RPKIStatus

status_pairs = st.tuples(
    st.sampled_from(list(RPKIStatus)), st.sampled_from(list(IRRStatus))
)


@given(st.lists(status_pairs, min_size=1, max_size=50))
def test_origination_counts_partition(pairs):
    stats = OriginationStats()
    for rpki, irr in pairs:
        stats.add(rpki, irr)
    assert stats.total == len(pairs)
    # RPKI buckets partition the total; so do IRR buckets.
    assert (
        stats.rpki_valid + stats.rpki_invalid + stats.rpki_not_found
        == stats.total
    )
    assert (
        stats.irr_valid
        + stats.irr_invalid_origin
        + stats.irr_invalid_length
        + stats.irr_not_found
        == stats.total
    )
    assert 0.0 <= stats.og_conformant <= 100.0
    assert 0.0 <= stats.og_rpki_valid <= 100.0


@given(status_pairs)
def test_overlap_only_for_rpki_invalid_irr_valid(pair):
    """The paper's two predicates serve different formulas and are NOT
    mutually exclusive: an RPKI-Invalid route with a Valid (or
    invalid-length) IRR object earns Action 4 credit *and* counts as
    Action 1 unconformant (ROV would drop it).  That overlap is the only
    one possible."""
    rpki, irr = pair
    if is_conformant(rpki, irr) and is_unconformant(rpki, irr):
        assert rpki.is_invalid
        assert irr in (IRRStatus.VALID, IRRStatus.INVALID_LENGTH)


@given(st.lists(status_pairs, min_size=1, max_size=50))
def test_order_invariance(pairs):
    forward = OriginationStats()
    backward = OriginationStats()
    for rpki, irr in pairs:
        forward.add(rpki, irr)
    for rpki, irr in reversed(pairs):
        backward.add(rpki, irr)
    assert forward == backward


@given(st.lists(status_pairs, min_size=1, max_size=50))
def test_cdn_threshold_stricter_than_isp(pairs):
    from repro.core.conformance import is_action4_conformant

    stats = OriginationStats()
    for rpki, irr in pairs:
        stats.add(rpki, irr)
    if is_action4_conformant(stats, Program.CDN):
        assert is_action4_conformant(stats, Program.ISP)


@given(
    st.lists(
        st.tuples(status_pairs, st.booleans()), min_size=1, max_size=50
    )
)
def test_propagation_counts_consistent(rows):
    stats = PropagationStats()
    for (rpki, irr), from_customer in rows:
        stats.add(rpki, irr, from_customer)
    assert stats.total == len(rows)
    assert stats.customer_total <= stats.total
    assert stats.customer_unconformant <= stats.customer_total
    assert 0.0 <= stats.pg_rpki_invalid <= 100.0
    assert 0.0 <= stats.pg_unconformant <= 100.0
    # Formula 4 counts exactly the invalid-flavoured rows.
    expected_invalid = sum(
        1 for (rpki, _), _ in rows if rpki.is_invalid
    )
    assert stats.rpki_invalid == expected_invalid


@given(st.lists(status_pairs, min_size=1, max_size=30))
def test_adding_valid_prefix_never_lowers_conformance(pairs):
    stats = OriginationStats()
    for rpki, irr in pairs:
        stats.add(rpki, irr)
    before = stats.og_conformant
    stats.add(RPKIStatus.VALID, IRRStatus.VALID)
    assert stats.og_conformant >= before
