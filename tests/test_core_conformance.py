"""Unit tests for §6 conformance metrics and classification."""

from __future__ import annotations

import pytest

from repro.core.classification import is_conformant, is_unconformant
from repro.core.conformance import (
    OriginationStats,
    PropagationStats,
    is_action1_fully_conformant,
    is_action4_conformant,
)
from repro.irr.validation import IRRStatus
from repro.manrs.actions import Program
from repro.rpki.rov import RPKIStatus

R = RPKIStatus
I = IRRStatus


class TestClassification:
    @pytest.mark.parametrize(
        "rpki,irr,conformant",
        [
            (R.VALID, I.NOT_FOUND, True),
            (R.VALID, I.INVALID_ORIGIN, True),
            (R.NOT_FOUND, I.VALID, True),
            (R.NOT_FOUND, I.INVALID_LENGTH, True),  # §3 TE allowance
            (R.NOT_FOUND, I.NOT_FOUND, False),
            (R.NOT_FOUND, I.INVALID_ORIGIN, False),
            (R.INVALID_ASN, I.VALID, True),  # IRR Valid still conformant
            (R.INVALID_ASN, I.NOT_FOUND, False),
            (R.INVALID_LENGTH, I.NOT_FOUND, False),
        ],
    )
    def test_is_conformant(self, rpki, irr, conformant):
        assert is_conformant(rpki, irr) == conformant

    @pytest.mark.parametrize(
        "rpki,irr,unconformant",
        [
            (R.INVALID_ASN, I.VALID, True),      # RPKI Invalid is absolute
            (R.INVALID_LENGTH, I.VALID, True),
            (R.NOT_FOUND, I.INVALID_ORIGIN, True),
            (R.NOT_FOUND, I.INVALID_LENGTH, False),
            (R.NOT_FOUND, I.NOT_FOUND, False),   # neither bucket
            (R.VALID, I.INVALID_ORIGIN, False),
        ],
    )
    def test_is_unconformant(self, rpki, irr, unconformant):
        assert is_unconformant(rpki, irr) == unconformant

    def test_both_not_found_is_neither(self):
        assert not is_conformant(R.NOT_FOUND, I.NOT_FOUND)
        assert not is_unconformant(R.NOT_FOUND, I.NOT_FOUND)


class TestOriginationStats:
    def test_formulas(self):
        stats = OriginationStats()
        stats.add(R.VALID, I.VALID)
        stats.add(R.NOT_FOUND, I.INVALID_ORIGIN)
        stats.add(R.NOT_FOUND, I.NOT_FOUND)
        stats.add(R.INVALID_ASN, I.VALID)
        assert stats.total == 4
        assert stats.og_rpki_valid == pytest.approx(25.0)
        assert stats.og_irr_valid == pytest.approx(50.0)
        assert stats.og_conformant == pytest.approx(50.0)
        assert stats.unconformant == 2

    def test_empty_percentages_are_zero(self):
        stats = OriginationStats()
        assert stats.og_rpki_valid == 0.0
        assert stats.og_conformant == 0.0

    def test_mode_flags(self):
        all_valid = OriginationStats()
        all_valid.add(R.VALID, I.VALID)
        assert all_valid.only_rpki_valid and not all_valid.no_rpki_valid

        none_valid = OriginationStats()
        none_valid.add(R.NOT_FOUND, I.VALID)
        assert none_valid.no_rpki_valid and not none_valid.only_rpki_valid

    def test_irr_only_registration(self):
        stats = OriginationStats()
        stats.add(R.NOT_FOUND, I.VALID)
        assert stats.irr_only_registration
        stats.add(R.VALID, I.VALID)
        assert not stats.irr_only_registration


class TestPropagationStats:
    def test_formulas(self):
        stats = PropagationStats()
        stats.add(R.INVALID_ASN, I.NOT_FOUND, from_customer=True)
        stats.add(R.INVALID_LENGTH, I.VALID, from_customer=False)
        stats.add(R.VALID, I.INVALID_ORIGIN, from_customer=True)
        stats.add(R.NOT_FOUND, I.VALID, from_customer=True)
        assert stats.total == 4
        # Formula 4 counts both invalid flavours
        assert stats.pg_rpki_invalid == pytest.approx(50.0)
        assert stats.pg_irr_invalid == pytest.approx(25.0)
        # customer unconformant: only the first row
        assert stats.customer_total == 3
        assert stats.pg_unconformant == pytest.approx(100.0 / 3.0)

    def test_zero_denominators(self):
        stats = PropagationStats()
        assert stats.pg_rpki_invalid == 0.0
        assert stats.pg_unconformant == 0.0


class TestActionVerdicts:
    def test_action4_isp_threshold(self):
        stats = OriginationStats()
        for _ in range(9):
            stats.add(R.VALID, I.VALID)
        stats.add(R.NOT_FOUND, I.NOT_FOUND)
        assert stats.og_conformant == pytest.approx(90.0)
        assert is_action4_conformant(stats, Program.ISP)
        assert not is_action4_conformant(stats, Program.CDN)

    def test_action4_trivial(self):
        assert is_action4_conformant(None, Program.ISP)
        assert is_action4_conformant(OriginationStats(), Program.CDN)

    def test_action1_full_conformance(self):
        stats = PropagationStats()
        stats.add(R.VALID, I.VALID, from_customer=True)
        assert is_action1_fully_conformant(stats)
        stats.add(R.INVALID_ASN, I.NOT_FOUND, from_customer=True)
        assert not is_action1_fully_conformant(stats)

    def test_action1_trivial_without_customer_transit(self):
        assert is_action1_fully_conformant(None)
        stats = PropagationStats()
        stats.add(R.INVALID_ASN, I.NOT_FOUND, from_customer=False)
        assert is_action1_fully_conformant(stats)
