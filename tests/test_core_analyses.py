"""Unit tests for participation, impact, case-study, stability, stats."""

from __future__ import annotations

import pytest

from repro.core.impact import preference_scores, rpki_saturation
from repro.core.stability import (
    StabilityClass,
    conformance_stability,
)
from repro.core.stats import make_cdf
from repro.ihr.records import IHRDataset, TransitGroup, TransitInfo
from repro.irr.validation import IRRStatus
from repro.net.prefix import Prefix
from repro.rpki.rov import RPKIStatus


class TestCDF:
    def test_fractions(self):
        cdf = make_cdf([0.0, 1.0, 2.0, 3.0])
        assert cdf.n == 4
        assert cdf.fraction_at_most(1.0) == pytest.approx(0.5)
        assert cdf.fraction_above(1.0) == pytest.approx(0.5)
        assert cdf.fraction_at_most(-1.0) == 0.0
        assert cdf.fraction_at_most(99.0) == 1.0

    def test_percentiles(self):
        cdf = make_cdf([10.0, 20.0, 30.0])
        assert cdf.median == pytest.approx(20.0)
        assert cdf.maximum == 30.0
        assert cdf.mean == pytest.approx(20.0)

    def test_variance(self):
        assert make_cdf([0.0, 10.0]).variance == pytest.approx(25.0)

    def test_empty_cdf(self):
        cdf = make_cdf([])
        assert cdf.fraction_at_most(1.0) == 0.0
        with pytest.raises(ValueError):
            cdf.median

    def test_series(self):
        cdf = make_cdf([5.0, 1.0])
        assert cdf.series() == [(1.0, 0.5), (5.0, 1.0)]


class TestStability:
    def test_classification(self):
        snapshots = [
            {1: True, 2: False, 3: True},
            {1: True, 2: False, 3: False},
        ]
        report = conformance_stability(snapshots)
        assert report.classification[1] is StabilityClass.ALWAYS_CONFORMANT
        assert report.classification[2] is StabilityClass.ALWAYS_UNCONFORMANT
        assert report.classification[3] is StabilityClass.FLAPPING
        assert report.always_conformant == 1
        assert report.always_unconformant == 1
        assert report.flapping == 1

    def test_partial_presence(self):
        snapshots = [{1: True}, {2: False}]
        report = conformance_stability(snapshots)
        assert report.classification[1] is StabilityClass.ALWAYS_CONFORMANT
        assert report.classification[2] is StabilityClass.ALWAYS_UNCONFORMANT

    def test_requires_snapshots(self):
        with pytest.raises(ValueError):
            conformance_stability([])


def _dataset_with_groups() -> IHRDataset:
    prefix_a = Prefix.parse("12.0.0.0/16")
    prefix_b = Prefix.parse("12.1.0.0/16")
    groups = [
        TransitGroup(
            origin=100,
            prefixes=(prefix_a,),
            statuses=((RPKIStatus.VALID, IRRStatus.VALID),),
            transits={
                1: TransitInfo(hegemony=1.0, from_customer=True),   # member
                2: TransitInfo(hegemony=0.4, from_customer=False),  # other
            },
            visibility=10,
        ),
        TransitGroup(
            origin=101,
            prefixes=(prefix_b,),
            statuses=((RPKIStatus.INVALID_ASN, IRRStatus.NOT_FOUND),),
            transits={2: TransitInfo(hegemony=0.9, from_customer=True)},
            visibility=4,
        ),
    ]
    return IHRDataset(prefix_origins=[], transit_groups=groups)


class TestPreferenceScores:
    def test_scores_by_status(self):
        scores = preference_scores(_dataset_with_groups(), frozenset({1}))
        assert scores["valid"] == [pytest.approx(0.6)]
        assert scores["invalid"] == [pytest.approx(-0.9)]
        assert scores["not_found"] == []


class TestSaturation:
    def test_split_by_membership(self, small_world):
        members = small_world.members()
        manrs_report, other_report = rpki_saturation(
            small_world.prefix2as, small_world.rov, members
        )
        assert manrs_report.routed_space > 0
        assert other_report.routed_space > 0
        assert 0 <= manrs_report.saturation <= 100
        assert 0 <= other_report.saturation <= 100
        assert manrs_report.covered_space <= manrs_report.routed_space
