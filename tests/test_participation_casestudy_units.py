"""Direct unit tests for participation (§6.3) and Table-1 attribution,
on hand-built inputs where every expected number is known exactly."""

from __future__ import annotations

from datetime import date

from repro.bgp.table import Prefix2AS
from repro.core.casestudy import attribute_unconformant
from repro.core.participation import (
    members_by_rir,
    registration_completeness,
    routed_space_share_by_rir,
)
from repro.ihr.records import IHRDataset, PrefixOriginRecord
from repro.irr.database import IRRDatabase
from repro.irr.objects import RouteObject
from repro.irr.validation import IRRStatus
from repro.manrs.actions import Program
from repro.manrs.registry import MANRSRegistry, Participant
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.rpki.roa import VRP
from repro.rpki.rov import ROVValidator, RPKIStatus
from repro.topology.as2org import As2Org
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)

MAY = date(2022, 5, 1)


def _p(text: str) -> Prefix:
    return Prefix.parse(text)


def build_fixture():
    """Two orgs: O1 owns AS1 (announcing) + AS2 (quiescent, unregistered);
    O2 owns AS3 (announcing, unregistered in MANRS)."""
    topo = ASTopology()
    topo.add_org(Organization("O1", "One", "US"))
    topo.add_org(Organization("O2", "Two", "DE"))
    topo.add_as(AutonomousSystem(1, "O1", "US", RIR.ARIN, ASCategory.STUB))
    topo.add_as(AutonomousSystem(2, "O1", "US", RIR.ARIN, ASCategory.STUB))
    topo.add_as(AutonomousSystem(3, "O2", "DE", RIR.RIPE, ASCategory.STUB))
    topo.add_link(1, 3, Relationship.PROVIDER_CUSTOMER)

    manrs = MANRSRegistry()
    manrs.add(Participant("O1", Program.ISP, (1,), date(2020, 1, 1)))
    manrs.add(Participant("O2", Program.ISP, (3,), date(2021, 1, 1)))

    prefix2as = Prefix2AS(
        {
            _p("12.0.0.0/16"): frozenset({1}),
            _p("31.0.0.0/16"): frozenset({3}),
        }
    )
    return topo, manrs, prefix2as


class TestParticipationUnits:
    def test_members_by_rir(self):
        topo, manrs, _ = build_fixture()
        counts = members_by_rir(topo, manrs, MAY)
        assert counts[RIR.ARIN] == 1
        assert counts[RIR.RIPE] == 1
        assert counts[RIR.APNIC] == 0
        # before O2 joined:
        early = members_by_rir(topo, manrs, date(2020, 6, 1))
        assert early[RIR.RIPE] == 0

    def test_routed_space_share(self):
        topo, manrs, prefix2as = build_fixture()
        shares = routed_space_share_by_rir(topo, manrs, prefix2as, MAY)
        # two /16s routed; each member announces one
        assert shares[RIR.ARIN] == 50.0
        assert shares[RIR.RIPE] == 50.0
        assert shares[RIR.LACNIC] == 0.0

    def test_completeness_counts(self):
        topo, manrs, prefix2as = build_fixture()
        report = registration_completeness(topo, manrs, prefix2as, MAY)
        assert report.total_orgs == 2
        # O2 registered its only AS; O1 left AS2 out.
        assert report.all_asns_registered == 1
        # AS2 is quiescent, so both orgs announce only via registered ASNs.
        assert report.all_space_via_registered == 2
        assert report.quiescent_unregistered_only == 1
        assert report.partial_announcers == 0

    def test_completeness_with_unregistered_announcer(self):
        topo, manrs, _ = build_fixture()
        prefix2as = Prefix2AS(
            {
                _p("12.0.0.0/16"): frozenset({1}),
                _p("12.1.0.0/16"): frozenset({2}),  # AS2 announces too
            }
        )
        report = registration_completeness(topo, manrs, prefix2as, MAY)
        assert report.partial_announcers == 1
        assert report.only_unregistered_announcers == 0

    def test_completeness_only_unregistered_announcer(self):
        topo, manrs, _ = build_fixture()
        prefix2as = Prefix2AS({_p("12.1.0.0/16"): frozenset({2})})
        report = registration_completeness(topo, manrs, prefix2as, MAY)
        assert report.only_unregistered_announcers == 1


class TestCaseStudyUnits:
    def _environment(self):
        topo, _, _ = build_fixture()
        as2org = As2Org.from_topology(topo)
        # AS1's announcement conflicts with registrations naming AS2
        # (sibling) and AS99 (unrelated).
        rov = ROVValidator(
            [VRP(_p("12.0.0.0/16"), 2, 16, RIR.ARIN)]  # sibling's ROA
        )
        irr = IRRDatabase("RADB")
        irr.add_route(RouteObject(_p("12.1.0.0/16"), 99, "RADB"))  # unrelated
        irr.add_route(RouteObject(_p("12.2.0.0/16"), 3, "RADB"))  # customer
        dataset = IHRDataset(
            prefix_origins=[
                PrefixOriginRecord(
                    _p("12.0.0.0/16"), 1,
                    RPKIStatus.INVALID_ASN, IRRStatus.NOT_FOUND, 5,
                ),
                PrefixOriginRecord(
                    _p("12.1.0.0/16"), 1,
                    RPKIStatus.NOT_FOUND, IRRStatus.INVALID_ORIGIN, 5,
                ),
                PrefixOriginRecord(
                    _p("12.2.0.0/16"), 1,
                    RPKIStatus.NOT_FOUND, IRRStatus.INVALID_ORIGIN, 5,
                ),
                PrefixOriginRecord(  # conformant, must be ignored
                    _p("12.3.0.0/16"), 1,
                    RPKIStatus.VALID, IRRStatus.VALID, 5,
                ),
            ],
            transit_groups=[],
        )
        return dataset, rov, irr, topo, as2org

    def test_attribution_buckets(self):
        dataset, rov, irr, topo, as2org = self._environment()
        row = attribute_unconformant(
            "ISP1", (1,), dataset, rov, irr, topo, as2org
        )
        # RPKI Invalid prefix names sibling AS2 -> Sibling/C-P
        assert row.rpki_invalid == 1
        assert row.rpki_sibling_cp == 1
        assert row.rpki_unrelated == 0
        # IRR invalids: AS99 unrelated; AS3 is AS1's customer -> C-P
        assert row.irr_invalid == 2
        assert row.irr_sibling_cp == 1
        assert row.irr_unrelated == 1
        assert row.total_attributed == 3
        assert row.sibling_cp_fraction == 2 / 3

    def test_other_origins_ignored(self):
        dataset, rov, irr, topo, as2org = self._environment()
        row = attribute_unconformant(
            "OTHER", (3,), dataset, rov, irr, topo, as2org
        )
        assert row.total_attributed == 0
