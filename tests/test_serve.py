"""End-to-end tests for the measurement service (repro.serve).

Every test drives a real :class:`~repro.serve.ReproService` over a real
loopback socket via :func:`~repro.serve.http_get` — the wire protocol,
routing, cache tiers, coalescing and load shedding are all exercised
exactly as a client sees them.  Builds are injected (a counting build
function on a thread pool), so the tests pin the *service* semantics —
one build per key, 304 on matching ETags, 503 + Retry-After past the
queue bound — without paying process-pool latency; one slow test at the
bottom runs the production spawn pool end to end.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.datasets.checkpoint import CheckpointStore
from repro.serve import (
    SERVE_SCHEMA_VERSION,
    ReproService,
    http_get,
    result_key,
)
from repro.serve.http import HTTP_VERSION


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


class CountingBuilder:
    """A build function that records every call, thread-safely."""

    def __init__(self, delay: float = 0.0, gate: threading.Event | None = None):
        self.calls: list[str] = []
        self.delay = delay
        self.gate = gate
        self._lock = threading.Lock()

    def __call__(self, job):
        with self._lock:
            self.calls.append(job.job_id)
        if self.gate is not None:
            assert self.gate.wait(10.0), "builder gate never released"
        name = job.experiments[0]
        return {
            name: {
                "text": f"{name} scale={job.scale:g} seed={job.seed}",
                "sha256": "0" * 64,
            }
        }


def run(coroutine):
    return asyncio.run(coroutine)


async def started_service(store, builder, **kwargs):
    kwargs.setdefault("executor", ThreadPoolExecutor(max_workers=4))
    service = ReproService(store=store, build_fn=builder, **kwargs)
    await service.start(port=0)
    return service


class TestCacheAndEtags:
    def test_second_identical_get_is_a_cache_hit(self, tmp_path):
        builder = CountingBuilder()

        async def scenario():
            service = await started_service(CheckpointStore(tmp_path), builder)
            try:
                target = "/experiments/fig2?scale=0.1&seed=3"
                status, headers, body = await http_get(
                    "127.0.0.1", service.port, target
                )
                assert status == 200
                status2, headers2, body2 = await http_get(
                    "127.0.0.1", service.port, target
                )
                assert status2 == 200
                assert body2 == body
                assert headers2["etag"] == headers["etag"]
                assert headers2["x-repro-key"] == headers["x-repro-key"]
                return json.loads(body)
            finally:
                await service.stop()

        payload = run(scenario())
        assert builder.calls == [builder.calls[0]] and len(builder.calls) == 1
        assert obs.counters()["serve.hits"] == 1
        assert obs.counters()["serve.misses"] == 1
        assert payload["schema_version"] == SERVE_SCHEMA_VERSION
        assert payload["experiment"] == "fig2"
        assert payload["scale"] == 0.1
        assert payload["seed"] == 3
        assert payload["result"]["text"] == "fig2 scale=0.1 seed=3"
        assert payload["key"] == result_key("fig2", 0.1, 3, {})

    def test_if_none_match_yields_304(self, tmp_path):
        builder = CountingBuilder()

        async def scenario():
            service = await started_service(CheckpointStore(tmp_path), builder)
            try:
                target = "/experiments/fig2?scale=0.1&seed=3"
                _status, headers, _body = await http_get(
                    "127.0.0.1", service.port, target
                )
                etag = headers["etag"]
                results = []
                for sent in (
                    etag,
                    f"W/{etag}",
                    f'"zzz", {etag}',
                    "*",
                    '"mismatch"',
                ):
                    results.append(
                        await http_get(
                            "127.0.0.1",
                            service.port,
                            target,
                            headers={"if-none-match": sent},
                        )
                    )
                return etag, results
            finally:
                await service.stop()

        etag, results = run(scenario())
        for status, headers, body in results[:4]:
            assert status == 304
            assert body == b""
            assert headers["etag"] == etag  # revalidation still carries it
        status, _headers, body = results[4]
        assert status == 200 and body  # mismatched tag gets the body
        assert obs.counters()["serve.not_modified"] == 4

    def test_distinct_coordinates_get_distinct_keys(self, tmp_path):
        builder = CountingBuilder()

        async def scenario():
            service = await started_service(CheckpointStore(tmp_path), builder)
            try:
                seen = {}
                for target in (
                    "/experiments/fig2?scale=0.1&seed=3",
                    "/experiments/fig2?scale=0.1&seed=4",
                    "/experiments/fig2?scale=0.1&seed=3"
                    "&set=behavior.wrong_origin_sibling=0.9",
                    "/experiments/fig4?scale=0.1&seed=3",
                ):
                    _status, headers, _body = await http_get(
                        "127.0.0.1", service.port, target
                    )
                    seen[target] = (headers["x-repro-key"], headers["etag"])
                return seen
            finally:
                await service.stop()

        seen = run(scenario())
        keys = [key for key, _ in seen.values()]
        etags = [etag for _, etag in seen.values()]
        assert len(set(keys)) == len(keys)
        assert len(set(etags)) == len(etags)
        assert len(builder.calls) == 4

    def test_results_persist_across_service_instances(self, tmp_path):
        builder = CountingBuilder()
        target = "/experiments/fig2?scale=0.1&seed=3"

        async def first():
            service = await started_service(CheckpointStore(tmp_path), builder)
            try:
                return await http_get("127.0.0.1", service.port, target)
            finally:
                await service.stop()

        async def second():
            # A build function that explodes: the answer must come from disk.
            def refuse(job):
                raise AssertionError("disk-cached key must not rebuild")

            service = await started_service(CheckpointStore(tmp_path), refuse)
            try:
                return await http_get("127.0.0.1", service.port, target)
            finally:
                await service.stop()

        _status, headers, body = run(first())
        status2, headers2, body2 = run(second())
        assert status2 == 200
        assert body2 == body
        assert headers2["etag"] == headers["etag"]

    def test_tampered_result_entry_is_rebuilt(self, tmp_path):
        builder = CountingBuilder()
        store = CheckpointStore(tmp_path)
        target = "/experiments/fig2?scale=0.1&seed=3"
        key = result_key("fig2", 0.1, 3, {})

        async def get_once():
            service = await started_service(CheckpointStore(tmp_path), builder)
            try:
                return await http_get("127.0.0.1", service.port, target)
            finally:
                await service.stop()

        run(get_once())
        path = store.result_path(key)
        record = json.loads(path.read_text())
        record["payload"]["seed"] = 999  # tamper without re-digesting
        path.write_text(json.dumps(record))
        status, _headers, body = run(get_once())
        assert status == 200
        assert json.loads(body)["seed"] == 3  # rebuilt, not the tampered copy
        assert len(builder.calls) == 2
        assert obs.counters()["checkpoint.result_corrupt"] == 1
        assert not path.exists() or json.loads(path.read_text())["payload"][
            "seed"
        ] == 3


class TestCoalescing:
    def test_concurrent_identical_cold_requests_build_once(self, tmp_path):
        gate = threading.Event()
        builder = CountingBuilder(gate=gate)

        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), builder, builders=4
            )
            try:
                target = "/experiments/fig2?scale=0.1&seed=3"
                tasks = [
                    asyncio.create_task(
                        http_get("127.0.0.1", service.port, target)
                    )
                    for _ in range(8)
                ]
                # Let every request reach the coalescing point, then
                # release the single build they all share.
                await asyncio.sleep(0.2)
                gate.set()
                return await asyncio.gather(*tasks)
            finally:
                await service.stop()

        results = run(scenario())
        assert [status for status, _h, _b in results] == [200] * 8
        assert len({body for _s, _h, body in results}) == 1
        assert len(builder.calls) == 1
        assert obs.counters()["serve.misses"] == 1
        assert obs.counters()["serve.coalesced"] == 7

    def test_build_failure_propagates_to_every_waiter(self, tmp_path):
        def explode(job):
            raise RuntimeError("synthetic build failure")

        async def scenario():
            service = await started_service(CheckpointStore(tmp_path), explode)
            try:
                target = "/experiments/fig2?scale=0.1&seed=3"
                results = await asyncio.gather(
                    *[
                        http_get("127.0.0.1", service.port, target)
                        for _ in range(3)
                    ]
                )
                # The failure is not cached: a later request re-enqueues.
                retry = await http_get("127.0.0.1", service.port, target)
                return results, retry
            finally:
                await service.stop()

        results, retry = run(scenario())
        for status, _headers, body in results:
            assert status == 500
            assert "synthetic build failure" in json.loads(body)["error"]
        assert retry[0] == 500
        assert obs.counters()["serve.build_errors"] >= 2


class TestLoadShedding:
    def test_full_queue_returns_503_with_retry_after(self, tmp_path):
        gate = threading.Event()
        builder = CountingBuilder(gate=gate)

        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path),
                builder,
                executor=ThreadPoolExecutor(max_workers=1),
                queue_limit=1,
                builders=1,
            )
            try:
                host, port = "127.0.0.1", service.port
                # Seed 0 occupies the single builder; seed 1 fills the
                # queue; seed 2 must be shed.
                first = asyncio.create_task(
                    http_get(host, port, "/experiments/fig2?scale=0.1&seed=0")
                )
                await asyncio.sleep(0.2)
                second = asyncio.create_task(
                    http_get(host, port, "/experiments/fig2?scale=0.1&seed=1")
                )
                await asyncio.sleep(0.2)
                shed = await http_get(
                    host, port, "/experiments/fig2?scale=0.1&seed=2"
                )
                gate.set()
                served = await asyncio.gather(first, second)
                # With the queue drained, the shed key goes through.
                retried = await http_get(
                    host, port, "/experiments/fig2?scale=0.1&seed=2"
                )
                return shed, served, retried
            finally:
                await service.stop()

        shed, served, retried = run(scenario())
        status, headers, body = shed
        assert status == 503
        assert headers["retry-after"] == "1"
        assert "queue full" in json.loads(body)["error"]
        assert [s for s, _h, _b in served] == [200, 200]
        assert retried[0] == 200
        assert obs.counters()["serve.rejected"] == 1


class TestMetaEndpoints:
    def test_healthz_and_experiments(self, tmp_path):
        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), CountingBuilder()
            )
            try:
                health = await http_get("127.0.0.1", service.port, "/healthz")
                table = await http_get(
                    "127.0.0.1", service.port, "/experiments"
                )
                return health, table
            finally:
                await service.stop()

        health, table = run(scenario())
        payload = json.loads(health[2])
        assert health[0] == 200
        assert payload["status"] == "ok"
        assert payload["store"] == str(tmp_path)
        assert payload["queue_depth"] == 0
        listing = json.loads(table[2])
        names = [entry["name"] for entry in listing["experiments"]]
        assert "fig2" in names and len(names) >= 10
        assert all(
            entry.keys() == {"name", "title", "paper_ref"}
            for entry in listing["experiments"]
        )

    def test_metrics_snapshot_schema(self, tmp_path):
        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), CountingBuilder()
            )
            try:
                await http_get(
                    "127.0.0.1",
                    service.port,
                    "/experiments/fig2?scale=0.1&seed=3",
                )
                return await http_get("127.0.0.1", service.port, "/metrics")
            finally:
                await service.stop()

        status, headers, body = run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/json"
        snapshot = json.loads(body)
        assert snapshot.keys() == {"schema_version", "timings_s", "metrics"}
        counters = snapshot["metrics"]["counters"]
        assert counters["serve.requests"] >= 1
        assert counters["serve.misses"] == 1
        assert snapshot["metrics"]["gauges"]["serve.inflight"] == 0

    def test_sweep_endpoints_read_the_ledger(self, tmp_path):
        from repro.sweep.ledger import RunLedger
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec.from_mapping(
            {
                "name": "serve-test",
                "axes": {"scale": [0.1], "seed": [0, 1]},
            }
        )
        jobs = spec.expand()
        ledger = RunLedger.open(tmp_path / "sweeps", spec, jobs)
        ledger.append("start", jobs[0].job_id, 1)
        ledger.append(
            "done", jobs[0].job_id, 1, seconds=0.5, payload={"x": 1}
        )
        ledger.close()

        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), CountingBuilder()
            )
            try:
                index = await http_get("127.0.0.1", service.port, "/sweeps")
                detail = await http_get(
                    "127.0.0.1", service.port, f"/sweeps/{spec.sweep_id}"
                )
                missing = await http_get(
                    "127.0.0.1", service.port, "/sweeps/deadbeef"
                )
                return index, detail, missing
            finally:
                await service.stop()

        index, detail, missing = run(scenario())
        listing = json.loads(index[2])
        assert [m["sweep_id"] for m in listing["sweeps"]] == [spec.sweep_id]
        payload = json.loads(detail[2])
        assert payload["manifest"]["name"] == "serve-test"
        states = payload["jobs"]
        assert states[jobs[0].job_id]["status"] == "done"
        assert states[jobs[1].job_id]["status"] == "pending"
        assert missing[0] == 404

    def test_sweep_directories_do_not_pollute_cache_entries(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / "sweeps" / "abc").mkdir(parents=True)
        (tmp_path / "results").mkdir(exist_ok=True)
        store.save_result("k" * 16, {"fine": True})
        assert store.entries() == []


class TestRequestValidation:
    def test_unknown_routes_and_experiments_404(self, tmp_path):
        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), CountingBuilder()
            )
            try:
                return (
                    await http_get("127.0.0.1", service.port, "/nope"),
                    await http_get(
                        "127.0.0.1", service.port, "/experiments/unknown"
                    ),
                )
            finally:
                await service.stop()

        route, experiment = run(scenario())
        assert route[0] == 404
        assert experiment[0] == 404
        assert "choose from" in json.loads(experiment[2])["error"]

    @pytest.mark.parametrize(
        "target",
        [
            "/experiments/fig2?scale=bogus",
            "/experiments/fig2?seed=1.5",
            "/experiments/fig2?scale=0",
            "/experiments/fig2?scale=99",
            "/experiments/fig2?unknown=1",
            "/experiments/fig2?set=noequals",
            "/experiments/fig2?set=not.a.path=1",
        ],
    )
    def test_bad_queries_400(self, tmp_path, target):
        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), CountingBuilder()
            )
            try:
                return await http_get("127.0.0.1", service.port, target)
            finally:
                await service.stop()

        status, _headers, body = run(scenario())
        assert status == 400
        assert json.loads(body)["error"]

    def test_non_get_methods_405(self, tmp_path):
        async def scenario():
            service = await started_service(
                CheckpointStore(tmp_path), CountingBuilder()
            )
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(
                    f"POST /healthz {HTTP_VERSION}\r\n"
                    f"host: x\r\nconnection: close\r\n\r\n".encode()
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                writer.close()
                await writer.wait_closed()
                return head.decode()
            finally:
                await service.stop()

        head = run(scenario())
        assert " 405 " in head.splitlines()[0]
        assert "allow: GET" in head


class TestResultEntries:
    def test_round_trip_and_counters(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_result("a" * 16) is None
        store.save_result("a" * 16, {"value": [1, 2, 3]})
        assert store.load_result("a" * 16) == {"value": [1, 2, 3]}
        assert store.result_keys() == ["a" * 16]
        counters = obs.counters()
        assert counters["checkpoint.result_saved"] == 1
        assert counters["checkpoint.result_miss"] == 1
        assert counters["checkpoint.result_hit"] == 1

    def test_save_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_result("b" * 16, {"value": 1})
        store.save_result("b" * 16, {"value": 2})  # first write wins
        assert store.load_result("b" * 16) == {"value": 1}


class TestProductionPool:
    def test_real_build_over_the_spawn_pool(self, tmp_path):
        """One full-stack request: spawn pool, run_job, disk, 304."""

        async def scenario():
            service = ReproService(store=CheckpointStore(tmp_path), workers=1)
            await service.start(port=0)
            try:
                target = "/experiments/fig2?scale=0.03&seed=1"
                status, headers, body = await http_get(
                    "127.0.0.1", service.port, target, timeout=300
                )
                assert status == 200, body
                revalidated = await http_get(
                    "127.0.0.1",
                    service.port,
                    target,
                    headers={"if-none-match": headers["etag"]},
                )
                return json.loads(body), revalidated
            finally:
                await service.stop()

        payload, revalidated = run(scenario())
        assert payload["experiment"] == "fig2"
        assert payload["result"]["text"]
        assert len(payload["result"]["sha256"]) == 64
        assert revalidated[0] == 304
