"""Equivalence tests for the performance fast paths.

Every optimisation added for full-scale builds — parallel ``collect_rib``,
the propagation memo and targeted fast path, bulk/memoised validation,
the incremental relying party, and the RIB lookup caches — must produce
byte-identical results to the straightforward implementation it replaces.
These tests pin that equivalence on both hand-built topologies and the
session worlds, so a future "optimisation" that changes outputs fails
loudly instead of silently skewing the paper's figures.
"""

from __future__ import annotations

import gc
import random
from datetime import date

import pytest

import repro.bgp.collector as collector_mod
from repro import obs
from repro.bgp.collector import collect_rib, select_vantage_points
from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine, RouteKind
from repro.hegemony.scores import hegemony_scores
from repro.irr.database import IRRDatabase
from repro.irr.objects import RouteObject
from repro.irr.validation import validate_irr, validate_irr_many
from repro.net.asn import strip_prepending
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.registry.rir import RIR
from repro.rpki.ca import RPKIRepository
from repro.rpki.roa import ROA
from repro.rpki.validator import IncrementalRelyingParty, RelyingParty
from repro.scenario.timeline import Timeline
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)

P2C = Relationship.PROVIDER_CUSTOMER
PEER = Relationship.PEER

ROUTE_CLASSES = [
    RouteClass(),
    RouteClass(rpki_invalid=True),
    RouteClass(irr_invalid=True),
    RouteClass(rpki_invalid=True, irr_invalid=True),
]


def make_topology(links: list[tuple[int, int, Relationship]]) -> ASTopology:
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    for asn in sorted({a for link in links for a in link[:2]}):
        topo.add_as(
            AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB)
        )
    for a, b, rel in links:
        topo.add_link(a, b, rel)
    return topo


def random_topology(rng: random.Random, n: int = 30) -> ASTopology:
    """A random mostly-hierarchical AS graph (acyclic provider DAG)."""
    links: list[tuple[int, int, Relationship]] = []
    for asn in range(2, n + 1):
        for provider in rng.sample(range(1, asn), min(asn - 1, rng.randint(1, 3))):
            links.append((provider, asn, P2C))
    linked = {frozenset(link[:2]) for link in links}
    peers = rng.sample(range(1, n + 1), min(n, 10))
    for a, b in zip(peers[::2], peers[1::2]):
        if a != b and frozenset((a, b)) not in linked:
            links.append((a, b, PEER))
    return make_topology(links)


def random_policies(rng: random.Random, topo: ASTopology) -> dict[int, ASPolicy]:
    policies = {}
    for asn in topo.asns:
        if rng.random() < 0.3:
            policies[asn] = ASPolicy(
                rov=rng.random() < 0.5,
                filter_customers_rpki=rng.random() < 0.5,
                filter_customers_irr=rng.random() < 0.5,
                filter_peers_rpki=rng.random() < 0.5,
            )
    return policies


def world_announcements(world):
    """Reconstruct the (announcement, class) stream from the built RIB."""
    from repro.bgp.announcement import Announcement

    pairs = []
    for group in world.rib.groups:
        for prefix in group.prefixes:
            pairs.append((Announcement(prefix, group.origin), group.route_class))
    return pairs


class TestParallelCollect:
    def test_parallel_matches_serial(self, small_world, monkeypatch):
        """jobs=2 must reproduce the serial snapshot group-for-group."""
        announcements = world_announcements(small_world)
        serial = collect_rib(
            small_world.engine, announcements, small_world.vantage_points, jobs=1
        )
        # Force the pool even for this small workload.
        monkeypatch.setattr(collector_mod, "MIN_PARALLEL_GROUPS", 1)
        parallel = collect_rib(
            small_world.engine, announcements, small_world.vantage_points, jobs=2
        )
        assert parallel.vantage_points == serial.vantage_points
        assert len(parallel.groups) == len(serial.groups)
        for got, want in zip(parallel.groups, serial.groups):
            assert (got.origin, got.route_class) == (want.origin, want.route_class)
            assert got.prefixes == want.prefixes
            assert got.paths == want.paths

    def test_matches_world_rib(self, small_world):
        """Serial re-collection reproduces the committed world RIB."""
        snapshot = collect_rib(
            small_world.engine,
            world_announcements(small_world),
            small_world.vantage_points,
            jobs=1,
        )
        assert [g.paths for g in snapshot.groups] == [
            g.paths for g in small_world.rib.groups
        ]


class TestPropagationMemo:
    def test_memoised_equals_uncached(self, small_world):
        """paths_to with the LRU on ≡ a cache-disabled engine."""
        topo = small_world.topology
        policies = small_world.policies
        cached = PropagationEngine(topo, policies)
        uncached = PropagationEngine(topo, policies, paths_cache_size=0)
        vps = small_world.vantage_points
        origins = sorted(topo.asns)[::37][:12]
        for route_class in ROUTE_CLASSES:
            for origin in origins:
                # Twice on the cached engine: second call is a memo hit.
                first = cached.paths_to(origin, vps, route_class)
                again = cached.paths_to(origin, vps, route_class)
                plain = uncached.paths_to(origin, vps, route_class)
                assert first == again == plain
        assert cached.cache_info()["hits"] > 0
        assert uncached.cache_info() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "max_size": 0
        }

    def test_equal_signatures_share_one_entry(self, small_world):
        """Classes filtered nowhere share a signature, hence one memo slot."""
        engine = PropagationEngine(small_world.topology, {})
        # With no policies, no class is filtered anywhere: all four classes
        # resolve to the same effective-filter signature.
        ids = {engine.signature_id(rc) for rc in ROUTE_CLASSES}
        assert len(ids) == 1
        vps = small_world.vantage_points
        origin = min(small_world.topology.asns)
        results = [engine.paths_to(origin, vps, rc) for rc in ROUTE_CLASSES]
        assert all(r == results[0] for r in results)
        info = engine.cache_info()
        assert info["misses"] == 1 and info["hits"] == len(ROUTE_CLASSES) - 1

    def test_lru_result_is_a_copy(self, small_world):
        engine = small_world.engine
        vps = small_world.vantage_points
        origin = min(small_world.topology.asns)
        first = engine.paths_to(origin, vps, RouteClass())
        first[0] = (0,)  # caller mutation must not poison the memo
        assert 0 not in engine.paths_to(origin, vps, RouteClass())


class TestTargetedPropagation:
    @pytest.mark.parametrize("trial", range(8))
    def test_targeted_equals_full(self, trial):
        """Restricted propagation agrees with full propagation on targets."""
        rng = random.Random(1000 + trial)
        topo = random_topology(rng)
        policies = random_policies(rng, topo)
        engine = PropagationEngine(topo, policies, paths_cache_size=0)
        asns = sorted(topo.asns)
        targets = tuple(rng.sample(asns, 6))
        for route_class in ROUTE_CLASSES:
            for origin in rng.sample(asns, 8):
                full = engine.propagate(origin, route_class=route_class)
                restricted = engine.propagate(
                    origin, targets=targets, route_class=route_class
                )
                for asn in targets:
                    assert restricted.get(asn) == full.get(asn), (
                        f"trial={trial} origin={origin} asn={asn}"
                    )

    @pytest.mark.parametrize("trial", range(8))
    def test_paths_to_equals_propagate(self, trial):
        """The raw-tuple fast path matches propagate-derived paths."""
        rng = random.Random(2000 + trial)
        topo = random_topology(rng)
        policies = random_policies(rng, topo)
        engine = PropagationEngine(topo, policies, paths_cache_size=0)
        asns = sorted(topo.asns)
        vps = tuple(rng.sample(asns, 6))
        for route_class in ROUTE_CLASSES:
            for origin in rng.sample(asns, 8):
                routes = engine.propagate(origin, route_class=route_class)
                expected = {
                    vp: routes[vp].path for vp in vps if vp in routes
                }
                assert engine.paths_to(origin, vps, route_class) == expected

    def test_provider_cycle_falls_back(self):
        """A provider cycle disables the topo-order path, not correctness."""
        # 1 -> 2 -> 3 -> 1 provider cycle, origin 4 below 3.
        topo = make_topology([(1, 2, P2C), (2, 3, P2C), (3, 1, P2C), (3, 4, P2C)])
        engine = PropagationEngine(topo)
        full = engine.propagate(4)
        restricted = engine.propagate(4, targets=(1, 2))
        assert restricted[1] == full[1]
        assert restricted[2] == full[2]
        assert restricted[1].kind is RouteKind.CUSTOMER


class TestIncrementalRelyingParty:
    T0 = date(2015, 1, 1)
    T9 = date(2030, 1, 1)

    def _repo(self) -> RPKIRepository:
        p = Prefix.parse
        repo = RPKIRepository()
        anchor = repo.add_trust_anchor(RIR.ARIN, self.T0, self.T9)
        cert = repo.issue_certificate(
            anchor, "ORG-1", (p("12.0.0.0/8"),), self.T0, self.T9
        )
        # Current, not-yet-valid, expiring, and expired ROAs.
        repo.add_roa(ROA(p("12.1.0.0/16"), 65001, 24, cert.certificate_id,
                         self.T0, self.T9))
        repo.add_roa(ROA(p("12.2.0.0/16"), 65002, 16, cert.certificate_id,
                         date(2020, 6, 1), self.T9))
        repo.add_roa(ROA(p("12.3.0.0/16"), 65003, 16, cert.certificate_id,
                         self.T0, date(2019, 3, 1)))
        # Orphan ROA (no issuing certificate).
        repo.add_roa(ROA(p("12.4.0.0/16"), 65004, 16, "missing-cert",
                         self.T0, self.T9))
        # Over-claiming certificate outside the anchor's space.
        evil = repo.issue_certificate(
            anchor, "EVIL", (p("31.0.0.0/8"),), self.T0, self.T9
        )
        repo.add_roa(ROA(p("31.1.0.0/16"), 65005, 16, evil.certificate_id,
                         self.T0, self.T9))
        # Short-lived certificate: its ROA's window crosses year boundaries.
        brief = repo.issue_certificate(
            anchor, "ORG-2", (p("12.128.0.0/9"),), self.T0, date(2021, 6, 1)
        )
        repo.add_roa(ROA(p("12.200.0.0/16"), 65006, 16, brief.certificate_id,
                         self.T0, self.T9))
        # Revoked certificate.
        gone = repo.issue_certificate(
            anchor, "ORG-3", (p("12.64.0.0/10"),), self.T0, self.T9
        )
        repo.add_roa(ROA(p("12.100.0.0/16"), 65007, 16, gone.certificate_id,
                         self.T0, self.T9))
        repo.revoke(gone.certificate_id)
        return repo

    def test_matches_fresh_relying_party_every_year(self):
        repo = self._repo()
        incremental = IncrementalRelyingParty(repo)
        for year in range(2015, 2026):
            as_of = date(year, 12, 31)
            fast = incremental.validate(as_of)
            slow = RelyingParty(repo).validate(as_of)
            assert sorted(fast.vrps, key=repr) == sorted(slow.vrps, key=repr)
            assert fast.rejected == slow.rejected, f"year={year}"

    def test_detects_repository_growth(self):
        repo = self._repo()
        incremental = IncrementalRelyingParty(repo)
        before = incremental.validate(date(2022, 1, 1))
        anchor = repo.add_trust_anchor(RIR.RIPE, self.T0, self.T9)
        cert = repo.issue_certificate(
            anchor, "ORG-N", (Prefix.parse("31.0.0.0/8"),), self.T0, self.T9
        )
        repo.add_roa(ROA(Prefix.parse("31.1.0.0/16"), 65010, 16,
                         cert.certificate_id, self.T0, self.T9))
        after = incremental.validate(date(2022, 1, 1))
        assert len(after.vrps) == len(before.vrps) + 1
        slow = RelyingParty(repo).validate(date(2022, 1, 1))
        assert sorted(after.vrps, key=repr) == sorted(slow.vrps, key=repr)

    def test_timeline_rov_matches_fresh(self, small_world):
        timeline = Timeline(small_world)
        party = RelyingParty(small_world.rpki_repository)
        for year in timeline.years[:: max(1, len(timeline.years) // 3)]:
            as_of = (
                small_world.config.snapshot_date
                if year == small_world.config.snapshot_date.year
                else date(year, 12, 31)
            )
            fresh = party.validate(as_of)
            fast = timeline.rov_at(year)
            assert sorted(fast.all_vrps(), key=repr) == sorted(
                fresh.vrps, key=repr
            )


class TestRibSnapshotIndex:
    def test_paths_for_matches_brute_force(self, small_world):
        rib = small_world.rib
        sample = [g for g in rib.groups[::11] if g.prefixes][:20]
        from repro.bgp.announcement import Announcement

        for group in sample:
            announcement = Announcement(group.prefixes[0], group.origin)
            brute = []
            for g in rib.groups:
                if g.origin == group.origin and announcement.prefix in g.prefixes:
                    brute.extend(g.paths.values())
            assert sorted(rib.paths_for(announcement)) == sorted(brute)

    def test_visible_announcements_matches_brute_force(self, small_world):
        rib = small_world.rib
        from repro.bgp.announcement import Announcement

        brute = {
            Announcement(prefix, g.origin)
            for g in rib.groups
            if g.paths
            for prefix in g.prefixes
        }
        assert rib.visible_announcements == brute

    def test_index_invalidated_by_append(self, small_world):
        from repro.bgp.announcement import Announcement
        from repro.bgp.collector import RouteGroup

        rib = small_world.rib
        _ = rib.visible_announcements  # prime the cache
        prefix = Prefix.parse("203.0.113.0/24")
        rib.groups.append(
            RouteGroup(
                origin=64500,
                route_class=RouteClass(),
                prefixes=(prefix,),
                paths={1: (1, 64500)},
            )
        )
        try:
            assert Announcement(prefix, 64500) in rib.visible_announcements
            assert rib.paths_for(Announcement(prefix, 64500)) == [(1, 64500)]
        finally:
            rib.groups.pop()


class TestBulkValidation:
    def test_covering_many_matches_covering(self):
        rng = random.Random(7)
        tree: RadixTree[int] = RadixTree()
        stored = []
        for i in range(200):
            length = rng.choice([8, 12, 16, 20, 24])
            prefix = Prefix.from_host(rng.randrange(0, 2**32), length)
            tree.insert(prefix, i)
            stored.append(prefix)
        queries = stored[:50] + [
            Prefix.from_host(rng.randrange(0, 2**32), 24) for _ in range(100)
        ]
        bulk = tree.covering_many(queries)
        for prefix in queries:
            assert bulk[prefix] == tree.covering(prefix)

    def test_validate_irr_many_matches_single(self, small_world):
        registry = small_world.irr
        routes = [
            (prefix, group.origin)
            for group in small_world.rib.groups[::7]
            for prefix in group.prefixes[:1]
        ][:120]
        # Off-by-one origins exercise the non-matching classifications too.
        routes += [(prefix, origin + 1) for prefix, origin in routes[:30]]
        bulk = validate_irr_many(registry, routes)
        for prefix, origin in routes:
            assert bulk[(prefix, origin)] == validate_irr(registry, prefix, origin)

    def test_irr_memo_invalidated_by_mutation(self):
        p = Prefix.parse
        db = IRRDatabase("RADB")
        status_before = validate_irr(db, p("12.1.0.0/16"), 65001)
        db.add_route(RouteObject(p("12.1.0.0/16"), 65001, "RADB"))
        status_after = validate_irr(db, p("12.1.0.0/16"), 65001)
        assert status_before != status_after

    def test_rov_validate_many_matches_single(self, small_world):
        rov = small_world.rov
        routes = {
            (prefix, group.origin)
            for group in small_world.rib.groups[::5]
            for prefix in group.prefixes[:2]
        }
        bulk = rov.validate_many(routes)
        for prefix, origin in routes:
            assert bulk[(prefix, origin)] == rov.validate(prefix, origin)


class TestVantagePointDeterminism:
    def test_repeatable(self, small_world):
        first = select_vantage_points(small_world.topology, seed=3)
        second = select_vantage_points(small_world.topology, seed=3)
        assert first == second
        assert first == tuple(sorted(first))

    def test_world_vantage_points_reproduce(self, small_world):
        config = small_world.config
        assert (
            select_vantage_points(
                small_world.topology,
                n_medium=config.n_medium_vantage_points,
                n_small=config.n_small_vantage_points,
                seed=small_world.seed + 2,
            )
            == small_world.vantage_points
        )


class TestHotHelpers:
    def test_strip_prepending_identity_when_clean(self):
        path = (3, 2, 1)
        assert strip_prepending(path) is path  # no-copy fast path

    def test_strip_prepending_collapses(self):
        assert strip_prepending((3, 3, 2, 2, 2, 1)) == (3, 2, 1)
        assert strip_prepending([5, 5, 5]) == (5,)
        assert strip_prepending(()) == ()

    @pytest.mark.parametrize("trial", range(6))
    def test_hegemony_small_paths_match_reference(self, trial):
        """Length-specialised counting ≡ the set-based reference."""
        rng = random.Random(300 + trial)
        paths = []
        for _ in range(60):
            length = rng.randint(1, 6)
            paths.append(tuple(rng.randint(1, 9) for _ in range(length)))
        stripped = [strip_prepending(p) for p in paths]

        def reference(paths, trim=0.1):
            import math

            appearances: dict[int, int] = {}
            for path in paths:
                for asn in set(path[1:-1]):
                    appearances[asn] = appearances.get(asn, 0) + 1
            cut = math.floor(len(paths) * trim)
            kept = len(paths) - 2 * cut
            scores = {}
            for asn, count in appearances.items():
                score = min(max(count - cut, 0), kept) / kept
                if score > 0:
                    scores[asn] = score
            return scores

        assert hegemony_scores(stripped, prestripped=True) == reference(stripped)


class TestGcPaused:
    def test_restores_enabled_state(self):
        assert gc.isenabled()
        with obs.gc_paused():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.gc_paused():
                raise RuntimeError("boom")
        assert gc.isenabled()

    def test_noop_when_already_disabled(self):
        gc.disable()
        try:
            with obs.gc_paused():
                assert not gc.isenabled()
            assert not gc.isenabled()
        finally:
            gc.enable()
