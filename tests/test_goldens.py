"""Golden-digest regression suite.

Pins :func:`~repro.datasets.checkpoint.dataset_digests` at two small
(scale, seed) points.  Any change to world construction or dataset
serialisation — intended or not — shows up here as a named per-dataset
drift, not a silent behaviour change.  Regenerate the goldens with
``PYTHONPATH=src python scripts/update_goldens.py`` only when the drift
is intended, and justify it in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets.checkpoint import dataset_digests, world_digest
from repro.scenario.build import build_world

GOLDENS_PATH = Path(__file__).parent / "goldens" / "world_digests.json"


def _entries() -> list[dict]:
    return json.loads(GOLDENS_PATH.read_text())["entries"]


def _drift_report(expected: dict[str, str], actual: dict[str, str]) -> str:
    """A readable per-dataset diff for the assertion message."""
    lines = []
    for name in sorted(set(expected) | set(actual)):
        want = expected.get(name, "<absent>")
        got = actual.get(name, "<absent>")
        if want != got:
            lines.append(f"  {name}: golden {want[:16]}… != built {got[:16]}…")
    return "\n".join(lines)


@pytest.mark.parametrize(
    "entry",
    _entries(),
    ids=lambda entry: f"scale{entry['scale']:g}-seed{entry['seed']}",
)
def test_world_digests_match_goldens(entry, small_world):
    scale, seed = entry["scale"], entry["seed"]
    if (scale, seed) == (small_world.scale, small_world.seed):
        world = small_world
    else:
        world = build_world(scale=scale, seed=seed)
    actual = dataset_digests(world)
    drift = _drift_report(entry["datasets"], actual)
    assert not drift, (
        f"dataset digests drifted at scale={scale:g} seed={seed}:\n{drift}\n"
        "If this change is intended, regenerate with "
        "scripts/update_goldens.py and explain why in the commit."
    )
    assert world_digest(world) == entry["world_digest"]


def test_goldens_file_shape():
    entries = _entries()
    assert len(entries) >= 2, "golden suite needs at least two points"
    for entry in entries:
        assert set(entry) == {"scale", "seed", "world_digest", "datasets"}
        assert len(entry["world_digest"]) == 64
        assert entry["datasets"], "entry pins at least one dataset digest"
        for digest in entry["datasets"].values():
            assert len(digest) == 64
