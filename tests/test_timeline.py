"""Tests for the annual timeline and weekly churn generator."""

from __future__ import annotations

from repro.manrs.actions import Program, action4_threshold
from repro.scenario.timeline import Timeline, weekly_member_conformance


class TestAnnualTimeline:
    def test_years_span_config(self, small_world):
        timeline = Timeline(small_world)
        assert timeline.years[0] == small_world.config.first_year
        assert timeline.years[-1] == small_world.snapshot_date.year

    def test_growth_monotone(self, small_world):
        points = Timeline(small_world).growth()
        asns = [p.asns for p in points]
        orgs = [p.organizations for p in points]
        assert asns == sorted(asns)
        assert orgs == sorted(orgs)
        assert asns[-1] == len(small_world.members())

    def test_vrps_grow_over_time(self, small_world):
        timeline = Timeline(small_world)
        counts = [len(timeline.rov_at(year)) for year in timeline.years]
        assert counts == sorted(counts)
        assert counts[-1] == len(small_world.rov)

    def test_members_by_rir_sums_to_total(self, small_world):
        timeline = Timeline(small_world)
        series = timeline.members_by_rir_series()
        final_total = sum(points[-1][1] for points in series.values())
        in_topology = [
            a for a in small_world.members() if a in small_world.topology
        ]
        assert final_total == len(in_topology)

    def test_routed_share_bounded(self, small_world):
        series = Timeline(small_world).routed_share_series()
        for points in series.values():
            for _, share in points:
                assert 0.0 <= share <= 100.0

    def test_saturation_series_monotone_per_population(self, small_world):
        """More ROAs + more members can only raise MANRS saturation noise
        aside; we assert the weaker invariant that the final year matches
        the world's own report."""
        from repro.core.impact import rpki_saturation

        points = Timeline(small_world).saturation_series()
        final = points[-1]
        manrs_report, other_report = rpki_saturation(
            small_world.prefix2as, small_world.rov, small_world.members()
        )
        assert final.manrs_saturation == manrs_report.saturation
        assert final.other_saturation == other_report.saturation


class TestWeeklyChurn:
    def test_shape(self, small_world):
        weekly = weekly_member_conformance(small_world, n_weeks=12, seed=1)
        assert len(weekly.dates) == 12
        assert len(weekly.percentages) == 12
        assert weekly.dates[-1] == small_world.snapshot_date
        assert weekly.dates == sorted(weekly.dates)

    def test_deterministic(self, small_world):
        a = weekly_member_conformance(small_world, seed=4)
        b = weekly_member_conformance(small_world, seed=4)
        assert a.percentages == b.percentages
        assert a.flapped == b.flapped

    def test_non_flapped_ases_are_stable(self, small_world):
        weekly = weekly_member_conformance(small_world, seed=1)
        for asn in weekly.percentages[0]:
            if asn in weekly.flapped:
                continue
            values = {week[asn] for week in weekly.percentages}
            assert len(values) == 1

    def test_flapped_ases_dip_below_threshold(self, small_world):
        weekly = weekly_member_conformance(small_world, seed=1)
        for asn in weekly.flapped:
            threshold = action4_threshold(
                small_world.manrs.program_of(asn, small_world.snapshot_date)
                or Program.ISP
            )
            verdicts = [week[asn] >= threshold for week in weekly.percentages]
            assert not all(verdicts), f"AS{asn} never dipped"
            assert any(verdicts), f"AS{asn} never recovered"

    def test_verdicts_align_with_percentages(self, small_world):
        weekly = weekly_member_conformance(small_world, seed=1)
        for pcts, verdicts in zip(weekly.percentages, weekly.verdicts):
            assert set(pcts) == set(verdicts)


class TestArchiveIntegration:
    def test_to_archive_matches_validators(self, small_world):
        from repro.rpki.rov import ROVValidator
        from repro.scenario.timeline import Timeline

        timeline = Timeline(small_world)
        archive = timeline.to_archive()
        assert len(archive.dates) == len(timeline.years)
        # The final snapshot reproduces the world's validator verbatim.
        final = archive.latest_at(small_world.snapshot_date)
        rebuilt = ROVValidator(list(final))
        assert len(rebuilt) == len(small_world.rov)
        for record in small_world.ihr.prefix_origins[:50]:
            assert (
                rebuilt.validate(record.prefix, record.origin) is record.rpki
            )

    def test_archive_snapshots_grow(self, small_world):
        from repro.scenario.timeline import Timeline

        archive = Timeline(small_world).to_archive()
        sizes = [len(archive.snapshot(d)) for d in archive.dates]
        assert sizes == sorted(sizes)
