"""Unit tests for AS-Hegemony scores and the IHR pipeline."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.announcement import Announcement
from repro.bgp.collector import collect_rib
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.hegemony.scores import hegemony_scores
from repro.ihr.pipeline import build_ihr_dataset
from repro.irr.database import IRRDatabase
from repro.irr.objects import RouteObject
from repro.irr.validation import IRRStatus
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.rpki.roa import VRP
from repro.rpki.rov import ROVValidator, RPKIStatus
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)


class TestHegemonyScores:
    def test_empty(self):
        assert hegemony_scores([]) == {}

    def test_transit_on_all_paths_scores_one(self):
        paths = [(vp, 9, 1) for vp in range(10, 20)]
        scores = hegemony_scores(paths)
        assert scores[9] == 1.0

    def test_endpoints_excluded(self):
        paths = [(10, 9, 1)]
        scores = hegemony_scores(paths, trim=0.0)
        assert 10 not in scores and 1 not in scores

    def test_prepending_collapsed(self):
        paths = [(10, 9, 9, 9, 1), (11, 9, 1)]
        assert hegemony_scores(paths, trim=0.0)[9] == 1.0

    def test_trim_discounts_rare_appearances(self):
        # AS 9 on 1 of 10 paths; 10% trim removes its single appearance.
        paths = [(10, 9, 1)] + [(vp, 8, 1) for vp in range(11, 20)]
        scores = hegemony_scores(paths, trim=0.1)
        assert 9 not in scores
        assert scores[8] == pytest.approx(1.0)

    def test_untrimmed_fraction(self):
        paths = [(10, 9, 1), (11, 9, 1), (12, 8, 1), (13, 8, 1)]
        scores = hegemony_scores(paths, trim=0.0)
        assert scores[9] == pytest.approx(0.5)
        assert scores[8] == pytest.approx(0.5)

    def test_invalid_trim_rejected(self):
        with pytest.raises(ValueError):
            hegemony_scores([(1, 2, 3)], trim=0.5)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=30), min_size=2, max_size=6
            ).map(tuple),
            min_size=1,
            max_size=20,
        )
    )
    def test_scores_bounded(self, paths):
        for score in hegemony_scores(paths).values():
            assert 0.0 < score <= 1.0


def _star_topology() -> ASTopology:
    """origin 5 under transit 2; transit 2 under tier1 1; VPs 3, 4."""
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    for asn in (1, 2, 3, 4, 5):
        topo.add_as(AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB))
    topo.add_link(1, 2, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 5, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(1, 3, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(1, 4, Relationship.PROVIDER_CUSTOMER)
    return topo


class TestIHRPipeline:
    def _build(self):
        topo = _star_topology()
        engine = PropagationEngine(topo)
        prefix = Prefix.parse("12.0.0.0/16")
        announcements = [(Announcement(prefix, 5), RouteClass())]
        rib = collect_rib(engine, announcements, [3, 4])
        rov = ROVValidator([VRP(prefix, 5, 16, RIR.ARIN)])
        irr = IRRDatabase("RADB")
        irr.add_route(RouteObject(prefix, 5, "RADB"))
        return build_ihr_dataset(rib, rov, irr, topo), prefix

    def test_prefix_origin_record(self):
        dataset, prefix = self._build()
        assert len(dataset.prefix_origins) == 1
        record = dataset.prefix_origins[0]
        assert record.origin == 5
        assert record.rpki is RPKIStatus.VALID
        assert record.irr is IRRStatus.VALID
        assert record.visibility == 2
        assert record.hegemony == 1.0

    def test_transit_group_contains_transits_not_endpoints(self):
        dataset, _ = self._build()
        assert len(dataset.transit_groups) == 1
        transits = dataset.transit_groups[0].transits
        # paths: (3,1,2,5) and (4,1,2,5): transits are 1 and 2
        assert set(transits) == {1, 2}
        assert transits[1].hegemony == pytest.approx(1.0)
        assert transits[2].hegemony == pytest.approx(1.0)

    def test_from_customer_flags(self):
        dataset, _ = self._build()
        transits = dataset.transit_groups[0].transits
        assert transits[1].from_customer  # 1 learned from customer 2
        assert transits[2].from_customer  # 2 learned from customer 5

    def test_iter_transits_expansion(self):
        dataset, prefix = self._build()
        rows = list(dataset.iter_transits())
        assert len(rows) == 2
        assert {row.transit for row in rows} == {1, 2}
        assert all(row.prefix == prefix for row in rows)

    def test_peer_learned_route_not_from_customer(self):
        topo = ASTopology()
        topo.add_org(Organization("O", "Org", "US"))
        for asn in (1, 2, 3):
            topo.add_as(
                AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB)
            )
        topo.add_link(1, 2, Relationship.PEER)      # 1 peers with origin 2
        topo.add_link(1, 3, Relationship.PROVIDER_CUSTOMER)  # VP 3 below 1
        engine = PropagationEngine(topo)
        prefix = Prefix.parse("12.0.0.0/16")
        rib = collect_rib(engine, [(Announcement(prefix, 2), RouteClass())], [3])
        dataset = build_ihr_dataset(
            rib, ROVValidator([]), IRRDatabase("RADB"), topo
        )
        transits = dataset.transit_groups[0].transits
        assert not transits[1].from_customer

    def test_origins_and_records_of(self, small_world):
        dataset = small_world.ihr
        origins = dataset.origins()
        assert origins
        some_origin = next(iter(origins))
        records = dataset.records_of(some_origin)
        assert records
        assert all(r.origin == some_origin for r in records)
