"""Unit tests for the as2org and AS-relationship dataset codecs."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.registry.rir import RIR
from repro.topology.as2org import As2Org, parse_as2org, serialize_as2org
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)
from repro.topology.relationships import (
    customers_by_provider,
    parse_relationships,
    serialize_relationships,
)


def build_topology() -> ASTopology:
    topo = ASTopology()
    topo.add_org(Organization("O1", "Alpha", "US"))
    topo.add_org(Organization("O2", "Beta", "DE"))
    for asn, org in ((10, "O1"), (11, "O1"), (20, "O2")):
        topo.add_as(
            AutonomousSystem(asn, org, "US", RIR.ARIN, ASCategory.STUB)
        )
    topo.add_link(10, 20, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(10, 11, Relationship.PEER)
    return topo


class TestAs2Org:
    def test_from_topology(self):
        snapshot = As2Org.from_topology(build_topology())
        assert snapshot.org_of[10] == "O1"
        assert snapshot.asns_of["O1"] == (10, 11)
        assert snapshot.siblings(10) == {11}
        assert snapshot.same_org(10, 11)
        assert not snapshot.same_org(10, 20)

    def test_unknown_asn_has_no_siblings(self):
        snapshot = As2Org.from_topology(build_topology())
        assert snapshot.siblings(999) == frozenset()
        assert not snapshot.same_org(999, 998)

    def test_roundtrip(self):
        snapshot = As2Org.from_topology(build_topology())
        recovered = parse_as2org(serialize_as2org(snapshot))
        assert recovered.org_of == snapshot.org_of
        assert recovered.asns_of == snapshot.asns_of
        assert recovered.org_names == snapshot.org_names

    def test_parse_rejects_record_before_header(self):
        with pytest.raises(DatasetError):
            parse_as2org("O1|Alpha|US\n")

    def test_parse_rejects_unknown_org_reference(self):
        text = "# format:org_id|name|country\n# format:aut|org_id\n10|O9\n"
        with pytest.raises(DatasetError):
            parse_as2org(text)

    def test_parse_rejects_bad_asn(self):
        text = (
            "# format:org_id|name|country\nO1|Alpha|US\n"
            "# format:aut|org_id\nxx|O1\n"
        )
        with pytest.raises(DatasetError):
            parse_as2org(text)


class TestRelationships:
    def test_roundtrip(self):
        topo = build_topology()
        edges = parse_relationships(serialize_relationships(topo))
        assert (10, 20, Relationship.PROVIDER_CUSTOMER) in edges
        assert (10, 11, Relationship.PEER) in edges

    def test_customers_by_provider(self):
        topo = build_topology()
        edges = parse_relationships(serialize_relationships(topo))
        customers = customers_by_provider(edges)
        assert customers[10] == {20}
        assert 11 not in customers

    def test_parse_skips_comments_and_blanks(self):
        assert parse_relationships("# hi\n\n1|2|-1\n") == [
            (1, 2, Relationship.PROVIDER_CUSTOMER)
        ]

    @pytest.mark.parametrize("bad", ["1|2", "a|b|-1", "1|2|5"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(DatasetError):
            parse_relationships(bad)
