"""Unit tests for the valley-free propagation engine.

These tests pin the Gao–Rexford semantics on hand-built topologies where
every selected route is known: export rules, selection preference
(customer > peer > provider, then path length, then lowest neighbour),
and the ROV / Action 1 import filters.
"""

from __future__ import annotations

import pytest

from repro.bgp.policy import ASPolicy, NeighborKind, RouteClass, covers_session
from repro.bgp.propagation import PropagationEngine, Route, RouteKind
from repro.errors import TopologyError
from repro.registry.rir import RIR
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)


def make_topology(
    links: list[tuple[int, int, Relationship]],
) -> ASTopology:
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    asns = sorted({a for link in links for a in link[:2]})
    for asn in asns:
        topo.add_as(
            AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB)
        )
    for a, b, rel in links:
        topo.add_link(a, b, rel)
    return topo


P2C = Relationship.PROVIDER_CUSTOMER
PEER = Relationship.PEER


class TestBasicPropagation:
    def test_origin_route(self):
        topo = make_topology([(1, 2, P2C)])
        engine = PropagationEngine(topo)
        routes = engine.propagate(2)
        assert routes[2] == Route(RouteKind.ORIGIN, (2,))

    def test_customer_route_up(self):
        topo = make_topology([(1, 2, P2C)])
        routes = PropagationEngine(topo).propagate(2)
        assert routes[1] == Route(RouteKind.CUSTOMER, (1, 2))

    def test_provider_route_down(self):
        topo = make_topology([(1, 2, P2C), (1, 3, P2C)])
        routes = PropagationEngine(topo).propagate(2)
        assert routes[3] == Route(RouteKind.PROVIDER, (3, 1, 2))

    def test_peer_route(self):
        topo = make_topology([(1, 2, PEER)])
        routes = PropagationEngine(topo).propagate(2)
        assert routes[1] == Route(RouteKind.PEER, (1, 2))

    def test_unknown_origin_raises(self):
        topo = make_topology([(1, 2, P2C)])
        with pytest.raises(TopologyError):
            PropagationEngine(topo).propagate(99)

    def test_unknown_target_raises(self):
        topo = make_topology([(1, 2, P2C)])
        with pytest.raises(TopologyError):
            PropagationEngine(topo).propagate(2, targets=[99])


class TestValleyFree:
    def test_no_peer_to_peer_transit(self):
        # 1--2 peers, 2--3 peers: 3 must not reach 1 through 2.
        topo = make_topology([(1, 2, PEER), (2, 3, PEER)])
        routes = PropagationEngine(topo).propagate(1)
        assert 3 not in routes

    def test_no_provider_route_re_export_to_peer(self):
        # 2 learns 1's route from its provider 3; peer 4 of 2 must not
        # hear it.  Topology: 3 is provider of both 1 and 2; 2--4 peer.
        topo = make_topology([(3, 1, P2C), (3, 2, P2C), (2, 4, PEER)])
        routes = PropagationEngine(topo).propagate(1)
        assert routes[2].kind is RouteKind.PROVIDER
        assert 4 not in routes

    def test_peer_route_exported_to_customers(self):
        # 1 origin; 2 peers with 1; 3 is 2's customer: 3 hears via 2.
        topo = make_topology([(1, 2, PEER), (2, 3, P2C)])
        routes = PropagationEngine(topo).propagate(1)
        assert routes[3] == Route(RouteKind.PROVIDER, (3, 2, 1))

    def test_customer_routes_exported_to_peers(self):
        # origin 3 is customer of 2; 2 peers with 1: 1 hears it.
        topo = make_topology([(2, 3, P2C), (1, 2, PEER)])
        routes = PropagationEngine(topo).propagate(3)
        assert routes[1] == Route(RouteKind.PEER, (1, 2, 3))


class TestSelectionPreference:
    def test_customer_beats_peer_even_if_longer(self):
        # 5 can reach 1 via customer chain 5->4->...1 (long) or via peer
        # (short); customer must win.
        topo = make_topology(
            [
                (4, 1, P2C),   # 4 provider of 1
                (5, 4, P2C),   # 5 provider of 4 (so 1 in 5's cone)
                (5, 6, PEER),
                (6, 1, P2C),
            ]
        )
        routes = PropagationEngine(topo).propagate(1)
        assert routes[5].kind is RouteKind.CUSTOMER
        assert routes[5].path == (5, 4, 1)

    def test_shorter_path_wins_within_class(self):
        # two customer chains to 1: via 2 (len 2) or via 3->4 (len 3).
        topo = make_topology(
            [(2, 1, P2C), (5, 2, P2C), (4, 1, P2C), (3, 4, P2C), (5, 3, P2C)]
        )
        routes = PropagationEngine(topo).propagate(1)
        assert routes[5].path == (5, 2, 1)

    def test_lowest_neighbor_breaks_ties(self):
        # 5 hears equal-length customer routes via 2 and 3: picks 2.
        topo = make_topology(
            [(2, 1, P2C), (3, 1, P2C), (5, 2, P2C), (5, 3, P2C)]
        )
        routes = PropagationEngine(topo).propagate(1)
        assert routes[5].path == (5, 2, 1)

    def test_provider_tiebreak_lowest_asn(self):
        # 4 has two providers (2, 3) both one hop from origin 1.
        topo = make_topology(
            [(2, 1, P2C), (3, 1, P2C), (2, 4, P2C), (3, 4, P2C)]
        )
        routes = PropagationEngine(topo).propagate(1)
        assert routes[4].path == (4, 2, 1)


class TestFiltering:
    def test_rov_blocks_invalid_everywhere(self):
        topo = make_topology([(1, 2, P2C), (1, 3, P2C)])
        policies = {1: ASPolicy(rov=True)}
        engine = PropagationEngine(topo, policies)
        invalid = RouteClass(rpki_invalid=True)
        routes = engine.propagate(2, invalid)
        assert 1 not in routes and 3 not in routes
        # conformant routes still flow
        assert 3 in engine.propagate(2)

    def test_customer_filter_blocks_customer_routes_only(self):
        # 1 filters customers; 2 (customer) announces invalid: blocked.
        # But when 1 peers with 4 announcing the same class: accepted.
        topo = make_topology([(1, 2, P2C), (1, 4, PEER)])
        policies = {1: ASPolicy(filter_customers_irr=True)}
        engine = PropagationEngine(topo, policies)
        irr_invalid = RouteClass(irr_invalid=True)
        assert 1 not in engine.propagate(2, irr_invalid)
        assert 1 in engine.propagate(4, irr_invalid)

    def test_partial_coverage_filters_some_sessions(self):
        # provider 1 with many customers at 50% coverage: some blocked.
        links = [(1, customer, P2C) for customer in range(2, 42)]
        topo = make_topology(links)
        policies = {
            1: ASPolicy(filter_customers_irr=True, customer_filter_coverage=0.5)
        }
        engine = PropagationEngine(topo, policies)
        irr_invalid = RouteClass(irr_invalid=True)
        blocked = sum(
            1 not in engine.propagate(customer, irr_invalid)
            for customer in range(2, 42)
        )
        assert 5 < blocked < 35  # ~50%, deterministic per pair

    def test_route_detours_around_filter(self):
        # 2 filters its customer 4's invalids, 3 does not; observer 5
        # (customer of both 2 and 3) still hears the route via 3.
        topo = make_topology(
            [(2, 4, P2C), (3, 4, P2C), (2, 5, P2C), (3, 5, P2C)]
        )
        policies = {2: ASPolicy(rov=True)}
        engine = PropagationEngine(topo, policies)
        invalid = RouteClass(rpki_invalid=True)
        routes = engine.propagate(4, invalid)
        assert routes[5].path == (5, 3, 4)

    def test_filtered_provider_not_transited(self):
        # chain 4 -> 3 -> 2(filter) -> 1: top AS 1 unreachable.
        topo = make_topology([(1, 2, P2C), (2, 3, P2C), (3, 4, P2C)])
        policies = {2: ASPolicy(rov=True)}
        engine = PropagationEngine(topo, policies)
        routes = engine.propagate(4, RouteClass(rpki_invalid=True))
        assert routes[3].kind is RouteKind.CUSTOMER
        assert 2 not in routes and 1 not in routes


class TestPathsTo:
    def test_paths_only_for_reachable_targets(self):
        topo = make_topology([(1, 2, P2C), (3, 4, P2C)])
        engine = PropagationEngine(topo)
        paths = engine.paths_to(2, [1, 3, 4])
        assert set(paths) == {1}

    def test_paths_start_at_vp_end_at_origin(self, small_world):
        engine = small_world.engine
        origin = small_world.topology.asns[0]
        paths = engine.paths_to(origin, small_world.vantage_points)
        for vp, path in paths.items():
            assert path[0] == vp
            assert path[-1] == origin


class TestCoversSession:
    def test_extremes(self):
        assert covers_session(1, 2, 1.0)
        assert not covers_session(1, 2, 0.0)

    def test_deterministic(self):
        assert covers_session(7, 9, 0.5) == covers_session(7, 9, 0.5)

    def test_monotone_in_coverage(self):
        # A session covered at low coverage stays covered at higher.
        for provider in range(1, 30):
            for customer in range(30, 40):
                if covers_session(provider, customer, 0.3):
                    assert covers_session(provider, customer, 0.8)

    def test_roughly_proportional(self):
        pairs = [(p, c) for p in range(1, 60) for c in range(100, 140)]
        covered = sum(covers_session(p, c, 0.3) for p, c in pairs)
        assert 0.2 < covered / len(pairs) < 0.4


class TestPolicyAccepts:
    def test_default_accepts_everything(self):
        policy = ASPolicy()
        for kind in NeighborKind:
            assert policy.accepts(RouteClass(True, True), kind)

    def test_rov_rejects_invalid_from_all(self):
        policy = ASPolicy(rov=True)
        for kind in NeighborKind:
            assert not policy.accepts(RouteClass(rpki_invalid=True), kind)
            assert policy.accepts(RouteClass(), kind)

    def test_peer_filter(self):
        policy = ASPolicy(filter_peers_irr=True)
        assert not policy.accepts(RouteClass(irr_invalid=True), NeighborKind.PEER)
        assert policy.accepts(RouteClass(irr_invalid=True), NeighborKind.CUSTOMER)

    def test_customer_filter_without_session_info_is_strict(self):
        policy = ASPolicy(filter_customers_rpki=True, customer_filter_coverage=0.5)
        assert not policy.accepts(
            RouteClass(rpki_invalid=True), NeighborKind.CUSTOMER
        )
