"""Unit and property tests for the IRR substrate (RPSL, DBs, validation)."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given, strategies as st

from repro.errors import RPSLError
from repro.irr.asset import expand_as_set
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.objects import (
    AsSetObject,
    AutNumObject,
    MntnerObject,
    RouteObject,
)
from repro.irr.rpsl import (
    parse_database,
    parse_object,
    parse_rpsl_blocks,
    serialize_database,
    serialize_object,
)
from repro.irr.validation import IRRStatus, validate_irr
from repro.net.prefix import Prefix
from repro.registry.rir import RIR


def _p(text: str) -> Prefix:
    return Prefix.parse(text)


def _route(prefix: str, origin: int, source: str = "RADB") -> RouteObject:
    return RouteObject(prefix=_p(prefix), origin=origin, source=source)


class TestObjects:
    def test_route_class_by_version(self):
        assert _route("12.0.0.0/16", 1).rpsl_class == "route"
        assert RouteObject(_p("2600::/32"), 1, "RADB").rpsl_class == "route6"

    def test_route_requires_source(self):
        with pytest.raises(RPSLError):
            RouteObject(_p("12.0.0.0/16"), 1, "")

    def test_as_set_name_validated(self):
        with pytest.raises(RPSLError):
            AsSetObject(name="CUSTOMERS", members=(), source="RADB")

    def test_as_set_member_split(self):
        as_set = AsSetObject(
            name="AS-X", members=("AS1", "AS-NESTED", "AS2"), source="RADB"
        )
        assert as_set.direct_asns == (1, 2)
        assert as_set.nested_sets == ("AS-NESTED",)

    def test_aut_num_contact(self):
        assert AutNumObject(1, "A", "RADB", admin_c="AC1").has_contact
        assert not AutNumObject(1, "A", "RADB").has_contact


class TestRPSLCodec:
    def test_block_parsing_with_continuation(self):
        text = "route: 12.0.0.0/16\ndescr: line one\n  line two\norigin: AS1\nsource: RADB\n"
        blocks = parse_rpsl_blocks(text)
        assert blocks[0][1] == ("descr", "line one line two")

    def test_comments_ignored(self):
        blocks = parse_rpsl_blocks("% whois banner\nroute: 12.0.0.0/16\norigin: AS1\nsource: RADB\n")
        assert blocks[0][0] == ("route", "12.0.0.0/16")

    def test_continuation_outside_object_rejected(self):
        with pytest.raises(RPSLError):
            parse_rpsl_blocks("  dangling\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(RPSLError):
            parse_rpsl_blocks("not an attribute\n")

    def test_route_roundtrip(self):
        route = RouteObject(
            prefix=_p("12.0.0.0/16"),
            origin=65001,
            source="RADB",
            mnt_by="MAINT-X",
            descr="test route",
            created=date(2021, 1, 1),
            last_modified=date(2022, 1, 1),
        )
        recovered = parse_object(parse_rpsl_blocks(serialize_object(route))[0])
        assert recovered == route

    def test_aut_num_roundtrip(self):
        aut_num = AutNumObject(
            asn=65001,
            as_name="TEST-AS",
            source="RIPE",
            mnt_by="MAINT-X",
            admin_c="AC1",
            tech_c="TC1",
            import_lines=("from AS2 accept ANY",),
            export_lines=("to AS2 announce AS-SELF",),
            last_modified=date(2022, 1, 1),
        )
        recovered = parse_object(parse_rpsl_blocks(serialize_object(aut_num))[0])
        assert recovered == aut_num

    def test_as_set_roundtrip(self):
        as_set = AsSetObject(
            name="AS-CUSTOMERS", members=("AS1", "AS2", "AS-SUB"), source="RADB"
        )
        recovered = parse_object(parse_rpsl_blocks(serialize_object(as_set))[0])
        assert recovered == as_set

    def test_mntner_roundtrip(self):
        mntner = MntnerObject(name="MAINT-X", admin_c="AC1")
        recovered = parse_object(parse_rpsl_blocks(serialize_object(mntner))[0])
        assert recovered == mntner

    def test_database_roundtrip(self):
        objects = [_route("12.0.0.0/16", 1), _route("12.1.0.0/16", 2)]
        assert parse_database(serialize_database(objects)) == objects

    def test_unknown_class_rejected(self):
        with pytest.raises(RPSLError):
            parse_object([("inetnum", "x"), ("source", "RADB")])

    def test_missing_mandatory_attribute_rejected(self):
        with pytest.raises(RPSLError):
            parse_object([("route", "12.0.0.0/16")])  # no origin/source


class TestDatabases:
    def test_authoritative_enforces_space(self):
        db = IRRDatabase("ARIN", authoritative_for=RIR.ARIN)
        db.add_route(_route("12.0.0.0/16", 1, source="ARIN"))
        with pytest.raises(RPSLError):
            db.add_route(_route("31.0.0.0/16", 1, source="ARIN"))  # RIPE space

    def test_mirror_accepts_anything(self):
        db = IRRDatabase("RADB")
        db.add_route(_route("31.0.0.0/16", 1))
        assert db.route_count == 1

    def test_source_must_match_database(self):
        db = IRRDatabase("RADB")
        with pytest.raises(RPSLError):
            db.add_route(_route("12.0.0.0/16", 1, source="RIPE"))

    def test_remove_route(self):
        db = IRRDatabase("RADB")
        route = _route("12.0.0.0/16", 1)
        db.add_route(route)
        assert db.remove_route(route)
        assert not db.remove_route(route)

    def test_collection_queries_all(self):
        arin = IRRDatabase("ARIN", authoritative_for=RIR.ARIN)
        radb = IRRDatabase("RADB")
        arin.add_route(_route("12.0.0.0/16", 1, source="ARIN"))
        radb.add_route(_route("12.0.0.0/8", 2))
        collection = IRRCollection([arin, radb])
        covering = collection.routes_covering(_p("12.0.0.0/24"))
        assert {r.origin for r in covering} == {1, 2}
        assert collection.route_count == 2

    def test_collection_rejects_duplicate_name(self):
        with pytest.raises(RPSLError):
            IRRCollection([IRRDatabase("RADB"), IRRDatabase("RADB")])

    def test_collection_aut_num_and_as_set_lookup(self):
        radb = IRRDatabase("RADB")
        radb.add_aut_num(AutNumObject(1, "A", "RADB"))
        radb.add_as_set(AsSetObject("AS-X", ("AS1",), "RADB"))
        collection = IRRCollection([radb])
        assert collection.aut_num(1) is not None
        assert collection.aut_num(2) is None
        assert collection.as_set("as-x") is not None


class TestValidation:
    def _registry(self) -> IRRDatabase:
        db = IRRDatabase("RADB")
        db.add_route(_route("12.0.0.0/16", 65001))
        return db

    def test_valid_exact_match(self):
        assert (
            validate_irr(self._registry(), _p("12.0.0.0/16"), 65001)
            is IRRStatus.VALID
        )

    def test_invalid_length_for_more_specific(self):
        assert (
            validate_irr(self._registry(), _p("12.0.1.0/24"), 65001)
            is IRRStatus.INVALID_LENGTH
        )

    def test_invalid_origin(self):
        assert (
            validate_irr(self._registry(), _p("12.0.0.0/16"), 65002)
            is IRRStatus.INVALID_ORIGIN
        )

    def test_not_found(self):
        assert (
            validate_irr(self._registry(), _p("99.0.0.0/8"), 65001)
            is IRRStatus.NOT_FOUND
        )

    def test_any_matching_object_validates(self):
        db = self._registry()
        db.add_route(_route("12.0.0.0/16", 65002))
        assert validate_irr(db, _p("12.0.0.0/16"), 65002) is IRRStatus.VALID

    def test_is_invalid_origin_property(self):
        assert IRRStatus.INVALID_ORIGIN.is_invalid_origin
        assert not IRRStatus.INVALID_LENGTH.is_invalid_origin


class TestAsSetExpansion:
    def _registry(self) -> IRRDatabase:
        db = IRRDatabase("RADB")
        db.add_as_set(AsSetObject("AS-TOP", ("AS1", "AS-MID"), "RADB"))
        db.add_as_set(AsSetObject("AS-MID", ("AS2", "AS-TOP"), "RADB"))  # cycle
        return db

    def test_expansion_with_cycle(self):
        assert expand_as_set(self._registry(), "AS-TOP") == {1, 2}

    def test_case_insensitive(self):
        assert expand_as_set(self._registry(), "as-top") == {1, 2}

    def test_unknown_nested_skipped_by_default(self):
        db = IRRDatabase("RADB")
        db.add_as_set(AsSetObject("AS-X", ("AS1", "AS-MISSING"), "RADB"))
        assert expand_as_set(db, "AS-X") == {1}

    def test_strict_raises_on_unknown(self):
        db = IRRDatabase("RADB")
        with pytest.raises(RPSLError):
            expand_as_set(db, "AS-MISSING", strict=True)


# -- property: RPSL round-trip over arbitrary route objects -----------------

route_objects = st.builds(
    lambda value, length, origin, source: RouteObject(
        prefix=Prefix.from_host(value, length, 4),
        origin=origin,
        source=source,
        mnt_by="MAINT-TEST",
        descr="generated",
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(["RADB", "RIPE", "ARIN", "APNIC"]),
)


@given(st.lists(route_objects, min_size=1, max_size=10))
def test_rpsl_database_roundtrip_property(objects):
    assert parse_database(serialize_database(objects)) == objects
