"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.scale == 0.2
        assert args.seed == 42
        assert args.command == "report"

    def test_common_flags_after_subcommand(self):
        args = build_parser().parse_args(["report", "--scale", "0.1", "--seed", "7"])
        assert args.scale == 0.1
        assert args.seed == 7

    def test_common_flags_before_subcommand_still_work(self):
        args = build_parser().parse_args(["--scale", "0.1", "report"])
        assert args.scale == 0.1
        assert args.seed == 42

    def test_subcommand_position_wins_over_default(self):
        args = build_parser().parse_args(["reproduce", "--trace-json", "t.json"])
        assert args.trace_json == "t.json"
        assert args.scale == 0.2

    def test_hijack_flags(self):
        args = build_parser().parse_args(
            ["hijack", "--sub-prefix", "--protected"]
        )
        assert args.sub_prefix and args.protected

    def test_sweep_run_flags(self):
        args = build_parser().parse_args(
            ["sweep", "run", "spec.json", "--workers", "3", "--timeout", "9"]
        )
        assert args.command == "sweep" and args.sweep_command == "run"
        assert args.spec == "spec.json"
        assert args.workers == 3 and args.timeout == 9.0

    def test_sweep_requires_verb(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestCommands:
    ARGS = ["--scale", "0.06", "--seed", "3"]

    def test_report(self, capsys):
        assert main(self.ARGS + ["report"]) == 0
        out = capsys.readouterr().out
        assert "MANRS ecosystem report" in out
        assert "Action 4" in out

    def test_audit(self, capsys):
        assert main(self.ARGS + ["audit"]) == 0
        out = capsys.readouterr().out
        assert "organisations unconformant" in out

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "data"
        assert main(self.ARGS + ["export", str(target)]) == 0
        assert (target / "prefix2as.txt").exists()
        assert (target / "vrps.csv").exists()

    def test_hijack(self, capsys):
        assert main(self.ARGS + ["hijack"]) == 0
        out = capsys.readouterr().out
        assert "vantage points captured" in out

    def test_hijack_protected_subprefix(self, capsys):
        assert main(self.ARGS + ["hijack", "--sub-prefix", "--protected"]) == 0
        out = capsys.readouterr().out
        assert "sub_prefix" in out

    def test_reproduce(self, capsys):
        assert main(self.ARGS + ["reproduce"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 2", "Figure 9", "Table 1", "Table 2"):
            assert marker in out


    def test_reproduce_only_filters(self, capsys):
        assert main(self.ARGS + ["reproduce", "--only", "fig5,tab2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Table 2" in out
        assert "Figure 2" not in out

    def test_reproduce_only_unknown_name(self, capsys):
        assert main(self.ARGS + ["reproduce", "--only", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_reproduce_list_prints_registry(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "paper ref" in out
        assert "fig5" in out and "Figure 5" in out

    def test_ready_known_as(self, capsys):
        assert main(self.ARGS + ["ready", "100"]) == 0
        out = capsys.readouterr().out
        assert "Action 4" in out and "Action 1" in out

    def test_ready_unknown_as(self, capsys):
        assert main(self.ARGS + ["ready", "999999"]) == 1


class TestJsonOutput:
    ARGS = ["--scale", "0.06", "--seed", "3"]

    def test_report_json(self, capsys):
        assert main(self.ARGS + ["report", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "completeness" in payload and "action4" in payload

    def test_audit_json(self, capsys):
        assert main(self.ARGS + ["audit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["unconformant_orgs"], list)

    def test_ready_json(self, capsys):
        assert main(self.ARGS + ["ready", "100", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["asn"] == 100
        assert set(payload) >= {"ready", "action4", "action1", "blockers"}


class TestSweepCli:
    @pytest.fixture
    def spec_file(self, tmp_path, monkeypatch):
        """A 2-job sweep spec with the cache dir pointed at tmp_path."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_SWEEP_FAIL_JOBS", raising=False)
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-smoke",
                    "axes": {
                        "scale": [0.05],
                        "seed": [1, 2],
                        "experiments": ["fig4"],
                    },
                    "workers": 2,
                    "timeout": 120,
                    "max_attempts": 1,
                }
            )
        )
        return path

    def test_run_status_resume_report(self, capsys, spec_file):
        assert main(["sweep", "run", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out and "ledger:" in out

        assert main(["sweep", "status", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "-- 2 done, 0 failed, 0 pending of 2 job(s)" in out

        assert main(["sweep", "resume", str(spec_file)]) == 0
        assert "(2 skipped" in capsys.readouterr().out

        assert main(["sweep", "report", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "Sweep report" in out and "fig4: 2 job(s)" in out

    def test_report_before_run_flags_missing(self, capsys, spec_file):
        assert main(["sweep", "report", str(spec_file)]) == 1
        assert "missing: 2 job(s)" in capsys.readouterr().out

    def test_sweep_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper ref" in out and "fig4" in out

    def test_requires_cache_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        spec = tmp_path / "spec.json"
        spec.write_text("{}")
        assert main(["sweep", "run", str(spec)]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_invalid_spec_exits_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"axes": {"experiments": ["fig99"]}}))
        assert main(["sweep", "run", str(spec)]) == 2
        err = capsys.readouterr().err
        assert "invalid sweep spec" in err and "fig99" in err


class TestTraceJson:
    def test_trace_covers_build_and_experiments(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        args = [
            "reproduce",
            "--scale", "0.06",
            "--seed", "3",
            "--only", "fig5,tab2",
            "--trace-json", str(trace),
        ]
        assert main(args) == 0
        document = json.loads(trace.read_text())
        assert document["schema_version"] == 1

        def names(nodes):
            out = set()
            for node in nodes:
                out.add(node["name"])
                out |= names(node.get("children", ()))
            return out

        seen = names(document["spans"])
        assert {"cli.reproduce", "cli.build_world", "build.topology"} <= seen
        assert {"experiment.fig5", "experiment.tab2"} <= seen
        counters = document["metrics"]["counters"]
        assert counters["collect.routes_propagated"] > 0
        assert "propagation.cache_hits" in counters
