"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.scale == 0.2
        assert args.seed == 42
        assert args.command == "report"

    def test_hijack_flags(self):
        args = build_parser().parse_args(
            ["hijack", "--sub-prefix", "--protected"]
        )
        assert args.sub_prefix and args.protected


class TestCommands:
    ARGS = ["--scale", "0.06", "--seed", "3"]

    def test_report(self, capsys):
        assert main(self.ARGS + ["report"]) == 0
        out = capsys.readouterr().out
        assert "MANRS ecosystem report" in out
        assert "Action 4" in out

    def test_audit(self, capsys):
        assert main(self.ARGS + ["audit"]) == 0
        out = capsys.readouterr().out
        assert "organisations unconformant" in out

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "data"
        assert main(self.ARGS + ["export", str(target)]) == 0
        assert (target / "prefix2as.txt").exists()
        assert (target / "vrps.csv").exists()

    def test_hijack(self, capsys):
        assert main(self.ARGS + ["hijack"]) == 0
        out = capsys.readouterr().out
        assert "vantage points captured" in out

    def test_hijack_protected_subprefix(self, capsys):
        assert main(self.ARGS + ["hijack", "--sub-prefix", "--protected"]) == 0
        out = capsys.readouterr().out
        assert "sub_prefix" in out

    def test_reproduce(self, capsys):
        assert main(self.ARGS + ["reproduce"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 2", "Figure 9", "Table 1", "Table 2"):
            assert marker in out


    def test_ready_known_as(self, capsys):
        assert main(self.ARGS + ["ready", "100"]) == 0
        out = capsys.readouterr().out
        assert "Action 4" in out and "Action 1" in out

    def test_ready_unknown_as(self, capsys):
        assert main(self.ARGS + ["ready", "999999"]) == 1
