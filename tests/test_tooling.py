"""Tests for the operator tooling: ROV inference, filtergen, MRT dumps."""

from __future__ import annotations

from datetime import date

import pytest

from repro.bgp.mrt import parse_rib, serialize_rib
from repro.bgp.policy import ASPolicy
from repro.core.rov_inference import (
    InferenceQuality,
    evaluate_inference,
    infer_rov,
)
from repro.errors import DatasetError
from repro.irr.database import IRRDatabase
from repro.irr.filtergen import build_prefix_filter
from repro.irr.objects import AsSetObject, RouteObject
from repro.net.prefix import Prefix
from repro.topology.classify import SizeClass


class TestROVInference:
    def test_detects_rov_deployers_on_small_world(self, small_world):
        """Large ASes are on most beacon paths, so true deployers among
        them should mostly be recovered."""
        sizes = small_world.size_of
        targets = [
            asn
            for asn, size in sizes.items()
            if size in (SizeClass.LARGE, SizeClass.MEDIUM)
        ]
        beacons = [
            asn for asn, size in sizes.items() if size is SizeClass.SMALL
        ][:8]
        inferred = infer_rov(small_world.engine, beacons, targets)
        quality = evaluate_inference(inferred, small_world.policies)
        assert quality.recall > 0.6

    def test_false_positives_exist_behind_filters(self):
        """An AS single-homed behind an ROV provider is inferred as
        deploying even though it does not — the §11 limitation."""
        from repro.bgp.propagation import PropagationEngine
        from repro.registry.rir import RIR
        from repro.topology.model import (
            ASCategory,
            ASTopology,
            AutonomousSystem,
            Organization,
            Relationship,
        )

        topo = ASTopology()
        topo.add_org(Organization("O", "Org", "US"))
        for asn in (1, 2, 3):
            topo.add_as(
                AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB)
            )
        # beacon origin 3 and victim-of-inference 2 both under provider 1
        topo.add_link(1, 2, Relationship.PROVIDER_CUSTOMER)
        topo.add_link(1, 3, Relationship.PROVIDER_CUSTOMER)
        policies = {1: ASPolicy(rov=True)}
        engine = PropagationEngine(topo, policies)
        inferred = infer_rov(engine, [3], targets=[1, 2])
        assert inferred[2], "AS2 should be (wrongly) inferred as deploying"
        quality = evaluate_inference(inferred, policies)
        assert quality.false_positives >= 1
        assert quality.precision < 1.0

    def test_contradiction_clears_inference(self):
        """If any beacon's invalid route arrives, the AS is not inferred."""
        from repro.bgp.propagation import PropagationEngine
        from repro.registry.rir import RIR
        from repro.topology.model import (
            ASCategory,
            ASTopology,
            AutonomousSystem,
            Organization,
            Relationship,
        )

        topo = ASTopology()
        topo.add_org(Organization("O", "Org", "US"))
        for asn in (1, 2):
            topo.add_as(
                AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB)
            )
        topo.add_link(1, 2, Relationship.PROVIDER_CUSTOMER)
        engine = PropagationEngine(topo)  # nobody filters
        inferred = infer_rov(engine, [2], targets=[1])
        assert not inferred[1]

    def test_quality_properties(self):
        quality = InferenceQuality(2, 1, 1, 6)
        assert quality.precision == pytest.approx(2 / 3)
        assert quality.recall == pytest.approx(2 / 3)
        empty = InferenceQuality(0, 0, 0, 5)
        assert empty.precision == 1.0 and empty.recall == 1.0


class TestFilterGen:
    def _registry(self) -> IRRDatabase:
        db = IRRDatabase("RADB")
        db.add_as_set(
            AsSetObject("AS-CUST", ("AS10", "AS-SUB"), "RADB")
        )
        db.add_as_set(AsSetObject("AS-SUB", ("AS20",), "RADB"))
        db.add_route(RouteObject(Prefix.parse("12.0.0.0/16"), 10, "RADB"))
        db.add_route(RouteObject(Prefix.parse("31.5.0.0/18"), 20, "RADB"))
        db.add_route(RouteObject(Prefix.parse("99.0.0.0/8"), 30, "RADB"))
        return db

    def test_filter_covers_member_routes_only(self):
        prefix_filter = build_prefix_filter(self._registry(), "AS-CUST")
        assert len(prefix_filter) == 2
        assert prefix_filter.admits(Prefix.parse("12.0.0.0/16"))
        assert prefix_filter.admits(Prefix.parse("31.5.0.0/18"))
        assert not prefix_filter.admits(Prefix.parse("99.0.0.0/8"))

    def test_upto_allows_deaggregation(self):
        prefix_filter = build_prefix_filter(self._registry(), "AS-CUST", upto=24)
        assert prefix_filter.admits(Prefix.parse("12.0.5.0/24"))
        assert not prefix_filter.admits(Prefix.parse("12.0.5.0/25"))

    def test_origin_check(self):
        prefix_filter = build_prefix_filter(self._registry(), "AS-CUST")
        assert prefix_filter.admits(Prefix.parse("12.0.0.0/16"), origin=10)
        assert not prefix_filter.admits(Prefix.parse("12.0.0.0/16"), origin=20)

    def test_render(self):
        prefix_filter = build_prefix_filter(self._registry(), "AS-CUST")
        text = prefix_filter.render()
        assert "permit 12.0.0.0/16 le 24 (AS10)" in text

    def test_filter_from_world_as_set(self, small_world):
        """Filters built from a world's as-sets admit the registered
        announcements of the member customers."""
        radb = small_world.irr.database("RADB")
        # find any as-set generated by the scenario
        transit = next(
            asn
            for asn in small_world.topology.asns
            if radb.as_set(f"AS-{asn}-CUSTOMERS") is not None
        )
        prefix_filter = build_prefix_filter(
            small_world.irr, f"AS-{transit}-CUSTOMERS"
        )
        assert len(prefix_filter) > 0
        entry = prefix_filter.entries[0]
        assert prefix_filter.admits(entry.prefix, origin=entry.origin)


class TestMRT:
    def test_roundtrip_preserves_entries(self, small_world):
        text = serialize_rib(small_world.rib, small_world.snapshot_date)
        recovered = parse_rib(text)
        original = {
            (e.vantage_point, e.prefix, e.origin, e.path)
            for e in small_world.rib.iter_entries()
        }
        rebuilt = {
            (e.vantage_point, e.prefix, e.origin, e.path)
            for e in recovered.iter_entries()
        }
        assert rebuilt == original
        assert recovered.vantage_points == small_world.vantage_points

    def test_parse_rejects_malformed(self):
        with pytest.raises(DatasetError):
            parse_rib("TABLE_DUMP2|x\n")
        with pytest.raises(DatasetError):
            parse_rib(
                "TABLE_DUMP2|0|B|10.0.0.1|5|12.0.0.0/16|7 9|IGP\n"
            )  # path does not start at peer AS 5

    def test_empty_serialization(self):
        from repro.bgp.collector import RibSnapshot

        empty = RibSnapshot(vantage_points=(), groups=[])
        assert serialize_rib(empty, date(2022, 5, 1)) == ""

    def test_parsed_rib_feeds_pipeline(self, small_world):
        """A dump can be fed back through the IHR pipeline: prefix-origin
        statuses recomputed off the file match the originals."""
        from repro.ihr.pipeline import build_ihr_dataset

        text = serialize_rib(small_world.rib, small_world.snapshot_date)
        recovered = parse_rib(text)
        dataset = build_ihr_dataset(
            recovered, small_world.rov, small_world.irr, small_world.topology
        )
        original = {
            (r.prefix, r.origin): (r.rpki, r.irr)
            for r in small_world.ihr.prefix_origins
        }
        rebuilt = {
            (r.prefix, r.origin): (r.rpki, r.irr)
            for r in dataset.prefix_origins
        }
        assert rebuilt == original
