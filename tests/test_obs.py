"""Tests for the structured observability layer (repro.obs).

Covers span nesting, counter aggregation and span attribution, gauge
semantics, snapshot JSON round-tripping, and the exporters.
"""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_state():
    """Each test starts and ends with empty observability state."""
    obs.reset()
    yield
    obs.reset()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with obs.span("outer"):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                with obs.span("leaf"):
                    pass
        roots = obs.root_spans()
        assert [s.name for s in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_elapsed_and_containment(self):
        with obs.span("parent"):
            with obs.span("child"):
                pass
        parent = obs.root_spans()[0]
        child = parent.children[0]
        assert parent.elapsed >= child.elapsed >= 0.0

    def test_attributes_at_open_and_annotate(self):
        with obs.span("work", scale=0.5):
            obs.annotate(items=42)
        span = obs.root_spans()[0]
        assert span.attrs == {"scale": 0.5, "items": 42}

    def test_annotate_outside_span_is_noop(self):
        obs.annotate(ignored=True)  # must not raise
        assert obs.root_spans() == []

    def test_current_span(self):
        assert obs.current_span() is None
        with obs.span("open"):
            current = obs.current_span()
            assert current is not None and current.name == "open"
        assert obs.current_span() is None

    def test_exception_still_records_span(self):
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        assert [s.name for s in obs.root_spans()] == ["failing"]

    def test_timings_accumulate_across_repeats(self):
        for _ in range(3):
            with obs.span("repeated"):
                pass
        timings = obs.timings()
        assert list(timings) == ["repeated"]
        assert timings["repeated"] >= 0.0


class TestMetrics:
    def test_counters_accumulate(self):
        obs.add("routes", 10)
        obs.add("routes", 5)
        obs.add("hits")
        assert obs.counters() == {"routes": 15, "hits": 1}

    def test_gauges_keep_last_value(self):
        obs.gauge("workers", 4)
        obs.gauge("workers", 8)
        assert obs.gauges() == {"workers": 8}

    def test_counters_attributed_to_innermost_span(self):
        with obs.span("outer"):
            obs.add("n", 1)
            with obs.span("inner"):
                obs.add("n", 2)
        outer = obs.root_spans()[0]
        assert outer.counters == {"n": 1}
        assert outer.children[0].counters == {"n": 2}
        # The process-wide registry sees the total.
        assert obs.counters() == {"n": 3}


class TestSnapshot:
    def test_json_round_trip(self):
        with obs.span("build", scale=0.1):
            obs.add("routes", 7)
            with obs.span("child"):
                pass
        obs.gauge("jobs", 2)
        snap = obs.snapshot()
        assert snap == json.loads(json.dumps(snap))
        assert snap["schema_version"] == obs.SCHEMA_VERSION
        assert snap["metrics"]["counters"] == {"routes": 7}
        assert snap["metrics"]["gauges"] == {"jobs": 2}
        (root,) = snap["spans"]
        assert root["name"] == "build"
        assert root["attrs"] == {"scale": 0.1}
        assert root["counters"] == {"routes": 7}
        assert [c["name"] for c in root["children"]] == ["child"]

    def test_snapshot_without_spans(self):
        with obs.span("s"):
            pass
        snap = obs.snapshot(spans=False)
        assert "spans" not in snap
        assert "s" in snap["timings_s"]

    def test_write_json(self, tmp_path):
        with obs.span("alpha"):
            obs.add("k", 3)
        path = tmp_path / "trace.json"
        obs.write_json(str(path))
        document = json.loads(path.read_text())
        assert document["spans"][0]["name"] == "alpha"
        assert document["metrics"]["counters"] == {"k": 3}


class TestExporters:
    def test_render_tree_indents_children(self):
        with obs.span("top"):
            with obs.span("sub"):
                obs.add("c", 2)
        text = obs.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("top: ")
        assert lines[1].startswith("  sub: ")
        assert "(c=2)" in lines[1]

    def test_render_flat_label_value_lines(self):
        with obs.span("stage.one"):
            pass
        obs.add("routes", 12)
        obs.gauge("jobs", 3)
        lines = obs.render_flat().splitlines()
        assert any(line.startswith("span_seconds.stage.one ") for line in lines)
        assert "counter.routes 12" in lines
        assert "gauge.jobs 3" in lines
        for line in lines:
            label, value = line.split(" ")
            float(value)  # every value parses as a number

    def test_perf_env_prints_stage_lines(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PERF", "1")
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        err = capsys.readouterr().err
        lines = err.splitlines()
        # Children close first; nested spans are indented (legacy format).
        assert lines[0].startswith("[perf]   inner: ")
        assert lines[1].startswith("[perf] outer: ")


class TestRuntimeHelpers:
    def test_timings_ordered_by_first_completion(self):
        with obs.span("a"):
            with obs.span("b"):
                pass
        with obs.span("a"):
            pass
        assert list(obs.timings()) == ["b", "a"]

    def test_resolve_jobs_contract(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert obs.resolve_jobs() == 1
        assert obs.resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert obs.resolve_jobs() == 5
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert obs.resolve_jobs() == 1

    def test_gc_paused_restores_state(self):
        import gc

        assert gc.isenabled()
        with obs.gc_paused():
            assert not gc.isenabled()
        assert gc.isenabled()


class TestPipelineIntegration:
    def test_build_emits_spans_and_counters(self):
        from repro.scenario.build import build_world

        obs.reset()
        world = build_world(scale=0.05, seed=3)
        names = {s.name for s in obs.root_spans()}
        assert {"build.topology", "build.collect_rib", "build.ihr"} <= names
        counters = obs.counters()
        assert counters["build.ases"] == len(world.topology.asns)
        assert counters["collect.routes_propagated"] > 0
        assert counters["rov.vrps_loaded"] > 0
        assert counters["ihr.prefix_origins"] > 0
        # Validation memo warms in build.classify, hits in ihr.validate.
        assert counters["rov.memo_hits"] > 0
        assert counters["irr.memo_hits"] > 0
        timings = obs.timings()
        assert set(names) <= set(timings)

    def test_observation_only_world_output_stable(self):
        """The obs layer is observation-only: builds are unaffected by it."""
        from repro.scenario.build import build_world

        def fingerprint(world):
            return [
                (g.origin, g.route_class, g.prefixes, g.paths)
                for g in world.rib.groups
            ]

        obs.reset()
        first = fingerprint(build_world(scale=0.05, seed=9))
        # A second build on dirty obs state (no reset) must be identical.
        second = fingerprint(build_world(scale=0.05, seed=9))
        assert first == second
