"""Tests for the unified runtime configuration (repro.config).

The contract under test: one frozen dataclass resolved with ``explicit
> environment > default`` precedence, installable process-wide or for a
``with`` block, consulted by every call-time reader the per-site env
lookups used to own (kernel mode, mmap, world-load strategy, default
store, jobs/shards resolution).
"""

from __future__ import annotations

import pytest

from repro import config
from repro.config import ENV_VARS, RuntimeConfig


@pytest.fixture(autouse=True)
def clean_runtime(monkeypatch):
    """No installed config and no REPRO_* env leakage between tests."""
    for var in ENV_VARS.values():
        monkeypatch.delenv(var, raising=False)
    config.set_current(None)
    yield
    config.set_current(None)


class TestDefaults:
    def test_empty_environment_is_the_historical_baseline(self):
        runtime = RuntimeConfig.resolve(env={})
        assert runtime == RuntimeConfig()
        assert runtime.jobs == 1
        assert runtime.shards == 1
        assert runtime.kernels == "numpy"
        assert runtime.mmap is True
        assert runtime.world_load == "columnar"
        assert runtime.cache_dir is None
        assert runtime.world_cache_size == 4
        assert runtime.paths_cache is None

    def test_frozen_and_comparable(self):
        runtime = RuntimeConfig()
        with pytest.raises(AttributeError):
            runtime.jobs = 2
        assert RuntimeConfig(jobs=2) == RuntimeConfig(jobs=2)
        assert RuntimeConfig(jobs=2) != RuntimeConfig(jobs=3)

    def test_validation_rejects_bad_modes(self):
        with pytest.raises(ValueError, match="kernel mode"):
            RuntimeConfig(kernels="fortran")
        with pytest.raises(ValueError, match="load mode"):
            RuntimeConfig(world_load="sideways")
        with pytest.raises(ValueError, match="world_cache_size"):
            RuntimeConfig(world_cache_size=0)


class TestFromEnv:
    def test_reads_every_documented_variable(self):
        env = {
            "REPRO_JOBS": "4",
            "REPRO_SHARDS": "8",
            "REPRO_KERNELS": "python",
            "REPRO_MMAP": "0",
            "REPRO_WORLD_LOAD": "eager",
            "REPRO_CACHE_DIR": "/tmp/store",
            "REPRO_WORLD_CACHE_SIZE": "9",
            "REPRO_PATHS_CACHE": "123",
        }
        runtime = RuntimeConfig.from_env(env)
        assert runtime == RuntimeConfig(
            jobs=4,
            shards=8,
            kernels="python",
            mmap=False,
            world_load="eager",
            cache_dir="/tmp/store",
            world_cache_size=9,
            paths_cache=123,
        )

    def test_malformed_values_fall_back_leniently(self):
        env = {
            "REPRO_JOBS": "many",
            "REPRO_SHARDS": "several",
            "REPRO_WORLD_LOAD": "sideways",
            "REPRO_WORLD_CACHE_SIZE": "-3",
            "REPRO_PATHS_CACHE": "big",
        }
        assert RuntimeConfig.from_env(env) == RuntimeConfig()

    def test_bad_kernels_value_raises(self):
        # The one deliberate exception to lenient parsing: a kernel-mode
        # typo must not silently change which implementation ran.
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            RuntimeConfig.from_env({"REPRO_KERNELS": "fortran"})

    def test_mmap_falsey_spellings(self):
        for raw in ("0", "false", "off", "no", "FALSE", "Off"):
            assert RuntimeConfig.from_env({"REPRO_MMAP": raw}).mmap is False
        for raw in ("1", "true", "yes", "on"):
            assert RuntimeConfig.from_env({"REPRO_MMAP": raw}).mmap is True


class TestResolvePrecedence:
    def test_explicit_beats_env_beats_default(self):
        env = {"REPRO_JOBS": "4", "REPRO_SHARDS": "8"}
        runtime = RuntimeConfig.resolve(env=env, jobs=2)
        assert runtime.jobs == 2  # explicit wins
        assert runtime.shards == 8  # env fills the unspecified
        assert runtime.kernels == "numpy"  # default fills the rest

    def test_none_override_means_unspecified(self):
        env = {"REPRO_JOBS": "4"}
        assert RuntimeConfig.resolve(env=env, jobs=None).jobs == 4

    def test_unknown_field_is_a_type_error(self):
        with pytest.raises(TypeError, match="workers"):
            RuntimeConfig.resolve(env={}, workers=4)

    def test_merged_applies_non_none_on_top(self):
        base = RuntimeConfig(jobs=2, shards=4)
        merged = base.merged(jobs=None, shards=8)
        assert merged == RuntimeConfig(jobs=2, shards=8)
        assert base.merged() is base

    def test_effective_jobs_zero_means_all_cores(self):
        import os

        assert RuntimeConfig(jobs=0).effective_jobs() == (os.cpu_count() or 1)
        assert RuntimeConfig(jobs=3).effective_jobs() == 3


class TestActiveConfig:
    def test_current_reads_env_at_call_time_when_uninstalled(self, monkeypatch):
        assert config.current().kernels == "numpy"
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert config.current().kernels == "python"

    def test_set_current_overrides_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        config.set_current(RuntimeConfig(jobs=2))
        assert config.current().jobs == 2
        config.set_current(None)
        assert config.current().jobs == 7

    def test_use_nests_and_restores(self):
        outer = RuntimeConfig(jobs=2)
        inner = RuntimeConfig(jobs=3)
        with config.use(outer):
            assert config.current() is outer
            with config.use(inner):
                assert config.current() is inner
            assert config.current() is outer
        assert config.current() == RuntimeConfig.from_env()

    def test_use_none_is_a_no_op(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        with config.use(None):
            assert config.current().jobs == 5

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with config.use(RuntimeConfig(jobs=9)):
                raise RuntimeError("boom")
        assert config.current().jobs == 1


class TestCallTimeReaders:
    """The leaf readers the config replaced all consult ``current()``."""

    def test_resolve_jobs_honours_installed_config(self):
        from repro.obs import resolve_jobs

        with config.use(RuntimeConfig(jobs=6)):
            assert resolve_jobs() == 6
            assert resolve_jobs(2) == 2  # explicit argument still wins

    def test_kernel_mode_honours_installed_config(self):
        from repro.kernels import kernel_mode

        with config.use(RuntimeConfig(kernels="python")):
            assert kernel_mode() == "python"

    def test_mmap_and_world_load_honour_installed_config(self):
        from repro.datasets.arraystore import mmap_enabled
        from repro.datasets.checkpoint import world_load_mode

        with config.use(RuntimeConfig(mmap=False, world_load="eager")):
            assert mmap_enabled() is False
            assert world_load_mode() == "eager"

    def test_default_store_honours_installed_config(self, tmp_path):
        from repro.datasets.checkpoint import default_store

        assert default_store() is None
        with config.use(RuntimeConfig(cache_dir=str(tmp_path))):
            store = default_store()
            assert store is not None
            assert store.root == tmp_path

    def test_picklable_for_pool_initializers(self):
        import pickle

        runtime = RuntimeConfig(jobs=3, kernels="python")
        assert pickle.loads(pickle.dumps(runtime)) == runtime


class TestRuntimeParameter:
    """``runtime=`` on an entry point governs the whole call."""

    def test_build_world_runtime_controls_kernel_mode(self):
        from repro.scenario.build import build_world

        python_world = build_world(
            scale=0.03, seed=5, runtime=RuntimeConfig(kernels="python")
        )
        numpy_world = build_world(
            scale=0.03, seed=5, runtime=RuntimeConfig(kernels="numpy")
        )
        from repro.datasets.checkpoint import world_digest

        assert world_digest(python_world) == world_digest(numpy_world)

    def test_explicit_runtime_beats_environment(self, monkeypatch):
        from repro.kernels import kernel_mode
        from repro.scenario import build as build_mod

        monkeypatch.setenv("REPRO_KERNELS", "python")
        seen: dict[str, str] = {}
        original = build_mod._build_world

        def spy(*args, **kwargs):
            seen["mode"] = kernel_mode()
            return original(*args, **kwargs)

        monkeypatch.setattr(build_mod, "_build_world", spy)
        build_mod.build_world(
            scale=0.02, seed=1, runtime=RuntimeConfig(kernels="numpy")
        )
        assert seen["mode"] == "numpy"
