"""Unit and property tests for repro.net.prefix."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import PrefixError
from repro.net.prefix import Prefix, aggregate_address_count, coalesce


class TestParsing:
    def test_parse_ipv4(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.version == 4
        assert p.length == 8
        assert p.network_address == "10.0.0.0"
        assert str(p) == "10.0.0.0/8"

    def test_parse_bare_address_is_host_prefix(self):
        assert Prefix.parse("192.0.2.1").length == 32
        assert Prefix.parse("2001:db8::1").length == 128

    def test_parse_ipv6_compressed(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.version == 6
        assert p.network_address == "2001:db8::"

    def test_parse_ipv6_full_form(self):
        p = Prefix.parse("2001:0db8:0000:0000:0000:0000:0000:0000/32")
        assert p == Prefix.parse("2001:db8::/32")

    def test_parse_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(0x0A000001, 8, 4)

    def test_from_host_masks_host_bits(self):
        p = Prefix.from_host(0x0A0000FF, 8, 4)
        assert p == Prefix.parse("10.0.0.0/8")

    @pytest.mark.parametrize(
        "bad",
        [
            "10.0.0.0/33",
            "256.0.0.0/8",
            "10.0.0/8",
            "10.0.0.0/x",
            "2001:db8::/129",
            "1::2::3/64",
            "::12345/128",
            "",
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_prefix_error_is_value_error(self):
        with pytest.raises(ValueError):
            Prefix.parse("not-a-prefix")


class TestAlgebra:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.1.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/8"))

    def test_never_contains_across_versions(self):
        assert not Prefix.parse("0.0.0.0/0").contains(Prefix.parse("::/128"))

    def test_overlaps_is_symmetric_for_nested(self):
        outer, inner = Prefix.parse("10.0.0.0/8"), Prefix.parse("10.2.3.0/24")
        assert outer.overlaps(inner) and inner.overlaps(outer)

    def test_supernet_default_one_bit(self):
        assert Prefix.parse("10.1.0.0/16").supernet() == Prefix.parse("10.0.0.0/15")

    def test_supernet_to_specific_length(self):
        assert Prefix.parse("10.1.2.0/24").supernet(8) == Prefix.parse("10.0.0.0/8")

    def test_supernet_rejects_longer(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets_split(self):
        halves = list(Prefix.parse("10.0.0.0/8").subnets())
        assert halves == [Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/9")]

    def test_subnets_at_length(self):
        quarters = list(Prefix.parse("10.0.0.0/8").subnets(10))
        assert len(quarters) == 4
        assert all(Prefix.parse("10.0.0.0/8").contains(q) for q in quarters)

    def test_address_count(self):
        assert Prefix.parse("10.0.0.0/8").address_count == 2**24
        assert Prefix.parse("192.0.2.1/32").address_count == 1

    def test_bit_at(self):
        p = Prefix.parse("128.0.0.0/1")
        assert p.bit_at(0) == 1
        with pytest.raises(PrefixError):
            p.bit_at(1)

    def test_ordering_is_address_order(self):
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("9.0.0.0/8"),
            Prefix.parse("10.0.0.0/16"),
        ]
        ordered = sorted(prefixes)
        assert [str(p) for p in ordered] == [
            "9.0.0.0/8",
            "10.0.0.0/8",
            "10.0.0.0/16",
        ]

    def test_hashable_and_eq(self):
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1


class TestAggregateCount:
    def test_disjoint(self):
        total = aggregate_address_count(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")]
        )
        assert total == 512

    def test_nested_counted_once(self):
        total = aggregate_address_count(
            [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")]
        )
        assert total == 2**24

    def test_partial_overlap_via_adjacent_supernet(self):
        total = aggregate_address_count(
            [Prefix.parse("10.0.0.0/9"), Prefix.parse("10.0.0.0/8")]
        )
        assert total == 2**24

    def test_empty(self):
        assert aggregate_address_count([]) == 0

    def test_mixed_versions_sum(self):
        total = aggregate_address_count(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("2001:db8::/127")]
        )
        assert total == 256 + 2


class TestCoalesce:
    def test_merges_siblings(self):
        merged = coalesce(
            [Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/9")]
        )
        assert merged == [Prefix.parse("10.0.0.0/8")]

    def test_drops_contained(self):
        merged = coalesce(
            [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")]
        )
        assert merged == [Prefix.parse("10.0.0.0/8")]

    def test_keeps_disjoint(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("12.0.0.0/8")]
        assert coalesce(prefixes) == sorted(prefixes)


# -- property-based tests ---------------------------------------------------

v4_prefixes = st.builds(
    lambda value, length: Prefix.from_host(value, length, 4),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)


@given(v4_prefixes)
def test_parse_roundtrip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(v4_prefixes)
def test_supernet_contains(prefix):
    if prefix.length > 0:
        assert prefix.supernet().contains(prefix)


@given(v4_prefixes)
def test_subnets_partition_address_count(prefix):
    if prefix.length < 32:
        subnets = list(prefix.subnets())
        assert sum(s.address_count for s in subnets) == prefix.address_count


@given(v4_prefixes, v4_prefixes)
def test_containment_matches_interval_logic(a, b):
    interval_contains = a.first <= b.first and b.last <= a.last
    assert a.contains(b) == interval_contains


@given(st.lists(v4_prefixes, max_size=30))
def test_coalesce_preserves_address_count(prefixes):
    merged = coalesce(prefixes)
    assert aggregate_address_count(merged) == aggregate_address_count(prefixes)
    # coalesced sets are non-overlapping
    for i, p in enumerate(merged):
        for q in merged[i + 1:]:
            assert not p.overlaps(q)


v6_prefixes = st.builds(
    lambda value, length: Prefix.from_host(value, length, 6),
    st.integers(min_value=0, max_value=2**128 - 1),
    st.integers(min_value=0, max_value=128),
)


@given(v6_prefixes)
def test_v6_parse_roundtrip(prefix):
    assert Prefix.parse(str(prefix)) == prefix
