"""Tests for the MANRS readiness check and prefix churn."""

from __future__ import annotations

from datetime import timedelta

from repro.core.conformance import is_action4_conformant, origination_stats
from repro.core.readiness import check_readiness, render_readiness
from repro.manrs.actions import Program
from repro.manrs.contacts import ContactRecord, PeeringDBLike
from repro.scenario.timeline import flagship_prefix_churn


class TestReadiness:
    def _fresh_contacts(self, world, asns) -> PeeringDBLike:
        registry = PeeringDBLike()
        for asn in asns:
            registry.upsert(
                ContactRecord(
                    asn,
                    f"noc@as{asn}.example",
                    world.snapshot_date - timedelta(days=1),
                )
            )
        return registry

    def test_clean_as_is_ready(self, small_world):
        stats = origination_stats(small_world.ihr)
        clean = next(
            asn
            for asn, as_stats in stats.items()
            if as_stats.og_conformant == 100.0
            and asn in small_world.topology
        )
        report = check_readiness(
            small_world,
            clean,
            peeringdb=self._fresh_contacts(small_world, [clean]),
        )
        assert report.action4_ok
        assert report.unregistered_prefixes == ()
        if report.action1_ok:
            assert report.ready
            assert "READY" in render_readiness(report)

    def test_unregistered_as_is_blocked(self, small_world):
        stats = origination_stats(small_world.ihr)
        dirty = next(
            asn
            for asn, as_stats in stats.items()
            if asn in small_world.topology
            and not is_action4_conformant(as_stats, Program.ISP)
        )
        report = check_readiness(
            small_world,
            dirty,
            peeringdb=self._fresh_contacts(small_world, [dirty]),
        )
        assert not report.action4_ok
        assert not report.ready
        assert report.unregistered_prefixes
        assert any("Action 4" in blocker for blocker in report.blockers)
        assert "FAIL" in render_readiness(report)

    def test_missing_contacts_block(self, small_world):
        stats = origination_stats(small_world.ihr)
        clean = next(
            asn
            for asn, as_stats in stats.items()
            if as_stats.og_conformant == 100.0 and asn in small_world.topology
        )
        report = check_readiness(small_world, clean, peeringdb=PeeringDBLike())
        if not report.action3_ok:
            assert not report.ready
            assert any("Action 3" in blocker for blocker in report.blockers)

    def test_member_flagged(self, small_world):
        member = next(iter(small_world.members()))
        report = check_readiness(small_world, member)
        assert report.already_member
        assert "member" in render_readiness(report)

    def test_quiescent_as_trivially_passes_1_and_4(self, small_world):
        quiescent = next(iter(small_world.quiescent))
        report = check_readiness(
            small_world,
            quiescent,
            peeringdb=self._fresh_contacts(small_world, [quiescent]),
        )
        assert report.action4_ok and report.action1_ok
        assert report.origination_pct == 100.0


class TestPrefixChurn:
    def test_counts_are_consistent(self, small_world):
        churn = flagship_prefix_churn(small_world, seed=4)
        assert churn, "CDN members with prefixes should exist"
        for asn, record in churn.items():
            total = len(small_world.originations[asn])
            assert record.stable + record.withdrawn == total
            assert record.status_changes <= record.stable
            assert record.added >= 0

    def test_deterministic(self, small_world):
        a = flagship_prefix_churn(small_world, seed=4)
        b = flagship_prefix_churn(small_world, seed=4)
        assert a == b

    def test_targets_biggest_cdn_originators(self, small_world):
        from repro.manrs.actions import Program

        churn = flagship_prefix_churn(small_world, seed=4)
        cdn_members = small_world.manrs.member_asns(
            as_of=small_world.snapshot_date, program=Program.CDN
        )
        assert set(churn) <= set(cdn_members)
