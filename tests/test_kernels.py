"""Property-based equivalence: columnar kernels vs pure-Python references.

Every kernel in ``repro.kernels`` must be byte-identical to the Python
reference path it shadows.  The golden-digest suite pins that end to end
on two fixed worlds; these tests pin it property-by-property on
*generated* inputs, where Hypothesis explores corner cases (empty
inputs, duplicate prefixes, AS0 entries, shared covering sets) a fixed
world may never hit.

Each test drives the public API with ``REPRO_KERNELS`` flipped between
modes and asserts full equality, so the suite is meaningful regardless
of the ambient mode it runs under.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from datetime import date
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.collector import RouteGroup
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.ihr.pipeline import _transit_groups_numpy, _transit_groups_python
from repro.irr.database import IRRDatabase
from repro.irr.objects import RouteObject
from repro.irr.validation import validate_irr_many
from repro.kernels import kernel_mode
from repro.kernels.intervals import union_address_count
from repro.net.prefix import Prefix, aggregate_address_count
from repro.registry.rir import RIR
from repro.rpki.roa import VRP
from repro.rpki.rov import ROVValidator
from repro.scenario.timeline import Timeline
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)

GOLDENS = Path(__file__).parent / "goldens" / "world_digests.json"


@contextmanager
def kernel_env(mode: str):
    """Temporarily force ``REPRO_KERNELS`` to ``mode``."""
    previous = os.environ.get("REPRO_KERNELS")
    os.environ["REPRO_KERNELS"] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = previous


# -- strategies -------------------------------------------------------------

ASNS = st.integers(min_value=1, max_value=64)


@st.composite
def v4_prefixes(draw) -> Prefix:
    length = draw(st.integers(min_value=8, max_value=32))
    key = draw(st.integers(min_value=0, max_value=(1 << length) - 1))
    return Prefix(key << (32 - length), length, 4)


@st.composite
def v6_prefixes(draw) -> Prefix:
    length = draw(st.integers(min_value=16, max_value=64))
    key = draw(st.integers(min_value=0, max_value=(1 << length) - 1))
    return Prefix(key << (128 - length), length, 6)


PREFIXES = st.one_of(v4_prefixes(), v6_prefixes())


@st.composite
def vrps(draw) -> VRP:
    prefix = draw(PREFIXES)
    # AS0 entries exercise the "covers but never origin-matches" rule.
    asn = draw(st.one_of(st.just(0), ASNS))
    max_length = draw(st.integers(min_value=prefix.length, max_value=prefix.bits))
    return VRP(
        prefix=prefix, asn=asn, max_length=max_length, trust_anchor=RIR.RIPE
    )


ROUTES = st.lists(st.tuples(PREFIXES, ASNS), max_size=40)


# -- route classification ---------------------------------------------------


class TestClassificationEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(vrp_list=st.lists(vrps(), max_size=30), routes=ROUTES)
    def test_rov_interval_classify_matches_trie(self, vrp_list, routes):
        results = {}
        for mode in ("python", "numpy"):
            with kernel_env(mode):
                results[mode] = ROVValidator(vrp_list).validate_many(routes)
        assert results["python"] == results["numpy"]

    @settings(max_examples=60, deadline=None)
    @given(
        objects=st.lists(st.tuples(PREFIXES, ASNS), max_size=30),
        routes=ROUTES,
    )
    def test_irr_interval_classify_matches_trie(self, objects, routes):
        results = {}
        for mode in ("python", "numpy"):
            database = IRRDatabase("TEST")
            for prefix, origin in objects:
                database.add_route(
                    RouteObject(prefix=prefix, origin=origin, source="TEST")
                )
            with kernel_env(mode):
                results[mode] = validate_irr_many(database, routes)
        assert results["python"] == results["numpy"]


# -- address-space accounting ----------------------------------------------


class TestUnionAddressCount:
    @settings(max_examples=80, deadline=None)
    @given(prefixes=st.lists(v4_prefixes(), max_size=40))
    def test_matches_aggregate_address_count(self, prefixes):
        ordered = sorted(prefixes, key=lambda p: (p.first, p.length))
        firsts = np.array([p.first for p in ordered], dtype=np.int64)
        lasts = np.array([p.last for p in ordered], dtype=np.int64)
        assert union_address_count(firsts, lasts) == aggregate_address_count(
            prefixes
        )


# -- hegemony transit groups ------------------------------------------------


@st.composite
def transit_scenarios(draw):
    """A tiny topology plus route groups whose paths stay inside it."""
    asns = draw(
        st.lists(
            st.integers(min_value=10, max_value=40),
            min_size=2,
            max_size=10,
            unique=True,
        )
    )
    topology = ASTopology()
    topology.add_org(Organization("ORG-T", "Test Org", "ZZ"))
    for asn in asns:
        topology.add_as(
            AutonomousSystem(
                asn=asn,
                org_id="ORG-T",
                country="ZZ",
                rir=RIR.RIPE,
                category=ASCategory.STUB,
            )
        )
    # Random provider→customer edges (drives the from-customer flags).
    pairs = [(a, b) for a in asns for b in asns if a != b]
    for a, b in draw(
        st.lists(st.sampled_from(pairs), max_size=6, unique=True)
    ):
        if b not in topology.neighbors(a):
            topology.add_link(a, b, Relationship.PROVIDER_CUSTOMER)
    member = st.sampled_from(asns)
    paths = st.lists(
        st.lists(member, min_size=2, max_size=6).map(tuple),
        min_size=1,
        max_size=8,
    )
    groups = []
    statuses = []
    for gi in range(draw(st.integers(min_value=1, max_value=4))):
        group_paths = {path[0]: path for path in draw(paths)}
        prefix = Prefix((10 << 24) + (gi << 8), 24, 4)
        groups.append(
            RouteGroup(
                origin=draw(member),
                route_class=RouteClass(),
                prefixes=(prefix,),
                paths=group_paths,
            )
        )
        statuses.append((("valid", "valid"),))
    return topology, groups, statuses


class TestTransitGroups:
    @settings(max_examples=50, deadline=None)
    @given(scenario=transit_scenarios())
    def test_numpy_matches_python(self, scenario):
        topology, groups, statuses = scenario
        reference = _transit_groups_python(groups, statuses, topology, 0.1)
        columnar = _transit_groups_numpy(groups, statuses, topology, 0.1)
        assert columnar == reference
        # Insertion order of each transits dict is part of the contract
        # (it feeds serialisation, hence the golden digests).
        for left, right in zip(columnar, reference):
            assert list(left.transits) == list(right.transits)


# -- batched propagation ----------------------------------------------------


class TestBatchPaths:
    def test_paths_to_many_matches_scalar(self, small_world):
        engine = PropagationEngine(
            small_world.topology, small_world.policies, paths_cache_size=0
        )
        keys = [
            (group.origin, group.route_class)
            for group in small_world.rib.groups
        ]
        batched = engine.paths_to_many(keys, small_world.vantage_points)
        for (origin, route_class), paths in zip(keys, batched):
            reference = engine.paths_to(
                origin, small_world.vantage_points, route_class
            )
            assert paths == reference
            assert list(paths) == list(reference)

    def test_cached_replay_matches_scalar(self, small_world):
        cached = PropagationEngine(small_world.topology, small_world.policies)
        scalar = PropagationEngine(small_world.topology, small_world.policies)
        keys = [
            (group.origin, group.route_class)
            for group in small_world.rib.groups[:64]
        ]
        keys = keys + keys  # replay: second half must come from the cache
        batched = cached.paths_to_many(keys, small_world.vantage_points)
        # At least the duplicated half hits (distinct RouteClass values
        # may share a filter signature, so there can be a few more).
        assert cached.cache_info()["hits"] >= len(keys) // 2
        for (origin, route_class), paths in zip(keys, batched):
            assert paths == scalar.paths_to(
                origin, small_world.vantage_points, route_class
            )


# -- timeline and goldens ---------------------------------------------------


class TestEndToEndEquivalence:
    def test_saturation_series_matches(self, small_world):
        results = {}
        for mode in ("python", "numpy"):
            with kernel_env(mode):
                results[mode] = Timeline(small_world).saturation_series()
        assert results["python"] == results["numpy"]

    @pytest.mark.parametrize("mode", ["python", "numpy"])
    def test_golden_digest_per_mode(self, mode):
        from repro.datasets.checkpoint import world_digest
        from repro.scenario.build import _build_world

        entry = next(
            e
            for e in json.loads(GOLDENS.read_text())["entries"]
            if e["scale"] == 0.05
        )
        with kernel_env(mode):
            assert kernel_mode() == mode
            world = _build_world(
                entry["scale"], entry["seed"], None, None, None, None
            )
        assert world_digest(world) == entry["world_digest"]
