"""Tests for the extension features: Action 3 contacts, Action 2 SAV,
and the ablation experiments."""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.errors import DatasetError
from repro.experiments import ablations, ext_other_actions
from repro.irr.database import IRRDatabase
from repro.irr.objects import AutNumObject
from repro.manrs.contacts import (
    ContactRecord,
    PeeringDBLike,
    is_action3_conformant,
    populate_contacts,
)
from repro.manrs.sav import (
    SpooferCampaign,
    SpooferResult,
    assign_sav_deployment,
    run_spoofer_campaign,
)

NOW = date(2022, 5, 1)


class TestPeeringDBLike:
    def test_upsert_and_get(self):
        registry = PeeringDBLike()
        record = ContactRecord(1, "noc@one.example", NOW)
        registry.upsert(record)
        assert registry.get(1) == record
        assert registry.get(2) is None
        assert len(registry) == 1

    def test_upsert_replaces(self):
        registry = PeeringDBLike()
        registry.upsert(ContactRecord(1, "old@x", NOW - timedelta(days=900)))
        registry.upsert(ContactRecord(1, "new@x", NOW))
        assert registry.get(1).noc_email == "new@x"
        assert len(registry) == 1

    def test_csv_roundtrip(self):
        registry = PeeringDBLike()
        registry.upsert(ContactRecord(1, "noc@one.example", NOW))
        registry.upsert(ContactRecord(2, "noc@two.example", NOW))
        recovered = PeeringDBLike.parse(registry.serialize())
        assert recovered.get(1) == registry.get(1)
        assert len(recovered) == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(DatasetError):
            PeeringDBLike.parse("nope\n")
        with pytest.raises(DatasetError):
            PeeringDBLike.parse("asn,noc_email,last_updated\nx,y\n")


class TestAction3:
    def _irr_with_autnum(self, last_modified: date | None) -> IRRDatabase:
        db = IRRDatabase("RADB")
        db.add_aut_num(
            AutNumObject(
                asn=1, as_name="X", source="RADB",
                admin_c="AC", last_modified=last_modified,
            )
        )
        return db

    def test_fresh_peeringdb_contact_conformant(self):
        registry = PeeringDBLike()
        registry.upsert(ContactRecord(1, "noc@x", NOW - timedelta(days=30)))
        assert is_action3_conformant(1, IRRDatabase("RADB"), registry, NOW)

    def test_stale_peeringdb_falls_back_to_irr(self):
        registry = PeeringDBLike()
        registry.upsert(ContactRecord(1, "noc@x", NOW - timedelta(days=900)))
        fresh_irr = self._irr_with_autnum(NOW - timedelta(days=10))
        assert is_action3_conformant(1, fresh_irr, registry, NOW)

    def test_stale_everywhere_unconformant(self):
        registry = PeeringDBLike()
        registry.upsert(ContactRecord(1, "noc@x", NOW - timedelta(days=900)))
        stale_irr = self._irr_with_autnum(NOW - timedelta(days=900))
        assert not is_action3_conformant(1, stale_irr, registry, NOW)

    def test_autnum_without_contact_unconformant(self):
        db = IRRDatabase("RADB")
        db.add_aut_num(AutNumObject(asn=1, as_name="X", source="RADB"))
        assert not is_action3_conformant(1, db, PeeringDBLike(), NOW)

    def test_unknown_as_unconformant(self):
        assert not is_action3_conformant(
            1, IRRDatabase("RADB"), PeeringDBLike(), NOW
        )

    def test_populated_contacts_favor_members(self, small_world):
        registry = populate_contacts(small_world, seed=2)
        members = small_world.members()
        member_fresh = [
            is_action3_conformant(a, small_world.irr, registry, NOW)
            for a in members
            if a in small_world.topology
        ]
        others = [a for a in small_world.topology.asns if a not in members]
        other_fresh = [
            is_action3_conformant(a, small_world.irr, registry, NOW)
            for a in others[:500]
        ]
        assert sum(member_fresh) / len(member_fresh) > sum(other_fresh) / len(
            other_fresh
        )


class TestSAV:
    def test_deployment_independent_of_membership(self, small_world):
        """Luckie et al.: members are not better at SAV."""
        truth = assign_sav_deployment(small_world, seed=1)
        members = small_world.members()
        member_rate = sum(
            truth[a] for a in members if a in truth
        ) / max(1, len(members))
        other_asns = [a for a in truth if a not in members]
        other_rate = sum(truth[a] for a in other_asns) / len(other_asns)
        assert abs(member_rate - other_rate) < 0.2

    def test_campaign_reveals_truth(self, small_world):
        truth = assign_sav_deployment(small_world, seed=1)
        campaign = run_spoofer_campaign(small_world, truth, seed=2)
        for result in campaign.results:
            assert result.blocks_spoofing == truth[result.asn]

    def test_campaign_coverage_partial(self, small_world):
        truth = assign_sav_deployment(small_world, seed=1)
        campaign = run_spoofer_campaign(
            small_world, truth, test_probability=0.25, seed=2
        )
        assert 0 < len(campaign.results) < len(small_world.topology)

    def test_rate_helpers(self):
        campaign = SpooferCampaign(
            results=[
                SpooferResult(1, True, NOW),
                SpooferResult(2, False, NOW),
            ]
        )
        assert campaign.deployment_rate() == 0.5
        assert campaign.deployment_rate(frozenset({1})) == 1.0
        assert campaign.deployment_rate(frozenset({99})) == 0.0
        assert campaign.tested_count() == 2


class TestExtExperiment:
    def test_run_and_render(self, small_world):
        result = ext_other_actions.run(small_world, seed=5)
        assert result.action3_member_rate > result.action3_other_rate
        assert abs(result.sav_member_rate - result.sav_other_rate) < 0.25
        text = ext_other_actions.render(result)
        assert "Action 3" in text and "Action 2" in text


class TestAblations:
    def test_rov_sweep_shapes(self, small_world):
        points = ablations.rov_deployment_ablation(
            small_world, levels=(0.0, 1.0)
        )
        none, full = points
        assert none.deployed_large_members == 0
        assert full.deployed_large_members >= none.deployed_large_members
        assert full.separation >= none.separation - 0.05
        text = ablations.render_rov_ablation(points)
        assert "separation" in text

    def test_visibility_sweep_shapes(self, small_world):
        points = ablations.visibility_ablation(
            small_world, fractions=(0.2, 1.0)
        )
        assert points[0].n_vantage_points < points[-1].n_vantage_points
        assert (
            points[0].visible_prefix_origins
            <= points[-1].visible_prefix_origins
        )
        text = ablations.render_visibility_ablation(points)
        assert "visibility" in text


class TestCounterfactual:
    def test_full_compliance_improves_metrics(self, small_world):
        from repro.experiments import counterfactual

        result = counterfactual.run(small_world)
        assert result.full_compliance.invalid_member_transit_pairs == 0
        assert (
            result.full_compliance.invalid_prefer_manrs
            <= result.measured.invalid_prefer_manrs
        )
        assert 0.0 <= result.invalid_visibility_reduction <= 1.0
        text = counterfactual.render(result)
        assert "full compliance" in text
