"""Shard helpers and shard-identity: 1 shard vs N shards is identical.

``split_evenly`` carries the whole determinism argument (DESIGN §13):
shards are contiguous slices of an already-ordered sequence, so
concatenating worker outputs in shard order reproduces the serial
iteration exactly.  The Hypothesis block pins that property; the
integration tests pin it end-to-end on the real build stages; the
manifest tests pin the discard-don't-stitch safety contract.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bgp.announcement import Announcement
from repro.bgp.collector import collect_rib
from repro.irr import validation as irr_validation
from repro.rpki import rov as rov_module
from repro.rpki.rov import ROVValidator
from repro.shard import (
    SHARD_SCHEMA_VERSION,
    ColumnAccumulator,
    SpillError,
    check_shard_manifests,
    resolve_shards,
    shard_manifest,
    split_evenly,
)


class TestSplitEvenly:
    @given(
        items=st.lists(st.integers(), max_size=200),
        shards=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=120, deadline=None)
    def test_concatenation_is_order_identical(self, items, shards):
        chunks = split_evenly(items, shards)
        merged = [item for chunk in chunks for item in chunk]
        assert merged == items
        one = [item for chunk in split_evenly(items, 1) for item in chunk]
        assert merged == one

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=200),
        shards=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=120, deadline=None)
    def test_chunk_sizes_balanced_and_nonempty(self, items, shards):
        chunks = split_evenly(items, shards)
        assert len(chunks) == min(shards, len(items))
        sizes = [len(c) for c in chunks]
        assert all(sizes)
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(items)

    def test_empty_input(self):
        assert split_evenly([], 4) == []

    def test_more_shards_than_items(self):
        assert split_evenly([1, 2], 8) == [[1], [2]]


class TestResolveShards:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert resolve_shards(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "5")
        assert resolve_shards() == 5

    def test_garbage_env_warns_to_one(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with caplog.at_level("WARNING"):
            assert resolve_shards() == 1
        assert any("non-integer" in r.message for r in caplog.records)

    def test_floor_is_one(self):
        assert resolve_shards(0) == 1
        assert resolve_shards(-3) == 1


class TestManifests:
    def _good(self, total=3, stage="rov.validate"):
        return [shard_manifest(stage, i, total, rows=10) for i in range(total)]

    def test_clean_set_passes(self):
        assert check_shard_manifests(self._good(), "rov.validate", 3) == []

    def test_schema_skew_rejected(self):
        manifests = self._good()
        manifests[1]["schema"] = SHARD_SCHEMA_VERSION + 1
        problems = check_shard_manifests(manifests, "rov.validate", 3)
        assert any("schema skew" in p for p in problems)

    def test_wrong_stage_rejected(self):
        problems = check_shard_manifests(self._good(), "irr.validate", 3)
        assert problems

    def test_wrong_arity_rejected(self):
        problems = check_shard_manifests(self._good(total=2), "rov.validate", 3)
        assert any("expected 3 shards" in p for p in problems)

    def test_out_of_order_rejected(self):
        manifests = self._good()
        manifests[0], manifests[2] = manifests[2], manifests[0]
        problems = check_shard_manifests(manifests, "rov.validate", 3)
        assert any("out of order" in p for p in problems)

    def test_non_mapping_rejected(self):
        manifests = self._good()
        manifests[1] = None
        problems = check_shard_manifests(manifests, "rov.validate", 3)
        assert any("not a mapping" in p for p in problems)


def _routes_of(world):
    return [
        (prefix, group.origin)
        for group in world.rib.groups
        for prefix in group.prefixes
    ]


class TestShardedStagesMatchSerial:
    """Each sharded stage, run for real on a process pool, must equal
    its serial twin exactly — values *and* iteration order."""

    def test_rov_sharded_equals_serial(self, small_world, monkeypatch):
        routes = _routes_of(world=small_world)
        monkeypatch.setattr(rov_module, "MIN_SHARD_ROUTES", 1)
        serial = ROVValidator(small_world.rov.all_vrps()).validate_many(routes)
        sharded = ROVValidator(small_world.rov.all_vrps()).validate_many(
            routes, shards=3, jobs=2
        )
        # Dict equality only: the sharded path sorts pending routes into
        # prefix ranges, so insertion order legitimately differs — every
        # consumer looks verdicts up by key.
        assert sharded == serial

    def test_irr_sharded_equals_serial(self, small_world, monkeypatch):
        routes = _routes_of(world=small_world)
        monkeypatch.setattr(irr_validation, "MIN_SHARD_ROUTES", 1)
        serial = irr_validation.validate_irr_many(small_world.irr, routes)
        sharded = irr_validation.validate_irr_many(
            small_world.irr, routes, shards=3, jobs=2
        )
        assert sharded == serial

    def test_collect_rib_sharded_equals_serial(self, small_world):
        announcements = [
            (Announcement(prefix=prefix, origin=group.origin), group.route_class)
            for group in small_world.rib.groups
            for prefix in group.prefixes
        ]
        vantage_points = small_world.rib.vantage_points
        serial = collect_rib(
            small_world.engine, announcements, vantage_points
        )
        sharded = collect_rib(
            small_world.engine, announcements, vantage_points, jobs=2, shards=3
        )
        assert len(sharded.groups) == len(serial.groups)
        for got, want in zip(sharded.groups, serial.groups):
            assert got == want
            # dict insertion order is part of the digest surface
            assert list(got.paths) == list(want.paths)

    def test_schema_skew_falls_back_serial(self, small_world, monkeypatch, caplog):
        # Simulate a worker/driver version skew: workers emit manifests
        # with a stale schema.  The driver must warn, discard the whole
        # sharded attempt and still return correct serial results.
        routes = _routes_of(world=small_world)
        monkeypatch.setattr(rov_module, "MIN_SHARD_ROUTES", 1)

        def skewed_pool_map_consume(
            fn, tasks, workers, consume, initializer=None, initargs=()
        ):
            if initializer is not None:
                initializer(*initargs)
            for task in tasks:
                manifest, payload = fn(task)
                manifest["schema"] = SHARD_SCHEMA_VERSION + 99
                consume((manifest, payload))
            return True

        monkeypatch.setattr(
            rov_module, "pool_map_consume", skewed_pool_map_consume
        )
        before = obs.counters().get("shard.discarded", 0)
        serial = ROVValidator(small_world.rov.all_vrps()).validate_many(routes)
        with caplog.at_level("WARNING"):
            sharded = ROVValidator(small_world.rov.all_vrps()).validate_many(
                routes, shards=3, jobs=2
            )
        assert sharded == serial
        assert obs.counters().get("shard.discarded", 0) == before + 1
        assert any("discarding" in r.message for r in caplog.records)


def _reference_concat(blocks):
    """The in-memory concatenation the accumulator must reproduce."""
    names: list[str] = []
    for block in blocks:
        for name in block:
            if name not in names:
                names.append(name)
    return {
        name: np.concatenate(
            [block[name] for block in blocks if name in block]
        )
        if any(name in block for block in blocks)
        else np.empty(0)
        for name in names
    }


@st.composite
def _column_blocks(draw):
    """1-5 blocks over a shared column schema (consistent dtype per
    column, independent lengths — mirroring real shard payloads where
    offset and value columns differ in length)."""
    dtypes = draw(
        st.lists(
            st.sampled_from(["int8", "uint32", "int64", "float64"]),
            min_size=1,
            max_size=3,
        )
    )
    names = [f"col{i}" for i in range(len(dtypes))]
    blocks = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        block = {}
        for name, dtype in zip(names, dtypes):
            length = draw(st.integers(min_value=0, max_value=24))
            values = draw(
                st.lists(
                    st.integers(min_value=0, max_value=120),
                    min_size=length,
                    max_size=length,
                )
            )
            block[name] = np.asarray(values, dtype=dtype)
        blocks.append(block)
    return blocks


class TestColumnAccumulator:
    """Spill-then-concat must equal in-memory concat, bit for bit, and a
    corrupted scratch file must be discarded — never stitched."""

    @given(blocks=_column_blocks(), budget=st.integers(0, 64))
    @settings(max_examples=80, deadline=None)
    def test_spill_concat_equals_memory_concat(self, blocks, budget):
        expected = _reference_concat(blocks)
        with ColumnAccumulator("test.stage", budget_bytes=budget) as acc:
            for block in blocks:
                acc.append(block)
            merged = acc.concat()
        assert set(merged) == set(expected)
        for name, array in expected.items():
            assert merged[name].dtype == array.dtype
            np.testing.assert_array_equal(merged[name], array)

    @given(blocks=_column_blocks())
    @settings(max_examples=40, deadline=None)
    def test_unbudgeted_never_spills(self, blocks):
        with ColumnAccumulator("test.stage") as acc:
            for block in blocks:
                acc.append(block)
            assert not acc.spilled
            merged = acc.concat()
        expected = _reference_concat(blocks)
        for name, array in expected.items():
            np.testing.assert_array_equal(merged[name], array)

    def test_blocks_read_back_one_at_a_time(self):
        payloads = [
            {"x": np.arange(start, start + 10, dtype=np.int64)}
            for start in (0, 10, 20)
        ]
        with ColumnAccumulator("test.stage", budget_bytes=0) as acc:
            for payload in payloads:
                acc.append(payload)
            assert acc.spilled
            assert acc.block_count == 3
            for index, payload in enumerate(payloads):
                np.testing.assert_array_equal(
                    acc.block(index)["x"], payload["x"]
                )

    def test_spill_counters_fire(self):
        before = obs.counters().get("build.spill.blocks", 0)
        files_before = obs.counters().get("build.spill.files", 0)
        with ColumnAccumulator("test.stage", budget_bytes=0) as acc:
            acc.append({"x": np.arange(64, dtype=np.int64)})
        assert obs.counters().get("build.spill.blocks", 0) == before + 1
        assert obs.counters().get("build.spill.files", 0) == files_before + 1

    def test_object_dtype_rejected(self):
        with ColumnAccumulator("test.stage") as acc:
            with pytest.raises(ValueError, match="object dtype"):
                acc.append({"x": np.asarray([object()])})

    def test_mixed_dtype_column_rejected(self):
        with ColumnAccumulator("test.stage") as acc:
            acc.append({"x": np.arange(4, dtype=np.int64)})
            acc.append({"x": np.arange(4, dtype=np.int32)})
            with pytest.raises(ValueError, match="mixes dtypes"):
                acc.concat()

    def test_truncated_scratch_discards_and_recovers(self, tmp_path):
        payloads = [
            {"x": np.arange(100, dtype=np.int64)},
            {"x": np.arange(100, 200, dtype=np.int64)},
        ]
        acc = ColumnAccumulator(
            "test.stage", budget_bytes=0, scratch_dir=str(tmp_path)
        )
        for payload in payloads:
            acc.append(payload)
        assert acc.spilled
        scratch = acc._path
        assert scratch is not None
        # Truncate the scratch file behind the accumulator's back (a
        # full /tmp, an eager cleaner): read-back must refuse to stitch.
        with open(scratch, "r+b") as handle:
            handle.truncate(8)
        before = obs.counters().get("build.spill.corrupt", 0)
        with pytest.raises(SpillError):
            acc.concat()
        assert obs.counters().get("build.spill.corrupt", 0) == before + 1
        # The scratch file is discarded, not patched...
        assert acc._path is None
        assert not Path(scratch).exists()
        # ...and the caller-level fallback — re-accumulating without a
        # budget — still produces the correct concatenation.
        with ColumnAccumulator("test.stage") as fallback:
            for payload in payloads:
                fallback.append(payload)
            merged = fallback.concat()
        np.testing.assert_array_equal(
            merged["x"], np.arange(200, dtype=np.int64)
        )

    def test_closed_accumulator_rejects_appends(self):
        acc = ColumnAccumulator("test.stage")
        acc.close()
        with pytest.raises(SpillError, match="closed"):
            acc.append({"x": np.arange(4)})

    def test_close_removes_scratch_file(self, tmp_path):
        acc = ColumnAccumulator(
            "test.stage", budget_bytes=0, scratch_dir=str(tmp_path)
        )
        acc.append({"x": np.arange(64, dtype=np.int64)})
        scratch = acc._path
        assert scratch is not None and Path(scratch).exists()
        acc.close()
        assert not Path(scratch).exists()
