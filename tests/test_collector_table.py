"""Unit tests for route collection and the prefix2as derivation."""

from __future__ import annotations

import pytest

from repro.bgp.announcement import Announcement, RibEntry
from repro.bgp.collector import collect_rib, select_vantage_points
from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS, parse_prefix2as, serialize_prefix2as
from repro.errors import DatasetError
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)


def simple_topology() -> ASTopology:
    """1 is provider of 2 and 3; 2 provider of 4."""
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    for asn in (1, 2, 3, 4):
        topo.add_as(AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB))
    topo.add_link(1, 2, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(1, 3, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 4, Relationship.PROVIDER_CUSTOMER)
    return topo


def _ann(text: str, origin: int) -> Announcement:
    return Announcement(Prefix.parse(text), origin)


class TestRibEntry:
    def test_validates_endpoints(self):
        entry = RibEntry(1, Prefix.parse("10.0.0.0/24"), 3, (1, 2, 3))
        assert entry.transit_ases == (2,)

    def test_rejects_wrong_start(self):
        with pytest.raises(ValueError):
            RibEntry(9, Prefix.parse("10.0.0.0/24"), 3, (1, 2, 3))

    def test_rejects_wrong_end(self):
        with pytest.raises(ValueError):
            RibEntry(1, Prefix.parse("10.0.0.0/24"), 9, (1, 2, 3))

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            RibEntry(1, Prefix.parse("10.0.0.0/24"), 1, ())


class TestCollectRib:
    def test_groups_share_paths(self):
        engine = PropagationEngine(simple_topology())
        announcements = [
            (_ann("12.0.0.0/16", 4), RouteClass()),
            (_ann("12.1.0.0/16", 4), RouteClass()),
        ]
        rib = collect_rib(engine, announcements, [1, 3])
        assert len(rib.groups) == 1
        assert len(rib.groups[0].prefixes) == 2

    def test_distinct_classes_distinct_groups(self):
        engine = PropagationEngine(simple_topology())
        announcements = [
            (_ann("12.0.0.0/16", 4), RouteClass()),
            (_ann("12.1.0.0/16", 4), RouteClass(rpki_invalid=True)),
        ]
        rib = collect_rib(engine, announcements, [1, 3])
        assert len(rib.groups) == 2

    def test_entries_expand(self):
        engine = PropagationEngine(simple_topology())
        rib = collect_rib(engine, [(_ann("12.0.0.0/16", 4), RouteClass())], [1, 3])
        entries = list(rib.iter_entries())
        assert {(e.vantage_point, e.prefix, e.origin) for e in entries} == {
            (1, Prefix.parse("12.0.0.0/16"), 4),
            (3, Prefix.parse("12.0.0.0/16"), 4),
        }

    def test_filtered_announcement_invisible(self):
        policies = {1: ASPolicy(rov=True)}
        engine = PropagationEngine(simple_topology(), policies)
        rib = collect_rib(
            engine,
            [(_ann("12.0.0.0/16", 4), RouteClass(rpki_invalid=True))],
            [1, 3],
        )
        assert rib.visible_announcements == set()

    def test_paths_for(self):
        engine = PropagationEngine(simple_topology())
        announcement = _ann("12.0.0.0/16", 4)
        rib = collect_rib(engine, [(announcement, RouteClass())], [1, 3])
        paths = rib.paths_for(announcement)
        assert sorted(paths) == [(1, 2, 4), (3, 1, 2, 4)]


class TestSelectVantagePoints:
    def test_includes_all_larges(self, small_world):
        from repro.topology.classify import SizeClass

        larges = {
            asn
            for asn, size in small_world.size_of.items()
            if size is SizeClass.LARGE
        }
        assert larges <= set(small_world.vantage_points)

    def test_deterministic(self, small_world):
        vps = select_vantage_points(small_world.topology, seed=5)
        assert vps == select_vantage_points(small_world.topology, seed=5)


class TestPrefix2AS:
    def _mapping(self) -> Prefix2AS:
        engine = PropagationEngine(simple_topology())
        announcements = [
            (_ann("12.0.0.0/16", 4), RouteClass()),
            (_ann("12.1.0.0/16", 2), RouteClass()),
            (_ann("2600::/32", 2), RouteClass()),
        ]
        rib = collect_rib(engine, announcements, [1, 3])
        return Prefix2AS.from_rib(rib)

    def test_origins_of(self):
        mapping = self._mapping()
        assert mapping.origins_of(Prefix.parse("12.0.0.0/16")) == {4}
        assert mapping.origins_of(Prefix.parse("99.0.0.0/8")) == frozenset()

    def test_prefixes_of(self):
        mapping = self._mapping()
        assert Prefix.parse("12.1.0.0/16") in mapping.prefixes_of(2)

    def test_address_space_is_v4_only(self):
        mapping = self._mapping()
        assert mapping.address_space_of({2}) == 2**16  # v6 excluded
        assert mapping.total_address_space == 2 * 2**16

    def test_roundtrip(self):
        mapping = self._mapping()
        recovered = parse_prefix2as(serialize_prefix2as(mapping))
        assert recovered.prefixes == mapping.prefixes
        for prefix in mapping.prefixes:
            assert recovered.origins_of(prefix) == mapping.origins_of(prefix)

    def test_parse_rejects_malformed(self):
        with pytest.raises(DatasetError):
            parse_prefix2as("10.0.0.0\t8\n")
        with pytest.raises(DatasetError):
            parse_prefix2as("10.0.0.0\tx\t1\n")

    def test_moas_prefix_lists_both_origins(self):
        engine = PropagationEngine(simple_topology())
        prefix = Prefix.parse("12.0.0.0/16")
        announcements = [
            (Announcement(prefix, 2), RouteClass()),
            (Announcement(prefix, 3), RouteClass()),
        ]
        rib = collect_rib(engine, announcements, [1])
        mapping = Prefix2AS.from_rib(rib)
        assert mapping.origins_of(prefix) == {2, 3}
