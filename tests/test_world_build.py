"""Integration tests: invariants of a fully built world."""

from __future__ import annotations

from repro.bgp.policy import RouteClass
from repro.core.classification import is_unconformant
from repro.irr.validation import IRRStatus, validate_irr
from repro.manrs.actions import Program
from repro.rpki.rov import RPKIStatus
from repro.scenario.build import build_world


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(scale=0.05, seed=9)
        b = build_world(scale=0.05, seed=9)
        assert a.topology.asns == b.topology.asns
        assert a.manrs.participants == b.manrs.participants
        assert {str(p) for p in a.prefix2as.prefixes} == {
            str(p) for p in b.prefix2as.prefixes
        }
        assert len(a.rov) == len(b.rov)
        assert a.irr.route_count == b.irr.route_count


class TestGroundTruthConsistency:
    def test_quiescent_ases_announce_nothing(self, small_world):
        for asn in small_world.quiescent:
            assert small_world.originations.get(asn, ()) == ()

    def test_announced_prefixes_within_delegated_blocks(self, small_world):
        for asn, originations in small_world.originations.items():
            for origination in originations:
                assert origination.block.contains(origination.prefix)
                holder = small_world.address_space.holder_of(origination.prefix)
                assert holder is not None
                org_id = small_world.topology.get_as(asn).org_id
                assert holder.org_id == org_id

    def test_deaggregated_flag_matches_lengths(self, small_world):
        for originations in small_world.originations.values():
            for origination in originations:
                if origination.deaggregated:
                    assert origination.prefix.length > origination.block.length
                else:
                    assert origination.prefix == origination.block

    def test_legacy_blocks_never_certified(self, small_world):
        for asn, originations in small_world.originations.items():
            for origination in originations:
                if not origination.legacy:
                    continue
                assert (
                    small_world.rov.validate(origination.prefix, asn)
                    is RPKIStatus.NOT_FOUND
                )

    def test_behavior_exists_for_every_as(self, small_world):
        assert set(small_world.behaviors) == set(small_world.topology.asns)

    def test_policies_match_behaviors(self, small_world):
        for asn, policy in small_world.policies.items():
            behavior = small_world.behaviors[asn]
            assert policy.rov == behavior.rov
            assert policy.filter_customers_irr == behavior.filter_customers


class TestMeasurementPipeline:
    def test_visible_announcements_have_paths(self, small_world):
        for group in small_world.rib.groups:
            for vantage_point, path in group.paths.items():
                assert path[0] == vantage_point
                assert path[-1] == group.origin

    def test_route_class_matches_statuses(self, small_world):
        """The filter class the builder derived must agree with what the
        measurement side (ROV + IRR validation) computes."""
        for group in small_world.rib.groups:
            for prefix in group.prefixes:
                rpki = small_world.rov.validate(prefix, group.origin)
                irr = validate_irr(small_world.irr, prefix, group.origin)
                expected = RouteClass(
                    rpki_invalid=rpki.is_invalid,
                    irr_invalid=irr is IRRStatus.INVALID_ORIGIN,
                )
                assert group.route_class == expected

    def test_ihr_statuses_match_direct_validation(self, small_world):
        for record in small_world.ihr.prefix_origins[:200]:
            assert (
                small_world.rov.validate(record.prefix, record.origin)
                is record.rpki
            )
            assert (
                validate_irr(small_world.irr, record.prefix, record.origin)
                is record.irr
            )

    def test_prefix2as_consistent_with_originations(self, small_world):
        for prefix in small_world.prefix2as.prefixes[:200]:
            for origin in small_world.prefix2as.origins_of(prefix):
                announced = {
                    o.prefix for o in small_world.originations.get(origin, ())
                }
                assert prefix in announced

    def test_rov_deployers_transit_no_invalids(self, small_world):
        """An AS with full ROV must never appear as transit for an
        RPKI-Invalid prefix (paths are recomputed per class)."""
        rov_deployers = {
            asn
            for asn, policy in small_world.policies.items()
            if policy.rov
        }
        for group in small_world.ihr.transit_groups:
            for _, (rpki, _irr) in zip(group.prefixes, group.statuses):
                if rpki.is_invalid:
                    assert not (set(group.transits) & rov_deployers)

    def test_flagship_cdns_are_barely_unconformant(self, small_world):
        from repro.core.conformance import origination_stats

        stats = origination_stats(small_world.ihr)
        cdn_members = small_world.manrs.member_asns(
            as_of=small_world.snapshot_date, program=Program.CDN
        )
        unconformant = [
            asn
            for asn in cdn_members
            if asn in stats and 0 < stats[asn].unconformant
        ]
        assert unconformant, "some CDN should leak a few prefixes"
        for asn in unconformant:
            # "more than 98% of their prefixes" conformant (Finding 8.3)
            assert stats[asn].og_conformant > 95.0

    def test_member_unconformant_prefixes_exist(self, small_world):
        """ISP1-analogue siblings give affirmatively unconformant
        member prefix-origins (the Table 1 input)."""
        members = small_world.members()
        affirmative = [
            r
            for r in small_world.ihr.prefix_origins
            if r.origin in members and is_unconformant(r.rpki, r.irr)
        ]
        assert affirmative


class TestIPv6Originations:
    def test_v6_prefixes_exist_and_validate(self, small_world):
        """IPv6 announcements flow through RPKI/IRR validation like v4."""
        v6_records = [
            r for r in small_world.ihr.prefix_origins if r.prefix.version == 6
        ]
        assert v6_records, "scenario should announce some IPv6"
        from repro.rpki.rov import RPKIStatus

        assert any(r.rpki is RPKIStatus.VALID for r in v6_records)

    def test_v6_space_excluded_from_v4_accounting(self, small_world):
        """Figure 4b / 6 accounting is IPv4-only, as in the paper."""
        total = small_world.prefix2as.total_address_space
        assert total < 2**32  # v6 would dwarf this instantly
