"""Fuzz tests: every parser either parses or raises its typed error.

The dataset codecs consume text that, in a real deployment, comes from
external sources.  Whatever bytes arrive, they must fail *predictably* —
with the module's own exception type — never with a stray ``KeyError`` or
``IndexError`` from deep inside.
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, strategies as st

from repro.bgp.mrt import parse_rib
from repro.bgp.table import parse_prefix2as
from repro.errors import (
    AllocationError,
    DatasetError,
    PrefixError,
    RPSLError,
)
from repro.irr.rpsl import parse_database
from repro.manrs.contacts import PeeringDBLike
from repro.manrs.registry import parse_participants
from repro.net.prefix import Prefix
from repro.registry.allocation import parse_delegations
from repro.rpki.archive import parse_vrps
from repro.topology.as2org import parse_as2org
from repro.topology.relationships import parse_relationships

# Arbitrary unicode garbage; the formats' own separators show up often
# enough through the explicit @example seeds below.
fuzz_text = st.text(max_size=300)


class TestParsersNeverCrash:
    @given(fuzz_text)
    @example("route: x\n")
    @example("10.0.0.0\t8\t1\n")
    def test_rpsl(self, text):
        try:
            parse_database(text)
        except RPSLError:
            pass
        except PrefixError:
            pytest.fail("PrefixError escaped the RPSL parser")

    @given(fuzz_text)
    def test_prefix2as(self, text):
        try:
            parse_prefix2as(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_vrps(self, text):
        try:
            parse_vrps(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_as2org(self, text):
        try:
            parse_as2org(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_relationships(self, text):
        try:
            parse_relationships(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_participants(self, text):
        try:
            parse_participants(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_mrt(self, text):
        try:
            parse_rib(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_delegations(self, text):
        try:
            parse_delegations(text)
        except AllocationError:
            pass

    @given(fuzz_text)
    def test_contacts(self, text):
        try:
            PeeringDBLike.parse(text)
        except DatasetError:
            pass

    @given(fuzz_text)
    def test_prefix_parse(self, text):
        try:
            Prefix.parse(text)
        except PrefixError:
            pass
