"""Unit and property tests for the RPKI substrate."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given, strategies as st

from repro.errors import DatasetError, RPKIError
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.rpki.archive import VRPArchive, parse_vrps, serialize_vrps
from repro.rpki.ca import RPKIRepository
from repro.rpki.roa import ROA, VRP
from repro.rpki.rov import ROVValidator, RPKIStatus
from repro.rpki.validator import RelyingParty

T0 = date(2020, 1, 1)
T1 = date(2030, 1, 1)
NOW = date(2022, 5, 1)


def _p(text: str) -> Prefix:
    return Prefix.parse(text)


def make_repo() -> tuple[RPKIRepository, str]:
    repo = RPKIRepository()
    anchor = repo.add_trust_anchor(RIR.ARIN, T0, T1)
    cert = repo.issue_certificate(
        anchor, "ORG-1", (_p("12.0.0.0/8"),), T0, T1
    )
    return repo, cert.certificate_id


class TestROA:
    def test_rejects_bad_maxlen(self):
        with pytest.raises(RPKIError):
            ROA(_p("12.0.0.0/16"), 65001, 8, "C", T0, T1)
        with pytest.raises(RPKIError):
            ROA(_p("12.0.0.0/16"), 65001, 33, "C", T0, T1)

    def test_rejects_inverted_window(self):
        with pytest.raises(RPKIError):
            ROA(_p("12.0.0.0/16"), 65001, 24, "C", T1, T0)

    def test_is_current(self):
        roa = ROA(_p("12.0.0.0/16"), 65001, 24, "C", T0, T1)
        assert roa.is_current(NOW)
        assert not roa.is_current(date(2019, 1, 1))


class TestVRP:
    def test_matches(self):
        vrp = VRP(_p("12.0.0.0/16"), 65001, 24, RIR.ARIN)
        assert vrp.matches(_p("12.0.1.0/24"), 65001)
        assert not vrp.matches(_p("12.0.1.0/24"), 65002)
        assert not vrp.matches(_p("12.0.0.0/25"), 65001)  # beyond maxlen
        assert not vrp.matches(_p("13.0.0.0/24"), 65001)  # not covered

    def test_as0_never_matches(self):
        vrp = VRP(_p("12.0.0.0/16"), 0, 24, RIR.ARIN)
        assert not vrp.matches(_p("12.0.0.0/16"), 0)


class TestRelyingParty:
    def test_valid_roa_becomes_vrp(self):
        repo, cert_id = make_repo()
        repo.add_roa(ROA(_p("12.1.0.0/16"), 65001, 24, cert_id, T0, T1))
        report = RelyingParty(repo).validate(NOW)
        assert len(report.vrps) == 1
        assert report.vrps[0].trust_anchor is RIR.ARIN
        assert report.rejected_total == 0

    def test_expired_roa_rejected(self):
        repo, cert_id = make_repo()
        repo.add_roa(
            ROA(_p("12.1.0.0/16"), 65001, 24, cert_id, T0, date(2021, 1, 1))
        )
        report = RelyingParty(repo).validate(NOW)
        assert not report.vrps
        assert report.rejected == {"roa_expired": 1}

    def test_orphan_roa_rejected(self):
        repo, _ = make_repo()
        repo.add_roa(ROA(_p("12.1.0.0/16"), 65001, 24, "NOPE", T0, T1))
        report = RelyingParty(repo).validate(NOW)
        assert report.rejected == {"orphan_roa": 1}

    def test_roa_outside_certificate_rejected(self):
        repo, cert_id = make_repo()
        repo.add_roa(ROA(_p("13.0.0.0/16"), 65001, 24, cert_id, T0, T1))
        report = RelyingParty(repo).validate(NOW)
        assert report.rejected == {"roa_outside_certificate": 1}

    def test_revoked_certificate_invalidates_roas(self):
        repo, cert_id = make_repo()
        repo.add_roa(ROA(_p("12.1.0.0/16"), 65001, 24, cert_id, T0, T1))
        repo.revoke(cert_id)
        report = RelyingParty(repo).validate(NOW)
        assert report.rejected == {"bad_certificate_chain": 1}

    def test_overclaiming_certificate_rejected(self):
        repo = RPKIRepository()
        anchor = repo.add_trust_anchor(RIR.ARIN, T0, T1)
        # claims RIPE space from the ARIN anchor
        cert = repo.issue_certificate(
            anchor, "EVIL", (_p("31.0.0.0/8"),), T0, T1
        )
        repo.add_roa(ROA(_p("31.1.0.0/16"), 65001, 24, cert.certificate_id, T0, T1))
        report = RelyingParty(repo).validate(NOW)
        assert report.rejected == {"bad_certificate_chain": 1}

    def test_expired_parent_breaks_chain(self):
        repo = RPKIRepository()
        anchor = repo.add_trust_anchor(RIR.ARIN, T0, date(2021, 6, 1))
        cert = repo.issue_certificate(anchor, "ORG", (_p("12.0.0.0/8"),), T0, T1)
        repo.add_roa(ROA(_p("12.1.0.0/16"), 65001, 24, cert.certificate_id, T0, T1))
        report = RelyingParty(repo).validate(NOW)
        assert report.rejected == {"bad_certificate_chain": 1}

    def test_revoke_unknown_certificate_raises(self):
        repo, _ = make_repo()
        with pytest.raises(RPKIError):
            repo.revoke("missing")


class TestROV:
    def _validator(self) -> ROVValidator:
        return ROVValidator(
            [
                VRP(_p("12.0.0.0/16"), 65001, 20, RIR.ARIN),
                VRP(_p("20.0.0.0/8"), 0, 8, RIR.ARIN),  # AS0
            ]
        )

    def test_valid(self):
        assert self._validator().validate(_p("12.0.0.0/18"), 65001) is RPKIStatus.VALID

    def test_invalid_asn(self):
        assert (
            self._validator().validate(_p("12.0.0.0/18"), 65002)
            is RPKIStatus.INVALID_ASN
        )

    def test_invalid_length(self):
        assert (
            self._validator().validate(_p("12.0.0.0/24"), 65001)
            is RPKIStatus.INVALID_LENGTH
        )

    def test_not_found(self):
        assert (
            self._validator().validate(_p("99.0.0.0/8"), 65001)
            is RPKIStatus.NOT_FOUND
        )

    def test_as0_makes_invalid(self):
        assert (
            self._validator().validate(_p("20.1.0.0/16"), 20)
            is RPKIStatus.INVALID_ASN
        )

    def test_second_vrp_can_rescue(self):
        validator = ROVValidator(
            [
                VRP(_p("12.0.0.0/16"), 65001, 16, RIR.ARIN),
                VRP(_p("12.0.0.0/16"), 65002, 24, RIR.ARIN),
            ]
        )
        assert validator.validate(_p("12.0.0.0/20"), 65002) is RPKIStatus.VALID
        # 65001 matches ASN but not length -> invalid length, not ASN
        assert (
            validator.validate(_p("12.0.0.0/20"), 65001)
            is RPKIStatus.INVALID_LENGTH
        )

    def test_is_invalid_property(self):
        assert RPKIStatus.INVALID_ASN.is_invalid
        assert RPKIStatus.INVALID_LENGTH.is_invalid
        assert not RPKIStatus.VALID.is_invalid
        assert not RPKIStatus.NOT_FOUND.is_invalid

    def test_covered_space(self):
        validator = self._validator()
        prefixes = [_p("12.0.5.0/24"), _p("99.0.0.0/24")]
        assert validator.covered_space(prefixes) == [_p("12.0.5.0/24")]

    def test_all_vrps_roundtrip(self):
        validator = self._validator()
        assert len(validator.all_vrps()) == len(validator) == 2


class TestArchive:
    def test_snapshot_lookup(self):
        archive = VRPArchive()
        vrps = [VRP(_p("12.0.0.0/16"), 65001, 16, RIR.ARIN)]
        archive.add_snapshot(date(2022, 1, 1), vrps)
        archive.add_snapshot(date(2022, 2, 1), [])
        assert archive.snapshot(date(2022, 1, 1)) == tuple(vrps)
        assert archive.latest_at(date(2022, 1, 15)) == tuple(vrps)
        assert archive.latest_at(date(2022, 3, 1)) == ()

    def test_duplicate_snapshot_rejected(self):
        archive = VRPArchive()
        archive.add_snapshot(date(2022, 1, 1), [])
        with pytest.raises(DatasetError):
            archive.add_snapshot(date(2022, 1, 1), [])

    def test_lookup_before_first_raises(self):
        archive = VRPArchive()
        archive.add_snapshot(date(2022, 1, 1), [])
        with pytest.raises(DatasetError):
            archive.latest_at(date(2021, 1, 1))
        with pytest.raises(DatasetError):
            archive.snapshot(date(2021, 1, 1))

    def test_csv_roundtrip(self):
        vrps = [
            VRP(_p("12.0.0.0/16"), 65001, 20, RIR.ARIN),
            VRP(_p("31.0.0.0/12"), 65002, 12, RIR.RIPE),
        ]
        recovered = parse_vrps(serialize_vrps(vrps, NOW))
        assert sorted(recovered, key=str) == sorted(vrps, key=str)

    def test_parse_requires_header(self):
        with pytest.raises(DatasetError):
            parse_vrps("no header\n")


# -- RFC 6811 invariants (property-based) -----------------------------------

vrp_strategy = st.builds(
    lambda value, length, asn, extra: VRP(
        Prefix.from_host(value, length, 4),
        asn,
        min(32, length + extra),
        RIR.ARIN,
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=8, max_value=24),
    st.integers(min_value=0, max_value=70000),
    st.integers(min_value=0, max_value=8),
)

route_strategy = st.tuples(
    st.builds(
        lambda value, length: Prefix.from_host(value, length, 4),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=8, max_value=32),
    ),
    st.integers(min_value=1, max_value=70000),
)


@given(st.lists(vrp_strategy, max_size=20), route_strategy)
def test_rov_status_matches_rfc6811_oracle(vrps, route):
    prefix, origin = route
    validator = ROVValidator(vrps)
    covering = [v for v in vrps if v.prefix.contains(prefix)]
    if not covering:
        expected = RPKIStatus.NOT_FOUND
    elif any(v.matches(prefix, origin) for v in covering):
        expected = RPKIStatus.VALID
    elif any(v.asn == origin and v.asn != 0 for v in covering):
        expected = RPKIStatus.INVALID_LENGTH
    else:
        expected = RPKIStatus.INVALID_ASN
    assert validator.validate(prefix, origin) is expected


@given(st.lists(vrp_strategy, max_size=20), route_strategy)
def test_adding_vrps_never_unvalidates(vrps, route):
    """Monotonicity: a VALID route stays VALID when more VRPs appear."""
    prefix, origin = route
    if ROVValidator(vrps).validate(prefix, origin) is RPKIStatus.VALID:
        more = vrps + [VRP(_p("0.0.0.0/0"), 64512, 32, RIR.ARIN)]
        assert ROVValidator(more).validate(prefix, origin) is RPKIStatus.VALID
