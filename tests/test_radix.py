"""Unit and property tests for the radix trie."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.net.prefix import Prefix
from repro.net.radix import RadixTree


def _p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestBasics:
    def test_empty(self):
        tree: RadixTree[str] = RadixTree()
        assert len(tree) == 0
        assert tree.covering(_p("10.0.0.0/8")) == []
        assert not tree.has_covering(_p("10.0.0.0/8"))

    def test_insert_and_exact(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/8"), "a")
        assert tree.search_exact(_p("10.0.0.0/8")) == ["a"]
        assert tree.search_exact(_p("10.0.0.0/9")) == []
        assert len(tree) == 1

    def test_duplicate_values_allowed(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/8"), "a")
        tree.insert(_p("10.0.0.0/8"), "b")
        assert sorted(tree.search_exact(_p("10.0.0.0/8"))) == ["a", "b"]

    def test_covering_order_least_specific_first(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/8"), "eight")
        tree.insert(_p("10.0.0.0/16"), "sixteen")
        assert tree.covering(_p("10.0.0.0/24")) == ["eight", "sixteen"]

    def test_covering_includes_exact(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/24"), "x")
        assert tree.covering(_p("10.0.0.0/24")) == ["x"]

    def test_covering_excludes_more_specific(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/24"), "specific")
        assert tree.covering(_p("10.0.0.0/8")) == []

    def test_covering_excludes_siblings(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/9"), "low")
        assert tree.covering(_p("10.128.0.0/16")) == []

    def test_root_default_route_covers_everything(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("0.0.0.0/0"), "default")
        assert tree.covering(_p("203.0.113.0/24")) == ["default"]

    def test_covered_returns_subtree(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/16"), "a")
        tree.insert(_p("10.0.1.0/24"), "b")
        tree.insert(_p("11.0.0.0/8"), "c")
        assert sorted(tree.covered(_p("10.0.0.0/8"))) == ["a", "b"]

    def test_remove(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("10.0.0.0/8"), "a")
        assert tree.remove(_p("10.0.0.0/8"), "a")
        assert not tree.remove(_p("10.0.0.0/8"), "a")
        assert len(tree) == 0
        assert tree.covering(_p("10.0.0.0/24")) == []

    def test_remove_missing_prefix(self):
        tree: RadixTree[str] = RadixTree()
        assert not tree.remove(_p("10.0.0.0/8"), "a")

    def test_versions_do_not_collide(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("::/0"), "v6-default")
        assert tree.covering(_p("10.0.0.0/8")) == []
        assert tree.covering(_p("2001:db8::/32")) == ["v6-default"]

    def test_items_in_address_order(self):
        tree: RadixTree[str] = RadixTree()
        tree.insert(_p("11.0.0.0/8"), "b")
        tree.insert(_p("10.0.0.0/8"), "a")
        tree.insert(_p("2001:db8::/32"), "c")
        assert [str(p) for p, _ in tree.items()] == [
            "10.0.0.0/8",
            "11.0.0.0/8",
            "2001:db8::/32",
        ]


# -- property tests against a brute-force oracle -----------------------------

prefix_strategy = st.builds(
    lambda value, length: Prefix.from_host(value, length, 4),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=28),
)


@given(
    st.lists(prefix_strategy, min_size=0, max_size=40),
    prefix_strategy,
)
def test_covering_matches_bruteforce(stored, query):
    tree: RadixTree[int] = RadixTree()
    for index, prefix in enumerate(stored):
        tree.insert(prefix, index)
    expected = sorted(
        index for index, prefix in enumerate(stored) if prefix.contains(query)
    )
    assert sorted(tree.covering(query)) == expected
    assert tree.has_covering(query) == bool(expected)


@given(
    st.lists(prefix_strategy, min_size=0, max_size=40),
    prefix_strategy,
)
def test_covered_matches_bruteforce(stored, query):
    tree: RadixTree[int] = RadixTree()
    for index, prefix in enumerate(stored):
        tree.insert(prefix, index)
    expected = sorted(
        index for index, prefix in enumerate(stored) if query.contains(prefix)
    )
    assert sorted(tree.covered(query)) == expected


@given(st.lists(prefix_strategy, min_size=1, max_size=25))
def test_items_roundtrip(stored):
    tree: RadixTree[int] = RadixTree()
    for index, prefix in enumerate(stored):
        tree.insert(prefix, index)
    recovered = sorted((p, v) for p, v in tree.items())
    assert recovered == sorted(zip(stored, range(len(stored))))
