"""Columnar-first warm starts: mmap identity, laziness, safe fallbacks.

The contract under test (DESIGN §13): a memory-mapped, lazily
materialised world is digest-identical to both the eager load and the
cold build; anything wrong with the column archive — truncation,
corruption, unmappable layout — warns and falls back (eager load, or
discard-and-cold-build), never surfacing a broken world.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro import obs
from repro.datasets.arraystore import mmap_enabled, open_columns
from repro.datasets.checkpoint import (
    ARRAYS_FILE,
    CheckpointStore,
    checkpoint_key,
    world_digest,
    world_load_mode,
)
from repro.datasets.columnar import LazyWorld
from repro.scenario.world import World


@pytest.fixture(scope="module")
def saved(small_world, tmp_path_factory):
    """A store holding one pristine entry for ``small_world``."""
    store = CheckpointStore(tmp_path_factory.mktemp("columnar"))
    store.save(small_world)
    key = checkpoint_key(
        small_world.config, small_world.scale, small_world.seed
    )
    return store, key


def _copy_store(saved, tmp_path) -> tuple[CheckpointStore, str]:
    store, key = saved
    clone = CheckpointStore(tmp_path / "store")
    shutil.copytree(store.path_for(key), clone.path_for(key))
    return clone, key


class TestColumnSet:
    def test_mapped_views_equal_eager_arrays(self, saved):
        store, key = saved
        path = store.path_for(key) / ARRAYS_FILE
        mapped = open_columns(path, mmap=True)
        eager = open_columns(path, mmap=False)
        try:
            assert mapped.mapped and not eager.mapped
            assert sorted(mapped.keys()) == sorted(eager.keys())
            for name in mapped.keys():
                a, b = mapped[name], eager[name]
                assert a.dtype == b.dtype and a.shape == b.shape
                assert np.array_equal(a, b)
        finally:
            mapped.close()

    def test_mmap_env_kill_switch(self, saved, monkeypatch):
        store, key = saved
        path = store.path_for(key) / ARRAYS_FILE
        monkeypatch.setenv("REPRO_MMAP", "0")
        assert not mmap_enabled()
        columns = open_columns(path)
        assert not columns.mapped

    def test_compressed_archive_falls_back_to_eager(self, tmp_path, caplog):
        path = tmp_path / "compressed.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(handle, a=np.arange(5, dtype=np.int64))
        with caplog.at_level("WARNING"):
            columns = open_columns(path, mmap=True)
        assert not columns.mapped
        assert np.array_equal(columns["a"], np.arange(5))
        assert any("falling back" in r.message for r in caplog.records)

    def test_truncated_archive_raises_from_eager_path(self, saved, tmp_path):
        store, key = saved
        source = store.path_for(key) / ARRAYS_FILE
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(source.read_bytes()[: source.stat().st_size // 2])
        # The map attempt downgrades to eager; eager decode then raises
        # to the caller's corrupt-entry handling.
        with pytest.raises(Exception):
            open_columns(clipped, mmap=True)


class TestLazyWorld:
    def test_digest_identical_across_load_modes(self, saved, small_world):
        store, _ = saved
        config = small_world.config
        lazy = store.load(config, small_world.scale, small_world.seed)
        eager = store.load(
            config, small_world.scale, small_world.seed, mode="eager"
        )
        assert isinstance(lazy, LazyWorld)
        assert isinstance(eager, World)
        assert not isinstance(eager, LazyWorld)
        cold = world_digest(small_world)
        assert world_digest(lazy) == cold
        assert world_digest(eager) == cold

    def test_load_mode_env_switch(self, saved, small_world, monkeypatch):
        store, _ = saved
        monkeypatch.setenv("REPRO_WORLD_LOAD", "eager")
        assert world_load_mode() == "eager"
        world = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        assert not isinstance(world, LazyWorld)
        monkeypatch.setenv("REPRO_WORLD_LOAD", "columnar")
        assert world_load_mode() == "columnar"

    def test_fields_materialise_on_demand_only(self, saved, small_world):
        store, _ = saved
        lazy = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        assert lazy.materialized_fields() <= {"config", "scale"}
        assert lazy.scale == small_world.scale
        _ = lazy.rib
        fields = lazy.materialized_fields()
        assert "rib" in fields
        assert "rpki_repository" not in fields
        assert "engine" not in fields

    def test_lazy_world_survives_entry_pruning(
        self, saved, small_world, tmp_path
    ):
        clone, key = _copy_store(saved, tmp_path)
        lazy = clone.load(
            small_world.config, small_world.scale, small_world.seed
        )
        shutil.rmtree(clone.path_for(key))
        # Metas are parsed at open and the column map holds its file
        # descriptor, so materialisation still works after the unlink.
        assert world_digest(lazy) == world_digest(small_world)

    def test_pickle_materialises_and_round_trips(self, saved, small_world):
        import pickle

        store, _ = saved
        lazy = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        clone = pickle.loads(pickle.dumps(lazy))
        assert world_digest(clone) == world_digest(small_world)


class TestSafeFallbacks:
    def _corrupt_count(self):
        return obs.counters().get("checkpoint.corrupt", 0)

    def test_truncated_arrays_discard_entry(
        self, saved, small_world, tmp_path, caplog
    ):
        clone, key = _copy_store(saved, tmp_path)
        path = clone.path_for(key) / ARRAYS_FILE
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        before = self._corrupt_count()
        with caplog.at_level("WARNING"):
            world = clone.load(
                small_world.config, small_world.scale, small_world.seed
            )
        assert world is None
        assert self._corrupt_count() == before + 1
        assert not clone.path_for(key).exists()

    def test_garbage_arrays_discard_entry(
        self, saved, small_world, tmp_path, caplog
    ):
        clone, key = _copy_store(saved, tmp_path)
        (clone.path_for(key) / ARRAYS_FILE).write_bytes(b"not a zip at all")
        before = self._corrupt_count()
        with caplog.at_level("WARNING"):
            world = clone.load(
                small_world.config, small_world.scale, small_world.seed
            )
        assert world is None
        assert self._corrupt_count() == before + 1
        assert not clone.path_for(key).exists()

    def test_unmappable_but_valid_archive_still_loads(
        self, saved, small_world, tmp_path, monkeypatch, caplog
    ):
        # Re-pack the archive with deflate: digest-verification is
        # rewritten to match, so the entry is *valid* but cannot be
        # memory-mapped — the columnar load must degrade to the eager
        # column decode, not discard the entry.
        import json

        from repro.datasets.checkpoint import MANIFEST_FILE, _sha256_bytes

        clone, key = _copy_store(saved, tmp_path)
        entry = clone.path_for(key)
        path = entry / ARRAYS_FILE
        with np.load(path, allow_pickle=False) as arrays:
            contents = {name: arrays[name] for name in arrays.files}
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **contents)
        manifest = json.loads((entry / MANIFEST_FILE).read_text())
        manifest["files"][ARRAYS_FILE] = _sha256_bytes(path.read_bytes())
        (entry / MANIFEST_FILE).write_text(json.dumps(manifest))
        with caplog.at_level("WARNING"):
            world = clone.load(
                small_world.config, small_world.scale, small_world.seed
            )
        assert world is not None
        assert world_digest(world) == world_digest(small_world)
