"""Tests for MANRS Action 2 (SAV) modelling and the Spoofer campaign.

Pins the pre-existing ``assign_sav_deployment`` / ``run_spoofer_campaign``
semantics, the draw-stream decorrelation between the two, and the new
Action 2 verdict helpers plus their readiness wiring.
"""

from __future__ import annotations

from datetime import date

from repro.core.readiness import (
    check_readiness,
    readiness_as_dict,
    render_readiness,
)
from repro.manrs.actions import Program
from repro.manrs.sav import (
    SpooferCampaign,
    SpooferResult,
    assign_sav_deployment,
    is_action2_conformant,
    is_action2_mandatory,
    run_spoofer_campaign,
)


class TestAssignSavDeployment:
    def test_covers_every_asn(self, small_world):
        truth = assign_sav_deployment(small_world, seed=5)
        assert set(truth) == set(small_world.topology.asns)

    def test_rate_near_default(self, small_world):
        truth = assign_sav_deployment(small_world, seed=5)
        rate = sum(truth.values()) / len(truth)
        assert 0.2 < rate < 0.4

    def test_deterministic_per_seed(self, small_world):
        assert assign_sav_deployment(small_world, seed=5) == (
            assign_sav_deployment(small_world, seed=5)
        )
        assert assign_sav_deployment(small_world, seed=5) != (
            assign_sav_deployment(small_world, seed=6)
        )

    def test_rate_knob(self, small_world):
        truth = assign_sav_deployment(small_world, seed=5, rate=0.0)
        assert not any(truth.values())

    def test_independent_of_membership(self, small_world):
        """The Luckie et al. null result: members deploy SAV no more
        than non-members (rates within a loose band of each other)."""
        truth = assign_sav_deployment(small_world, seed=5)
        members = small_world.members()
        member_rate = sum(
            truth[a] for a in truth if a in members
        ) / max(1, sum(1 for a in truth if a in members))
        other_rate = sum(
            truth[a] for a in truth if a not in members
        ) / max(1, sum(1 for a in truth if a not in members))
        assert abs(member_rate - other_rate) < 0.25


class TestSpooferCampaign:
    def test_coverage_near_test_probability(self, small_world):
        truth = assign_sav_deployment(small_world, seed=5)
        campaign = run_spoofer_campaign(small_world, truth, seed=5)
        fraction = len(campaign.results) / len(small_world.topology.asns)
        assert 0.15 < fraction < 0.35

    def test_results_reflect_ground_truth(self, small_world):
        truth = assign_sav_deployment(small_world, seed=5)
        campaign = run_spoofer_campaign(small_world, truth, seed=5)
        assert campaign.results
        for result in campaign.results:
            assert result.blocks_spoofing == truth[result.asn]
            assert result.tested_on == small_world.snapshot_date

    def test_draw_streams_decorrelated_from_assignment(self, small_world):
        """Sharing a raw seed with ``assign_sav_deployment`` used to
        test exactly the networks whose deployment draw fell below the
        test probability — a campaign that only ever found deployers.
        The campaign must recover roughly the true rate instead."""
        truth = assign_sav_deployment(small_world, seed=0)
        campaign = run_spoofer_campaign(small_world, truth, seed=0)
        measured = campaign.deployment_rate()
        assert 0.15 < measured < 0.45

    def test_deployment_rate_restricted_population(self):
        today = date(2021, 5, 1)
        campaign = SpooferCampaign(
            results=[
                SpooferResult(1, True, today),
                SpooferResult(2, False, today),
                SpooferResult(3, True, today),
            ]
        )
        assert campaign.deployment_rate() == 2 / 3
        assert campaign.deployment_rate(frozenset({1, 2})) == 0.5
        assert campaign.deployment_rate(frozenset({99})) == 0.0
        assert campaign.tested_count() == 3
        assert campaign.tested_count(frozenset({1, 99})) == 1


class TestAction2Verdicts:
    today = date(2021, 5, 1)

    def test_untested_network_is_none(self):
        campaign = SpooferCampaign(
            results=[SpooferResult(1, True, self.today)]
        )
        assert is_action2_conformant(2, campaign) is None

    def test_all_runs_blocking_passes(self):
        campaign = SpooferCampaign(
            results=[
                SpooferResult(1, True, self.today),
                SpooferResult(1, True, self.today),
            ]
        )
        assert is_action2_conformant(1, campaign) is True

    def test_any_leaking_run_fails(self):
        # MANRS asks for SAV on all edges: one escaping run fails.
        campaign = SpooferCampaign(
            results=[
                SpooferResult(1, True, self.today),
                SpooferResult(1, False, self.today),
            ]
        )
        assert is_action2_conformant(1, campaign) is False

    def test_mandatory_per_program_catalogue(self):
        # The ISP program lists Action 2 but does not mandate it; the
        # CDN program does (per the ACTIONS catalogue).
        assert is_action2_mandatory(Program.ISP) is False
        assert is_action2_mandatory(Program.CDN) is True


class TestReadinessSpooferWiring:
    def _asn(self, world) -> int:
        return world.topology.asns[0]

    def test_default_output_unchanged_without_spoofer(self, small_world):
        report = check_readiness(small_world, self._asn(small_world))
        assert report.action2_ok is None
        assert "action2" not in readiness_as_dict(report)
        assert "Action 2" not in render_readiness(report)

    def test_failing_evidence_is_advisory_for_isp(self, small_world):
        asn = self._asn(small_world)
        campaign = SpooferCampaign(
            results=[SpooferResult(asn, False, small_world.snapshot_date)]
        )
        baseline = check_readiness(small_world, asn)
        report = check_readiness(small_world, asn, spoofer=campaign)
        assert report.action2_ok is False
        assert report.action2_required is False
        # Advisory: the verdict is reported but does not flip readiness.
        assert report.ready == baseline.ready
        assert any(
            "advisory for this program" in blocker
            for blocker in report.blockers
        )
        document = readiness_as_dict(report)
        assert document["action2"] == {"ok": False, "required": False}
        assert "Action 2 (SAV):         FAIL [advisory]" in (
            render_readiness(report)
        )

    def test_failing_evidence_blocks_when_mandatory(self, small_world):
        asn = self._asn(small_world)
        campaign = SpooferCampaign(
            results=[SpooferResult(asn, False, small_world.snapshot_date)]
        )
        report = check_readiness(
            small_world, asn, program=Program.CDN, spoofer=campaign
        )
        assert report.action2_required is True
        assert report.action2_ok is False
        assert report.ready is False

    def test_passing_evidence_reported(self, small_world):
        asn = self._asn(small_world)
        campaign = SpooferCampaign(
            results=[SpooferResult(asn, True, small_world.snapshot_date)]
        )
        report = check_readiness(small_world, asn, spoofer=campaign)
        assert report.action2_ok is True
        assert "Action 2 (SAV):         pass" in render_readiness(report)
