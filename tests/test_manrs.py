"""Unit tests for MANRS actions, registry, and recruitment."""

from __future__ import annotations

from datetime import date

import pytest

from repro.errors import DatasetError
from repro.manrs.actions import (
    ACTIONS,
    Action,
    Program,
    action4_threshold,
)
from repro.manrs.recruitment import RecruitmentConfig, recruit
from repro.manrs.registry import (
    MANRSRegistry,
    Participant,
    parse_participants,
    serialize_participants,
)
from repro.topology.generator import TopologyConfig, generate_topology


class TestActions:
    def test_catalogue_covers_both_programs(self):
        isp_actions = [a for a in ACTIONS if a.program is Program.ISP]
        cdn_actions = [a for a in ACTIONS if a.program is Program.CDN]
        assert len(isp_actions) == 4
        assert len(cdn_actions) == 6

    def test_isp_action2_optional_cdn_action2_mandatory(self):
        def get(program: Program, number: int) -> Action:
            return next(
                a for a in ACTIONS if a.program is program and a.number == number
            )

        assert not get(Program.ISP, 2).mandatory
        assert get(Program.CDN, 2).mandatory

    def test_thresholds(self):
        assert action4_threshold(Program.ISP) == 90.0
        assert action4_threshold(Program.CDN) == 100.0
        with pytest.raises(ValueError):
            action4_threshold(Program.IXP)


class TestRegistry:
    def _registry(self) -> MANRSRegistry:
        registry = MANRSRegistry()
        registry.add(
            Participant("O1", Program.ISP, (10, 11), date(2018, 3, 1))
        )
        registry.add(Participant("O2", Program.CDN, (20,), date(2021, 6, 1)))
        return registry

    def test_membership_by_date(self):
        registry = self._registry()
        assert registry.is_member(10, date(2019, 1, 1))
        assert not registry.is_member(20, date(2019, 1, 1))
        assert registry.is_member(20, date(2022, 1, 1))
        assert not registry.is_member(99)

    def test_member_asns_filters(self):
        registry = self._registry()
        assert registry.member_asns(as_of=date(2019, 1, 1)) == {10, 11}
        assert registry.member_asns(program=Program.CDN) == {20}

    def test_program_of(self):
        registry = self._registry()
        assert registry.program_of(10) is Program.ISP
        assert registry.program_of(20) is Program.CDN
        assert registry.program_of(20, date(2020, 1, 1)) is None
        assert registry.program_of(99) is None

    def test_duplicate_membership_rejected(self):
        registry = self._registry()
        with pytest.raises(DatasetError):
            registry.add(
                Participant("O1", Program.ISP, (12,), date(2020, 1, 1))
            )

    def test_org_may_join_both_programs(self):
        registry = self._registry()
        registry.add(Participant("O1", Program.CDN, (10,), date(2021, 1, 1)))
        assert registry.program_of(10) is Program.ISP  # ISP wins ties

    def test_empty_asn_list_rejected(self):
        with pytest.raises(DatasetError):
            Participant("O1", Program.ISP, (), date(2020, 1, 1))

    def test_member_orgs(self):
        registry = self._registry()
        assert registry.member_orgs(date(2019, 1, 1)) == {"O1"}

    def test_participant_for_org(self):
        registry = self._registry()
        assert registry.participant_for_org("O1") is not None
        assert registry.participant_for_org("O1", Program.CDN) is None

    def test_csv_roundtrip(self):
        registry = self._registry()
        recovered = parse_participants(serialize_participants(registry))
        assert recovered.participants == registry.participants

    def test_parse_requires_header(self):
        with pytest.raises(DatasetError):
            parse_participants("bogus\n")

    def test_parse_rejects_malformed_record(self):
        text = "org_id,program,joined,asns\nO1,isp,not-a-date,10\n"
        with pytest.raises(DatasetError):
            parse_participants(text)


class TestRecruitment:
    @pytest.fixture(scope="class")
    def topology(self):
        return generate_topology(TopologyConfig().scaled(0.3), seed=5).topology

    def test_deterministic(self, topology):
        a = recruit(topology, seed=1)
        b = recruit(topology, seed=1)
        assert a.participants == b.participants

    def test_growth_is_monotone(self, topology):
        registry = recruit(topology, seed=1)
        counts = [
            len(registry.member_orgs(as_of=date(year, 12, 31)))
            for year in range(2015, 2023)
        ]
        assert counts == sorted(counts)
        assert counts[-1] > 0

    def test_wave_year_jump(self, topology):
        """The 2020 wave (Brazil outreach + CDN program) is the largest
        single-year increment."""
        registry = recruit(topology, seed=1)
        counts = [
            len(registry.member_orgs(as_of=date(year, 12, 31)))
            for year in range(2015, 2023)
        ]
        increments = [b - a for a, b in zip(counts, counts[1:])]
        assert max(increments) == increments[2020 - 2016]

    def test_cdn_program_starts_2020(self, topology):
        registry = recruit(topology, seed=1)
        for participant in registry.participants_in(Program.CDN):
            assert participant.joined.year >= 2020

    def test_registered_asns_belong_to_org(self, topology):
        registry = recruit(topology, seed=1)
        for participant in registry.participants:
            org_asns = set(topology.get_org(participant.org_id).asns)
            assert set(participant.asns) <= org_asns

    def test_join_probability_zero_recruits_nobody(self, topology):
        config = RecruitmentConfig(
            join_probability={category: 0.0 for category in RecruitmentConfig().join_probability},
            brazil_wave_probability=0.0,
        )
        registry = recruit(topology, config, seed=1)
        # only the forced APNIC flagship can remain
        assert len(registry.participants) <= 1
