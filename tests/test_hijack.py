"""Unit tests for the origin-hijack simulator."""

from __future__ import annotations

import pytest

from repro.bgp.announcement import Announcement
from repro.bgp.hijack import HijackKind, simulate_hijack
from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.errors import ReproError
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)


def diamond() -> ASTopology:
    """Victim 10 under provider 1; attacker 20 under provider 2; the
    providers peer; observers 30 (customer of 1) and 40 (customer of 2)."""
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    for asn in (1, 2, 10, 20, 30, 40):
        topo.add_as(AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB))
    topo.add_link(1, 2, Relationship.PEER)
    topo.add_link(1, 10, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 20, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(1, 30, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 40, Relationship.PROVIDER_CUSTOMER)
    return topo


VICTIM = Announcement(Prefix.parse("12.0.0.0/16"), 10)
VPS = (30, 40)


class TestExactHijack:
    def test_proximity_splits_the_internet(self):
        engine = PropagationEngine(diamond())
        outcome = simulate_hijack(engine, VICTIM, 20, VPS)
        # 30 is closer to the victim, 40 closer to the attacker.
        assert outcome.captured == {30: False, 40: True}
        assert outcome.capture_fraction == 0.5

    def test_rov_everywhere_stops_hijack(self):
        policies = {asn: ASPolicy(rov=True) for asn in (1, 2, 30, 40)}
        engine = PropagationEngine(diamond(), policies)
        outcome = simulate_hijack(
            engine,
            VICTIM,
            20,
            VPS,
            hijack_route_class=RouteClass(rpki_invalid=True),
        )
        assert outcome.capture_fraction == 0.0

    def test_unprotected_hijack_unaffected_by_rov(self):
        # Victim without a ROA: the hijack is NotFound, ROV is powerless.
        policies = {asn: ASPolicy(rov=True) for asn in (1, 2)}
        engine = PropagationEngine(diamond(), policies)
        outcome = simulate_hijack(engine, VICTIM, 20, VPS)
        assert outcome.capture_fraction == 0.5


class TestSubPrefixHijack:
    def test_more_specific_always_wins_where_visible(self):
        engine = PropagationEngine(diamond())
        outcome = simulate_hijack(
            engine, VICTIM, 20, VPS, kind=HijackKind.SUB_PREFIX
        )
        assert outcome.capture_fraction == 1.0
        assert outcome.attacker_announcement.prefix.length == 17

    def test_rov_blocks_subprefix_hijack(self):
        policies = {asn: ASPolicy(rov=True) for asn in (1, 2)}
        engine = PropagationEngine(diamond(), policies)
        outcome = simulate_hijack(
            engine,
            VICTIM,
            20,
            VPS,
            kind=HijackKind.SUB_PREFIX,
            hijack_route_class=RouteClass(rpki_invalid=True),
        )
        assert outcome.capture_fraction == 0.0

    def test_host_prefix_cannot_deaggregate(self):
        engine = PropagationEngine(diamond())
        host = Announcement(Prefix.parse("12.0.0.1/32"), 10)
        with pytest.raises(ReproError):
            simulate_hijack(engine, host, 20, VPS, kind=HijackKind.SUB_PREFIX)


def test_attacker_must_differ_from_victim():
    engine = PropagationEngine(diamond())
    with pytest.raises(ReproError):
        simulate_hijack(engine, VICTIM, 10, VPS)
