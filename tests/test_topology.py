"""Unit tests for the topology model, classification, and generator."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.registry.rir import RIR
from repro.topology.classify import SizeClass, classify_all, classify_size
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)


def _as(asn: int, org_id: str = "O1") -> AutonomousSystem:
    return AutonomousSystem(
        asn=asn, org_id=org_id, country="US", rir=RIR.ARIN,
        category=ASCategory.STUB,
    )


def build_chain() -> ASTopology:
    """1 -> 2 -> 3 provider chains plus a 2--4 peering."""
    topo = ASTopology()
    topo.add_org(Organization("O1", "Org One", "US"))
    for asn in (1, 2, 3, 4):
        topo.add_as(_as(asn))
    topo.add_link(1, 2, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 3, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 4, Relationship.PEER)
    return topo


class TestModel:
    def test_relationship_accessors(self):
        topo = build_chain()
        assert topo.customers_of(1) == {2}
        assert topo.providers_of(2) == {1}
        assert topo.peers_of(2) == {4}
        assert topo.customer_degree(1) == 1

    def test_duplicate_as_rejected(self):
        topo = build_chain()
        with pytest.raises(TopologyError):
            topo.add_as(_as(1))

    def test_unknown_org_rejected(self):
        topo = ASTopology()
        with pytest.raises(TopologyError):
            topo.add_as(_as(1, org_id="missing"))

    def test_self_link_rejected(self):
        topo = build_chain()
        with pytest.raises(TopologyError):
            topo.add_link(1, 1, Relationship.PEER)

    def test_duplicate_link_rejected(self):
        topo = build_chain()
        with pytest.raises(TopologyError):
            topo.add_link(1, 2, Relationship.PEER)

    def test_link_to_unknown_as_rejected(self):
        topo = build_chain()
        with pytest.raises(TopologyError):
            topo.add_link(1, 99, Relationship.PEER)

    def test_customer_cone(self):
        topo = build_chain()
        assert topo.customer_cone(1) == {1, 2, 3}
        assert topo.customer_cone(3) == {3}
        assert topo.customer_cone(4) == {4}

    def test_as_rank_by_cone(self):
        topo = build_chain()
        assert topo.as_rank(1) == 1
        assert topo.as_rank(2) == 2

    def test_cone_cache_invalidated_on_mutation(self):
        topo = build_chain()
        assert topo.customer_cone(2) == {2, 3}
        topo.add_as(_as(5))
        topo.add_link(2, 5, Relationship.PROVIDER_CUSTOMER)
        assert topo.customer_cone(2) == {2, 3, 5}

    def test_siblings(self):
        topo = ASTopology()
        topo.add_org(Organization("O1", "Org", "US"))
        topo.add_as(_as(1))
        topo.add_as(_as(2))
        assert topo.siblings(1) == {2}

    def test_edges_enumeration(self):
        topo = build_chain()
        edges = list(topo.edges())
        assert (1, 2, Relationship.PROVIDER_CUSTOMER) in edges
        assert (2, 4, Relationship.PEER) in edges
        assert len(edges) == 3

    def test_validate_passes_on_consistent(self):
        build_chain().validate()


class TestClassify:
    @pytest.mark.parametrize(
        "degree,expected",
        [
            (0, SizeClass.SMALL),
            (2, SizeClass.SMALL),
            (3, SizeClass.MEDIUM),
            (180, SizeClass.MEDIUM),
            (181, SizeClass.LARGE),
        ],
    )
    def test_thresholds(self, degree, expected):
        assert classify_size(degree) is expected

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            classify_size(-1)

    def test_classify_all(self):
        topo = build_chain()
        sizes = classify_all(topo)
        assert all(size is SizeClass.SMALL for size in sizes.values())


class TestGenerator:
    def test_deterministic(self):
        a = generate_topology(TopologyConfig().scaled(0.05), seed=3)
        b = generate_topology(TopologyConfig().scaled(0.05), seed=3)
        assert a.topology.asns == b.topology.asns
        assert list(a.topology.edges()) == list(b.topology.edges())
        assert a.quiescent == b.quiescent

    def test_seed_changes_output(self):
        a = generate_topology(TopologyConfig().scaled(0.05), seed=3)
        b = generate_topology(TopologyConfig().scaled(0.05), seed=4)
        assert list(a.topology.edges()) != list(b.topology.edges())

    def test_structure_is_valid(self):
        generated = generate_topology(TopologyConfig().scaled(0.1), seed=1)
        generated.topology.validate()

    def test_every_non_tier1_has_provider(self):
        generated = generate_topology(TopologyConfig().scaled(0.1), seed=1)
        topo = generated.topology
        for asn in topo.asns:
            record = topo.get_as(asn)
            if record.category is ASCategory.LARGE_TRANSIT:
                continue
            assert topo.providers_of(asn), f"AS{asn} has no provider"

    def test_tier1_clique_peers(self):
        generated = generate_topology(TopologyConfig().scaled(0.2), seed=1)
        topo = generated.topology
        tier1 = [
            asn
            for asn in topo.asns
            if topo.get_as(asn).category is ASCategory.LARGE_TRANSIT
        ]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert b in topo.peers_of(a)

    def test_quiescent_are_real_ases(self):
        generated = generate_topology(TopologyConfig().scaled(0.1), seed=1)
        for asn in generated.quiescent:
            assert asn in generated.topology

    def test_full_scale_has_all_size_classes(self):
        generated = generate_topology(seed=1)
        sizes = set(classify_all(generated.topology).values())
        assert sizes == {SizeClass.SMALL, SizeClass.MEDIUM, SizeClass.LARGE}

    def test_scaled_counts(self):
        config = TopologyConfig().scaled(0.5)
        assert config.n_stub == round(TopologyConfig().n_stub * 0.5)
        assert config.n_large_transit >= 3
