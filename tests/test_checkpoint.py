"""Checkpoint store: warm-equals-cold identity, safety, maintenance.

The contract under test (DESIGN §10): a world loaded from a checkpoint
is *digest-identical* to the cold build that produced it, and any
corrupt, tampered or schema-skewed entry is discarded with a warning —
never surfaced to a caller.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro import obs
from repro.datasets.checkpoint import (
    ARRAYS_FILE,
    MANIFEST_FILE,
    SCHEMA_VERSION,
    CheckpointStore,
    checkpoint_key,
    dataset_digests,
    default_store,
    world_digest,
)
from repro.experiments import common
from repro.scenario.config import ScenarioConfig
from repro.scenario.timeline import Timeline


@pytest.fixture(scope="module")
def saved(small_world, tmp_path_factory):
    """A store holding one pristine entry for ``small_world``."""
    store = CheckpointStore(tmp_path_factory.mktemp("ckpt"))
    store.save(small_world)
    key = checkpoint_key(
        small_world.config, small_world.scale, small_world.seed
    )
    return store, key


def _copy_store(saved, tmp_path) -> tuple[CheckpointStore, str]:
    """A private, tamperable copy of the pristine entry."""
    store, key = saved
    clone = CheckpointStore(tmp_path / "store")
    shutil.copytree(store.path_for(key), clone.path_for(key))
    return clone, key


class TestCheckpointKey:
    def test_deterministic(self):
        config = ScenarioConfig()
        assert checkpoint_key(config, 0.5, 7) == checkpoint_key(
            ScenarioConfig(), 0.5, 7
        )

    def test_scale_seed_and_config_feed_the_key(self):
        base = checkpoint_key(ScenarioConfig(), 0.5, 7)
        assert checkpoint_key(ScenarioConfig(), 0.6, 7) != base
        assert checkpoint_key(ScenarioConfig(), 0.5, 8) != base
        tweaked = ScenarioConfig(first_year=2016)
        assert checkpoint_key(tweaked, 0.5, 7) != base

    def test_key_is_hex_sha256(self):
        key = checkpoint_key(ScenarioConfig(), 1.0, 0)
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestWarmEqualsCold:
    def test_world_digest_identity(self, saved, small_world):
        store, _ = saved
        before = obs.counters().get("checkpoint.hit", 0)
        warm = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        assert warm is not None
        assert obs.counters().get("checkpoint.hit", 0) == before + 1
        assert world_digest(warm) == world_digest(small_world)

    def test_per_dataset_digests_identical(self, saved, small_world):
        store, _ = saved
        warm = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        assert dataset_digests(warm) == dataset_digests(small_world)

    def test_streamed_rib_payload_matches_dumps(self, small_world):
        # The digest path hashes the RIB payload text chunk-by-chunk;
        # the stream must reproduce json.dumps byte for byte or golden
        # digests silently drift.
        from repro.datasets.checkpoint import (
            _JSON_COMPACT,
            _rib_payload,
            _rib_payload_chunks,
        )

        want = json.dumps(_rib_payload(small_world.rib), **_JSON_COMPACT)
        assert "".join(_rib_payload_chunks(small_world.rib)) == want

    def test_warm_world_answers_queries(self, saved, small_world):
        store, _ = saved
        warm = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        assert warm.members() == small_world.members()
        assert warm.topology.asns == small_world.topology.asns
        assert warm.size_of == small_world.size_of
        assert warm.vantage_points == small_world.vantage_points
        # The lazily restored allocation index answers prefix lookups.
        delegation = small_world.address_space.delegations[0]
        assert (
            warm.address_space.holder_of(delegation.prefix) == delegation
        )

    def test_restored_allocator_refuses_new_allocations(
        self, saved, small_world
    ):
        from datetime import date

        from repro.errors import AllocationError
        from repro.registry.rir import RIR

        store, _ = saved
        warm = store.load(
            small_world.config, small_world.scale, small_world.seed
        )
        with pytest.raises(AllocationError):
            warm.address_space.allocate(RIR.RIPE, 24, "ORG-X", date(2022, 1, 1))


class TestSafeFallback:
    def test_miss_on_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "empty")
        before = obs.counters().get("checkpoint.miss", 0)
        assert store.load(ScenarioConfig(), 0.12, 11) is None
        assert obs.counters().get("checkpoint.miss", 0) == before + 1

    def test_flipped_byte_discards_entry(self, saved, small_world, tmp_path):
        store, key = _copy_store(saved, tmp_path)
        target = store.path_for(key) / ARRAYS_FILE
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        before = obs.counters().get("checkpoint.corrupt", 0)
        assert (
            store.load(
                small_world.config, small_world.scale, small_world.seed
            )
            is None
        )
        assert obs.counters().get("checkpoint.corrupt", 0) == before + 1
        assert not store.path_for(key).exists(), "corrupt entry not removed"

    def test_schema_version_skew_discards_entry(
        self, saved, small_world, tmp_path
    ):
        store, key = _copy_store(saved, tmp_path)
        manifest_path = store.path_for(key) / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        assert (
            store.load(
                small_world.config, small_world.scale, small_world.seed
            )
            is None
        )
        assert not store.path_for(key).exists()

    def test_garbage_manifest_discards_entry(
        self, saved, small_world, tmp_path
    ):
        store, key = _copy_store(saved, tmp_path)
        (store.path_for(key) / MANIFEST_FILE).write_text("{not json")
        assert (
            store.load(
                small_world.config, small_world.scale, small_world.seed
            )
            is None
        )
        assert not store.path_for(key).exists()

    def test_missing_file_discards_entry(self, saved, small_world, tmp_path):
        store, key = _copy_store(saved, tmp_path)
        (store.path_for(key) / ARRAYS_FILE).unlink()
        assert (
            store.load(
                small_world.config, small_world.scale, small_world.seed
            )
            is None
        )
        assert not store.path_for(key).exists()


class TestMaintenance:
    def test_entries_reports_saved_world(self, saved, small_world):
        store, key = saved
        infos = store.entries()
        assert [info.key for info in infos] == [key]
        info = infos[0]
        assert info.scale == small_world.scale
        assert info.seed == small_world.seed
        assert info.complete
        assert info.n_files > 5
        assert info.n_bytes > 0

    def test_verify_clean_entry(self, saved):
        store, key = saved
        assert store.verify() == {key: []}

    def test_verify_reports_tampering(self, saved, tmp_path):
        store, key = _copy_store(saved, tmp_path)
        target = store.path_for(key) / ARRAYS_FILE
        blob = bytearray(target.read_bytes())
        blob[0] ^= 0xFF
        target.write_bytes(bytes(blob))
        report = store.verify()
        assert any("digest mismatch" in p for p in report[key])

    def test_save_is_idempotent(self, saved, small_world):
        store, key = saved
        manifest_path = store.path_for(key) / MANIFEST_FILE
        stamp = manifest_path.stat().st_mtime_ns
        store.save(small_world)
        assert manifest_path.stat().st_mtime_ns == stamp

    def test_prune(self, saved, tmp_path):
        store, key = _copy_store(saved, tmp_path)
        assert store.prune(keep=1) == []
        assert store.prune(keep=0) == [key]
        assert store.entries() == []


class TestDefaultStore:
    def test_unset_env_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_store() is None

    def test_env_names_the_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ckpt"))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "ckpt"


@pytest.fixture
def fresh_world_cache(monkeypatch):
    """Run with an empty in-memory world cache, restored afterwards."""
    snapshot = dict(common._WORLDS)
    common._WORLDS.clear()
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv(common.WORLD_CACHE_SIZE_ENV, raising=False)
    yield
    common._WORLDS.clear()
    common._WORLDS.update(snapshot)


class TestWorldCacheTiers:
    def test_disk_tier_round_trip(
        self, fresh_world_cache, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ckpt"))
        cold = common.world_cache(scale=0.05, seed=5)
        store = default_store()
        assert store.has(ScenarioConfig(), 0.05, 5), "cold build not saved"
        common._WORLDS.clear()  # force a memory miss → disk hit
        before = obs.counters().get("checkpoint.hit", 0)
        warm = common.world_cache(scale=0.05, seed=5)
        assert obs.counters().get("checkpoint.hit", 0) == before + 1
        assert world_digest(warm) == world_digest(cold)

    def test_memory_tier_returns_same_object(self, fresh_world_cache):
        first = common.world_cache(scale=0.05, seed=6)
        assert common.world_cache(scale=0.05, seed=6) is first

    def test_lru_bound_respects_env_override(
        self, fresh_world_cache, monkeypatch
    ):
        built = []

        def fake_build(scale, seed):
            built.append((scale, seed))
            return object()

        monkeypatch.setattr(common, "build_world", fake_build)
        monkeypatch.setenv(common.WORLD_CACHE_SIZE_ENV, "2")
        for seed in range(4):
            common.world_cache(scale=0.5, seed=seed)
        assert len(common._WORLDS) == 2
        assert list(common._WORLDS) == [(0.5, 2), (0.5, 3)]
        # The evicted worlds rebuild; the retained ones do not.
        common.world_cache(scale=0.5, seed=3)
        assert built.count((0.5, 3)) == 1
        common.world_cache(scale=0.5, seed=0)
        assert built.count((0.5, 0)) == 2

    def test_lru_bound_ignores_bad_override(
        self, fresh_world_cache, monkeypatch
    ):
        monkeypatch.setenv(common.WORLD_CACHE_SIZE_ENV, "not-a-number")
        assert common.world_cache_bound() == common.WORLD_CACHE_SIZE
        monkeypatch.setenv(common.WORLD_CACHE_SIZE_ENV, "-3")
        assert common.world_cache_bound() == common.WORLD_CACHE_SIZE
        monkeypatch.setenv(common.WORLD_CACHE_SIZE_ENV, "7")
        assert common.world_cache_bound() == 7


class TestTimelineYearSnapshots:
    def test_year_restore_matches_fresh_validation(
        self, saved, small_world
    ):
        store, _ = saved
        writer = Timeline(small_world, store=store)
        year = writer.years[0]
        fresh = writer.rov_at(year)
        before = obs.counters().get("timeline.rov_years_restored", 0)
        reader = Timeline(small_world, store=store)
        restored = reader.rov_at(year)
        assert (
            obs.counters().get("timeline.rov_years_restored", 0)
            == before + 1
        )
        assert set(restored.all_vrps()) == set(fresh.all_vrps())

    def test_corrupt_year_snapshot_recomputes(self, saved, small_world):
        store, key = saved
        writer = Timeline(small_world, store=store)
        year = writer.years[-1]
        fresh = writer.rov_at(year)
        path = store.year_path(key, year)
        path.write_text(path.read_text() + "tamper\n")
        before = obs.counters().get("checkpoint.corrupt", 0)
        reader = Timeline(small_world, store=store)
        recomputed = reader.rov_at(year)
        assert obs.counters().get("checkpoint.corrupt", 0) == before + 1
        assert set(recomputed.all_vrps()) == set(fresh.all_vrps())
        # The discarded snapshot is re-saved for the next run.
        assert path.is_file()


class TestCacheCLI:
    def test_warm_list_verify_prune_cycle(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "ckpt"
        args = ["--cache-dir", str(root), "--scale", "0.05", "--seed", "3"]
        assert main(["cache", "warm", *args]) == 0
        assert "stored" in capsys.readouterr().out

        assert main(["cache", "list", *args]) == 0
        out = capsys.readouterr().out
        assert "scale=0.05 seed=3" in out
        assert "1 entries" in out

        assert main(["cache", "verify", *args]) == 0
        assert "1/1 entries verified" in capsys.readouterr().out

        assert main(["cache", "prune", "--keep", "0", *args]) == 0
        assert "1 entries removed" in capsys.readouterr().out
        assert main(["cache", "list", *args]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_verify_flags_tampered_entry(self, saved, tmp_path, capsys):
        from repro.cli import main

        store, key = _copy_store(saved, tmp_path)
        target = store.path_for(key) / ARRAYS_FILE
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert main(["cache", "verify", "--cache-dir", str(store.root)]) == 1
        assert "digest mismatch" in capsys.readouterr().out

    def test_cache_without_directory_fails(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "list"]) == 2
        assert "no cache directory" in capsys.readouterr().err
