"""Tests for whole-world dataset export/import."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.datasets.store import export_world, load_bundle


class TestExportImport:
    def test_roundtrip_counts(self, small_world, tmp_path):
        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        assert len(bundle.prefix2as) == len(small_world.prefix2as)
        assert len(bundle.vrps) == len(small_world.rov)
        assert bundle.irr.route_count == small_world.irr.route_count
        assert len(bundle.manrs.participants) == len(
            small_world.manrs.participants
        )
        assert bundle.as2org.org_of == small_world.as2org.org_of

    def test_expected_files_written(self, small_world, tmp_path):
        export_world(small_world, tmp_path)
        names = {p.name for p in tmp_path.iterdir()}
        assert "prefix2as.txt" in names
        assert "as2org.txt" in names
        assert "as-rel.txt" in names
        assert "vrps.csv" in names
        assert "manrs-participants.csv" in names
        assert any(name.endswith(".irr.txt") for name in names)

    def test_reloaded_data_reproduces_validation(self, small_world, tmp_path):
        """Running ROV off the exported VRP file gives the same statuses
        as the in-memory validator."""
        from repro.rpki.rov import ROVValidator

        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        reloaded = ROVValidator(bundle.vrps)
        for record in small_world.ihr.prefix_origins[:100]:
            assert (
                reloaded.validate(record.prefix, record.origin) is record.rpki
            )

    def test_reloaded_irr_reproduces_validation(self, small_world, tmp_path):
        from repro.irr.validation import validate_irr

        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        for record in small_world.ihr.prefix_origins[:100]:
            assert (
                validate_irr(bundle.irr, record.prefix, record.origin)
                is record.irr
            )


class TestASRankDataset:
    def test_roundtrip_and_size_classes(self, small_world):
        from repro.topology.asrank import (
            build_asrank,
            parse_asrank,
            serialize_asrank,
        )

        records = build_asrank(small_world.topology)
        recovered = parse_asrank(serialize_asrank(records))
        assert recovered == records
        # The file-derived size classes match the in-memory ones.
        for record in recovered[:200]:
            assert record.size_class is small_world.size_of[record.asn]

    def test_rank_one_has_biggest_cone(self, small_world):
        from repro.topology.asrank import build_asrank

        records = build_asrank(small_world.topology)
        assert records[0].rank == 1
        assert records[0].cone_size == max(r.cone_size for r in records)

    def test_parse_rejects_malformed(self):
        import pytest

        from repro.errors import DatasetError
        from repro.topology.asrank import parse_asrank

        with pytest.raises(DatasetError):
            parse_asrank("1|2|3\n")
        with pytest.raises(DatasetError):
            parse_asrank("1|2|-1|5\n")

    def test_asrank_in_export(self, small_world, tmp_path):
        from repro.datasets.store import export_world, load_bundle

        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        assert len(bundle.asrank) == len(small_world.topology)


class TestBundleFixedPoint:
    """export_world → load_bundle → re-export is a byte-level fixed point.

    Extends the per-object RPSL round-trip property (tests/test_irr.py)
    to the whole dataset bundle: every file re-serialised from the
    parsed bundle must be byte-identical to the exported original, over
    Hypothesis-generated small worlds.  This is the substrate of the
    checkpoint store's warm-equals-cold guarantee — if any serializer
    lost information (ordering, formatting, a dropped field), warm
    worlds could not reproduce cold digests.
    """

    @staticmethod
    def _reexports(world, bundle) -> dict[str, str]:
        from repro.bgp.table import serialize_prefix2as
        from repro.datasets.store import IRR_SUFFIX
        from repro.irr.rpsl import serialize_database
        from repro.manrs.registry import serialize_participants
        from repro.rpki.archive import serialize_vrps
        from repro.topology.as2org import serialize_as2org
        from repro.topology.asrank import serialize_asrank
        from repro.topology.relationships import serialize_relationships

        texts = {
            "prefix2as.txt": serialize_prefix2as(bundle.prefix2as),
            "as2org.txt": serialize_as2org(bundle.as2org),
            "as-rel.txt": serialize_relationships(bundle.relationships),
            "vrps.csv": serialize_vrps(bundle.vrps, world.snapshot_date),
            "manrs-participants.csv": serialize_participants(bundle.manrs),
            "as-rank.txt": serialize_asrank(bundle.asrank),
        }
        for database in bundle.irr.databases:
            texts[f"{database.name.lower()}{IRR_SUFFIX}"] = (
                serialize_database(list(database.all_routes()))
            )
        return texts

    @given(
        seed=st.integers(min_value=0, max_value=40),
        scale=st.sampled_from([0.02, 0.03]),
    )
    @settings(max_examples=5, deadline=None)
    def test_reexport_is_byte_identical(self, seed, scale):
        import tempfile
        from pathlib import Path

        from repro.scenario.build import build_world

        world = build_world(scale=scale, seed=seed)
        with tempfile.TemporaryDirectory() as exported:
            export_world(world, exported)
            bundle = load_bundle(exported)
            originals = {
                path.name: path.read_text()
                for path in Path(exported).iterdir()
            }
        reexports = self._reexports(world, bundle)
        assert set(reexports) == set(originals)
        for name, text in reexports.items():
            assert text == originals[name], f"{name} is not a fixed point"
