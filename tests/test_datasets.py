"""Tests for whole-world dataset export/import."""

from __future__ import annotations

from repro.datasets.store import export_world, load_bundle


class TestExportImport:
    def test_roundtrip_counts(self, small_world, tmp_path):
        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        assert len(bundle.prefix2as) == len(small_world.prefix2as)
        assert len(bundle.vrps) == len(small_world.rov)
        assert bundle.irr.route_count == small_world.irr.route_count
        assert len(bundle.manrs.participants) == len(
            small_world.manrs.participants
        )
        assert bundle.as2org.org_of == small_world.as2org.org_of

    def test_expected_files_written(self, small_world, tmp_path):
        export_world(small_world, tmp_path)
        names = {p.name for p in tmp_path.iterdir()}
        assert "prefix2as.txt" in names
        assert "as2org.txt" in names
        assert "as-rel.txt" in names
        assert "vrps.csv" in names
        assert "manrs-participants.csv" in names
        assert any(name.endswith(".irr.txt") for name in names)

    def test_reloaded_data_reproduces_validation(self, small_world, tmp_path):
        """Running ROV off the exported VRP file gives the same statuses
        as the in-memory validator."""
        from repro.rpki.rov import ROVValidator

        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        reloaded = ROVValidator(bundle.vrps)
        for record in small_world.ihr.prefix_origins[:100]:
            assert (
                reloaded.validate(record.prefix, record.origin) is record.rpki
            )

    def test_reloaded_irr_reproduces_validation(self, small_world, tmp_path):
        from repro.irr.validation import validate_irr

        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        for record in small_world.ihr.prefix_origins[:100]:
            assert (
                validate_irr(bundle.irr, record.prefix, record.origin)
                is record.irr
            )


class TestASRankDataset:
    def test_roundtrip_and_size_classes(self, small_world):
        from repro.topology.asrank import (
            build_asrank,
            parse_asrank,
            serialize_asrank,
        )

        records = build_asrank(small_world.topology)
        recovered = parse_asrank(serialize_asrank(records))
        assert recovered == records
        # The file-derived size classes match the in-memory ones.
        for record in recovered[:200]:
            assert record.size_class is small_world.size_of[record.asn]

    def test_rank_one_has_biggest_cone(self, small_world):
        from repro.topology.asrank import build_asrank

        records = build_asrank(small_world.topology)
        assert records[0].rank == 1
        assert records[0].cone_size == max(r.cone_size for r in records)

    def test_parse_rejects_malformed(self):
        import pytest

        from repro.errors import DatasetError
        from repro.topology.asrank import parse_asrank

        with pytest.raises(DatasetError):
            parse_asrank("1|2|3\n")
        with pytest.raises(DatasetError):
            parse_asrank("1|2|-1|5\n")

    def test_asrank_in_export(self, small_world, tmp_path):
        from repro.datasets.store import export_world, load_bundle

        export_world(small_world, tmp_path)
        bundle = load_bundle(tmp_path)
        assert len(bundle.asrank) == len(small_world.topology)
