"""Shared fixtures: session-scoped worlds so expensive builds run once.

``small_world`` (~1k ASes) is for integration tests of the pipeline;
``mid_world`` (~4k ASes) is for the statistical shape tests that need
enough ASes per population.  Unit tests build their own tiny inputs and
should not use these.
"""

from __future__ import annotations

import pytest

from repro.scenario.build import build_world
from repro.scenario.world import World


@pytest.fixture(scope="session")
def small_world() -> World:
    """A ~1k-AS world for fast integration tests."""
    return build_world(scale=0.12, seed=11)


@pytest.fixture(scope="session")
def mid_world() -> World:
    """A ~4k-AS world for statistical shape tests."""
    return build_world(scale=0.45, seed=7)
