"""Cross-process determinism of world construction.

DESIGN §2's paper-shape claims (and the checkpoint store's content
addressing) assume `build_world` is a pure function of (config, scale,
seed).  The riskiest way for that to break silently is hash-order
dependence — iteration over sets/dicts keyed by str leaking into
serialised output.  Building the same world in subprocesses with
*different* ``PYTHONHASHSEED`` values and comparing digests guards
exactly that: within one process the hash seed is fixed, so only a
fresh interpreter can vary it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

_CHILD = """
import json
import sys

from repro.datasets.checkpoint import dataset_digests, world_digest
from repro.scenario.build import build_world

world = build_world(scale=float(sys.argv[1]), seed=int(sys.argv[2]))
print(json.dumps({
    "world": world_digest(world),
    "datasets": dataset_digests(world),
}))
"""


def _digests_in_subprocess(hash_seed: str, scale: float, seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(SRC)
    env.pop("REPRO_CACHE_DIR", None)  # digests must come from cold builds
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(scale), str(seed)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=600,
    )
    return json.loads(result.stdout)


def test_digests_survive_hash_seed_change():
    first = _digests_in_subprocess("0", 0.05, 3)
    second = _digests_in_subprocess("101", 0.05, 3)
    drifted = [
        name
        for name in first["datasets"]
        if first["datasets"][name] != second["datasets"].get(name)
    ]
    assert not drifted, (
        "hash-order dependence: datasets differ across PYTHONHASHSEED "
        f"0 vs 101: {drifted}"
    )
    assert first["world"] == second["world"]


def test_subprocess_matches_golden_point():
    """The subprocess digests agree with the committed goldens, tying
    cross-process determinism to the golden regression suite."""
    goldens = json.loads(
        (Path(__file__).parent / "goldens" / "world_digests.json").read_text()
    )
    entry = next(
        e
        for e in goldens["entries"]
        if (e["scale"], e["seed"]) == (0.05, 3)
    )
    child = _digests_in_subprocess("7", 0.05, 3)
    assert child["world"] == entry["world_digest"]
    assert child["datasets"] == entry["datasets"]
