"""Tests for scenario configurability: behaviour/recruitment overrides."""

from __future__ import annotations

from dataclasses import replace

from repro.manrs.recruitment import RecruitmentConfig
from repro.scenario.build import build_world
from repro.scenario.config import (
    BehaviorConfig,
    FilteringBehavior,
    RegistrationBehavior,
    ScenarioConfig,
)
from repro.topology.classify import SizeClass
from repro.topology.generator import TopologyConfig


def _uniform_registration(
    rpki_all: float, irr_all: float
) -> dict[tuple[SizeClass, bool], RegistrationBehavior]:
    behavior = RegistrationBehavior(
        rpki_all=rpki_all, rpki_none=1.0 - rpki_all,
        rpki_misconfig=0.0, rpki_misconfig_mean=0.0,
        irr_all=irr_all, irr_none=1.0 - irr_all,
        irr_stale=0.0, irr_stale_fraction=0.0,
    )
    return {
        (size, member): behavior
        for size in SizeClass
        for member in (True, False)
    }


def _uniform_filtering(
    rov: float,
) -> dict[tuple[SizeClass, bool], FilteringBehavior]:
    behavior = FilteringBehavior(rov=rov, filter_customers=0.0)
    return {
        (size, member): behavior
        for size in SizeClass
        for member in (True, False)
    }


class TestBehaviorOverrides:
    def test_perfect_world_has_no_invalids(self):
        config = ScenarioConfig(
            behavior=BehaviorConfig(
                registration=_uniform_registration(1.0, 1.0),
                cdn_member_registration=RegistrationBehavior(
                    rpki_all=1.0, rpki_none=0.0,
                    rpki_misconfig=0.0, rpki_misconfig_mean=0.0,
                    irr_all=1.0, irr_none=0.0,
                    irr_stale=0.0, irr_stale_fraction=0.0,
                ),
                filtering=_uniform_filtering(0.0),
            ),
        )
        # Disable the deliberately-unconformant special cases and legacy
        # space so registration is the only variable.
        config.origination.legacy_probability = {
            key: 0.0 for key in config.origination.legacy_probability
        }
        world = build_world(scale=0.05, seed=2, config=config)
        flagships = {
            asn
            for asn, behavior in world.behaviors.items()
            if behavior.irr_stale_fraction > 0 or behavior.rpki_misconfig_count
        }
        invalids = [
            record
            for record in world.ihr.prefix_origins
            if record.rpki.is_invalid and record.origin not in flagships
        ]
        assert invalids == []

    def test_unregistered_world_is_all_not_found(self):
        config = ScenarioConfig(
            behavior=BehaviorConfig(
                registration=_uniform_registration(0.0, 0.0),
                cdn_member_registration=RegistrationBehavior(
                    rpki_all=0.0, rpki_none=1.0,
                    rpki_misconfig=0.0, rpki_misconfig_mean=0.0,
                    irr_all=0.0, irr_none=1.0,
                    irr_stale=0.0, irr_stale_fraction=0.0,
                ),
                filtering=_uniform_filtering(0.0),
            ),
        )
        world = build_world(scale=0.05, seed=2, config=config)
        # The only registrations left are the forced case-study overrides
        # (flagship CDNs / ISP1 siblings register IRR objects).
        overridden = {
            asn
            for asn, behavior in world.behaviors.items()
            if behavior.irr_fraction > 0 or behavior.rpki_fraction > 0
        }
        for record in world.ihr.prefix_origins:
            if record.origin in overridden:
                continue
            assert record.rpki.value == "not_found"
            assert record.irr.value == "not_found"

    def test_full_rov_drops_all_invalids(self):
        config = ScenarioConfig(
            behavior=BehaviorConfig(filtering=_uniform_filtering(1.0)),
        )
        world = build_world(scale=0.05, seed=2, config=config)
        # With ROV everywhere, an invalid announcement can only be seen if
        # the origin itself peers with a vantage point... which our
        # vantage points' own ROV also rejects — so nothing invalid shows.
        invalid_visible = [
            record
            for record in world.ihr.prefix_origins
            if record.rpki.is_invalid
        ]
        assert invalid_visible == []


class TestRecruitmentOverrides:
    def test_custom_recruitment_config_respected(self):
        recruitment = RecruitmentConfig(
            brazil_wave_probability=0.0,
            cdn_program_start=2021,
        )
        world = build_world(
            scale=0.1, seed=4, recruitment_config=recruitment
        )
        from repro.manrs.actions import Program

        for participant in world.manrs.participants_in(Program.CDN):
            assert participant.joined.year >= 2021

    def test_topology_config_scaling_respected(self):
        topology_config = TopologyConfig(
            n_large_transit=4, n_cdn=2, n_medium_isp=10,
            n_small_isp=10, n_stub=50,
        )
        world = build_world(
            scale=1.0, seed=4, topology_config=topology_config
        )
        assert len(world.topology) < 150

    def test_snapshot_date_propagates(self):
        from datetime import date

        config = ScenarioConfig(snapshot_date=date(2021, 5, 1))
        world = build_world(scale=0.05, seed=2, config=config)
        assert world.snapshot_date == date(2021, 5, 1)
        # Membership is evaluated at the earlier date.
        assert world.members() == world.manrs.member_asns(
            as_of=date(2021, 5, 1)
        )
