"""Shape tests: the paper's qualitative results must hold on mid_world.

Absolute numbers differ from the paper (our substrate is a simulator and
the world is ~7× smaller than the Internet), but every directional claim
the evaluation makes — who wins, which distributions are bimodal, where
the jumps fall — is asserted here with tolerant bounds.  Each test cites
the finding it reproduces.
"""

from __future__ import annotations

import pytest

from repro import experiments as ex
from repro.manrs.actions import Program
from repro.registry.rir import RIR
from repro.topology.classify import SizeClass

SMALL_M = (SizeClass.SMALL, True)
SMALL_N = (SizeClass.SMALL, False)
MEDIUM_M = (SizeClass.MEDIUM, True)
MEDIUM_N = (SizeClass.MEDIUM, False)
LARGE_M = (SizeClass.LARGE, True)
LARGE_N = (SizeClass.LARGE, False)


class TestFig2Growth:
    def test_monotone_and_2020_wave(self, mid_world):
        points = ex.fig2_growth.run(mid_world)
        orgs = [p.organizations for p in points]
        assert orgs == sorted(orgs)
        increments = [b - a for a, b in zip(orgs, orgs[1:])]
        years = [p.year for p in points][1:]
        assert years[increments.index(max(increments))] == 2020

    def test_render_mentions_years(self, mid_world):
        text = ex.fig2_growth.render(ex.fig2_growth.run(mid_world))
        assert "2015" in text and "2022" in text


class TestFig4Participation:
    def test_lacnic_wave_2020(self, mid_world):
        """Figure 4a: the NIC.br outreach adds many LACNIC ASes in 2020."""
        result = ex.fig4_participation.run(mid_world)
        jump = result.ases_in(RIR.LACNIC, 2020) - result.ases_in(RIR.LACNIC, 2019)
        other_years = [
            result.ases_in(RIR.LACNIC, y + 1) - result.ases_in(RIR.LACNIC, y)
            for y in (2015, 2016, 2017, 2018, 2020, 2021)
        ]
        assert jump > max(other_years)

    def test_apnic_space_jump_2020(self, mid_world):
        """Figure 4b: the flagship transit (China Telecom analogue) makes
        APNIC space jump in 2020."""
        result = ex.fig4_participation.run(mid_world)
        jump = result.share_in(RIR.APNIC, 2020) - result.share_in(RIR.APNIC, 2019)
        assert jump > 1.0  # percentage points of the whole v4 table

    def test_lacnic_wave_brings_little_space(self, mid_world):
        """§7: the Brazilian ASes contributed little address space."""
        result = ex.fig4_participation.run(mid_world)
        space_jump = result.share_in(RIR.LACNIC, 2020) - result.share_in(
            RIR.LACNIC, 2019
        )
        apnic_jump = result.share_in(RIR.APNIC, 2020) - result.share_in(
            RIR.APNIC, 2019
        )
        assert space_jump < apnic_jump


class TestF70Completeness:
    def test_most_orgs_fully_registered_but_not_all(self, mid_world):
        """Finding 7.0: ~70% all-ASNs, ~82% all-space."""
        report = ex.f70_completeness.run(mid_world)
        assert 0.55 <= report.pct_all_asns / 100 <= 0.90
        assert report.pct_all_space >= report.pct_all_asns
        assert report.partial_announcers > 0

    def test_some_orgs_announce_only_from_unregistered(self, mid_world):
        """The paper found 8 of 117 partial orgs announcing exclusively
        from non-member ASes."""
        report = ex.f70_completeness.run(mid_world)
        assert report.only_unregistered_announcers >= 0
        assert report.only_unregistered_announcers <= report.partial_announcers


class TestFig5Origination:
    def test_small_rpki_bimodal(self, mid_world):
        """Finding 8.1: small-AS RPKI validity is bimodal."""
        modes = ex.fig5_origination.run(mid_world).modes
        for population in (SMALL_M, SMALL_N):
            mode = modes[population]
            assert mode.only_rpki_valid + mode.no_rpki_valid > 0.75

    def test_small_manrs_more_likely_all_valid(self, mid_world):
        """Finding 8.1: small MANRS ~2.5x likelier to be all-RPKI-valid."""
        modes = ex.fig5_origination.run(mid_world).modes
        assert modes[SMALL_M].only_rpki_valid > 1.8 * modes[SMALL_N].only_rpki_valid
        assert modes[SMALL_N].no_rpki_valid > 1.8 * modes[SMALL_M].no_rpki_valid

    def test_medium_manrs_more_likely_all_valid(self, mid_world):
        modes = ex.fig5_origination.run(mid_world).modes
        assert modes[MEDIUM_M].only_rpki_valid > 1.4 * modes[MEDIUM_N].only_rpki_valid

    def test_rpki_median_ordering(self, mid_world):
        result = ex.fig5_origination.run(mid_world)
        assert result.rpki_cdf[SMALL_M].median > result.rpki_cdf[SMALL_N].median
        assert result.rpki_cdf[MEDIUM_M].median > result.rpki_cdf[MEDIUM_N].median

    def test_large_manrs_irr_validity_lower(self, mid_world):
        """Finding 8.2: large MANRS ASes are *less* IRR-valid than large
        non-MANRS (their IRR records rot once they adopt RPKI)."""
        result = ex.fig5_origination.run(mid_world)
        assert (
            result.irr_cdf[LARGE_M].median
            < result.irr_cdf[LARGE_N].median
        )

    def test_small_medium_irr_similar(self, mid_world):
        """§8.2: small/medium MANRS and non-MANRS alike on IRR validity."""
        result = ex.fig5_origination.run(mid_world)
        assert abs(
            result.irr_cdf[SMALL_M].median - result.irr_cdf[SMALL_N].median
        ) < 25.0

    def test_irr_only_registration_skews_non_manrs(self, mid_world):
        """§8.2: non-MANRS far likelier to register only in the IRR."""
        modes = ex.fig5_origination.run(mid_world).modes
        assert modes[SMALL_N].irr_only_registration > 2 * modes[SMALL_M].irr_only_registration
        assert modes[MEDIUM_N].irr_only_registration > 1.5 * modes[MEDIUM_M].irr_only_registration

    def test_small_manrs_rarely_originates_invalid(self, mid_world):
        """§8.1: (almost) no small MANRS AS originates RPKI Invalid —
        the only exceptions are the ISP1-analogue's forgotten ROAs."""
        modes = ex.fig5_origination.run(mid_world).modes
        assert modes[SMALL_M].originates_rpki_invalid < 0.02
        assert modes[LARGE_N].originates_rpki_invalid >= modes[SMALL_N].originates_rpki_invalid


class TestF83Action4:
    def test_isp_conformance_level(self, mid_world):
        """Finding 8.4: ~95% of MANRS ISPs conformant."""
        summaries = ex.f83_action4.run(mid_world)
        isp = summaries[Program.ISP]
        assert 88.0 <= isp.pct_conformant <= 99.5
        assert isp.unconformant_asns  # but not all conformant
        assert isp.trivially_conformant > 0  # quiescent member ASNs

    def test_cdn_conformance_level(self, mid_world):
        """Finding 8.3: most CDNs conformant, a few big ones barely not."""
        summaries = ex.f83_action4.run(mid_world)
        cdn = summaries[Program.CDN]
        assert cdn.total_members >= 5
        assert 1 <= len(cdn.unconformant_asns) <= 4
        assert cdn.pct_conformant >= 60.0


class TestTab1CaseStudies:
    def test_rows_exist_and_attribute(self, mid_world):
        rows = ex.tab1_casestudies.run(mid_world)
        assert len(rows) >= 4  # 3 CDNs + at least one ISP org
        cdn_rows = [row for row in rows if row.label.startswith("CDN")]
        assert len(cdn_rows) == 3
        for row in cdn_rows:
            assert row.total_attributed >= 1

    def test_majority_sibling_cp(self, mid_world):
        """Finding 8.5: >50% of mismatching origins are sibling/C-P."""
        rows = ex.tab1_casestudies.run(mid_world)
        attributed = sum(row.total_attributed for row in rows)
        sibling_cp = sum(
            row.rpki_sibling_cp + row.irr_sibling_cp for row in rows
        )
        assert attributed > 0
        assert sibling_cp / attributed > 0.5

    def test_rpki_invalid_is_minority(self, mid_world):
        """Finding 8.5: ~1% of case-study invalids were RPKI Invalid;
        here we just require IRR-invalid to dominate."""
        rows = ex.tab1_casestudies.run(mid_world)
        rpki_total = sum(row.rpki_invalid for row in rows)
        irr_total = sum(row.irr_invalid for row in rows)
        assert irr_total > rpki_total

    def test_isp1_has_some_rpki_invalid(self, mid_world):
        """The ISP1 analogue carries the forgotten-ROA misconfigs."""
        rows = ex.tab1_casestudies.run(mid_world)
        isp_rows = [row for row in rows if row.label.startswith("ISP")]
        assert sum(row.rpki_invalid for row in isp_rows) >= 1


class TestF87Stability:
    def test_stable_majority(self, mid_world):
        """Finding 8.7: most member ASes keep their verdict all weeks."""
        result = ex.f87_stability.run(mid_world, seed=3)
        report = result.report
        total = len(report.classification)
        assert report.always_conformant / total > 0.8
        assert report.always_unconformant >= 1
        assert report.flapping >= 1

    def test_flapping_matches_injected_churn(self, mid_world):
        result = ex.f87_stability.run(mid_world, seed=3)
        flapping_asns = {
            asn
            for asn, verdict in result.report.classification.items()
            if verdict.value == "flapping"
        }
        assert flapping_asns <= set(result.weekly.flapped)


class TestFig6Saturation:
    def test_manrs_saturation_higher_and_jump_2020(self, mid_world):
        """Finding 8.8 + Figure 6: MANRS ~2x non-MANRS, post-2020 jump
        from the CDN program."""
        points = ex.fig6_saturation.run(mid_world)
        final = points[-1]
        assert final.manrs_saturation > 1.5 * final.other_saturation
        assert final.manrs_saturation < 85.0  # legacy space caps it
        by_year = {p.year: p.manrs_saturation for p in points}
        increments = {
            year: by_year[year] - by_year[year - 1]
            for year in range(2016, 2023)
        }
        assert max(increments, key=increments.get) == 2020


class TestFig7Filtering:
    def test_small_ases_propagate_almost_no_invalids(self, mid_world):
        """§9.1: ~99% of small ASes propagate zero RPKI-Invalids."""
        result = ex.fig7_filtering.run(mid_world)
        for population in (SMALL_M, SMALL_N):
            assert result.rpki_cdf[population].fraction_at_most(0.0) > 0.9

    def test_invalid_share_is_small_everywhere(self, mid_world):
        """RPKI-Invalids are <1% of the table, so propagation shares stay
        in the single digits (Figure 7a's x-axis tops out at 2%)."""
        result = ex.fig7_filtering.run(mid_world)
        for population, cdf in result.rpki_cdf.items():
            if cdf.n:
                assert cdf.maximum < 12.0, population

    def test_large_ases_see_invalids(self, mid_world):
        """Large transits carry most of the table, so non-filtering ones
        inevitably propagate some invalids."""
        result = ex.fig7_filtering.run(mid_world)
        assert result.rpki_cdf[LARGE_N].fraction_at_most(0.0) < 1.0

    def test_irr_invalid_propagation_widespread_for_large(self, mid_world):
        """Figure 7b: every large AS propagates some IRR-Invalids."""
        result = ex.fig7_filtering.run(mid_world)
        assert result.irr_cdf[LARGE_M].maximum > 0.0
        assert result.irr_cdf[LARGE_N].maximum > 0.0


class TestFig8Tab2Action1:
    def test_no_large_manrs_fully_conformant(self, mid_world):
        """Table 2: 0% of large MANRS ASes fully Action 1 conformant."""
        summaries = ex.tab2_action1.run(mid_world)
        large = summaries[SizeClass.LARGE]
        assert large.transit_total > 0
        assert large.transit_conformant == 0

    def test_small_manrs_mostly_conformant(self, mid_world):
        """Table 2: 97.1% of small transit MANRS ASes conformant."""
        summaries = ex.tab2_action1.run(mid_world)
        small = summaries[SizeClass.SMALL]
        assert small.pct_transit_conformant > 85.0
        assert small.pct_total_conformant > 95.0

    def test_medium_in_between(self, mid_world):
        summaries = ex.tab2_action1.run(mid_world)
        medium = summaries[SizeClass.MEDIUM]
        assert 40.0 < medium.pct_transit_conformant < 90.0

    def test_most_small_members_provide_no_transit(self, mid_world):
        """§9.3: only 23% of small MANRS ASes provided transit."""
        summaries = ex.tab2_action1.run(mid_world)
        small = summaries[SizeClass.SMALL]
        assert small.transit_total < 0.5 * small.total_members

    def test_large_manrs_unconformant_share_bounded(self, mid_world):
        """Figure 8: every large MANRS AS below 15% unconformant."""
        cdfs = ex.fig8_unconformant.run(mid_world)
        assert cdfs[LARGE_M].n > 0
        assert cdfs[LARGE_M].maximum < 15.0


class TestFig9Preference:
    def test_invalids_avoid_manrs_transit(self, mid_world):
        """Finding 9.4: RPKI Invalid announcements are markedly less
        likely to cross MANRS networks than Valid/NotFound ones."""
        cdfs = ex.fig9_preference.run(mid_world)
        invalid = cdfs["invalid"].fraction_above(0.0)
        valid = cdfs["valid"].fraction_above(0.0)
        not_found = cdfs["not_found"].fraction_above(0.0)
        assert invalid < valid - 0.10
        assert invalid < not_found - 0.10

    def test_valid_and_notfound_similar(self, mid_world):
        """§9.4: Valid and NotFound propagate alike (ROV ignores both)."""
        cdfs = ex.fig9_preference.run(mid_world)
        assert abs(
            cdfs["valid"].fraction_above(0.0)
            - cdfs["not_found"].fraction_above(0.0)
        ) < 0.15
