"""Property test: the propagation engine vs a path-vector oracle.

The engine computes routes constructively (3-phase BFS + lazy provider
recursion).  This test checks it against an *independent* implementation:
a literal path-vector simulation that floods advertisements round by round
under the Gao–Rexford export rules until the network converges.  Both must
select identical routes for every AS, on random topologies, with and
without import filtering.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bgp.policy import ASPolicy, NeighborKind, RouteClass
from repro.bgp.propagation import PropagationEngine, RouteKind
from repro.registry.rir import RIR
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)

_KIND_BY_SOURCE = {
    "customer": RouteKind.CUSTOMER,
    "peer": RouteKind.PEER,
    "provider": RouteKind.PROVIDER,
}


def _oracle(topology, policies, origin, route_class):
    """Converged path-vector routes: {asn: (kind, path)}."""
    default = ASPolicy()
    selected: dict[int, tuple[RouteKind, tuple[int, ...]]] = {
        origin: (RouteKind.ORIGIN, (origin,))
    }
    changed = True
    while changed:
        changed = False
        # Gather advertisements: (receiver, neighbor_kind_at_receiver,
        # sender, path).
        offers: dict[int, list[tuple[RouteKind, int, tuple[int, ...]]]] = {}
        for sender, (kind, path) in list(selected.items()):
            exports_to_all = kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)
            for customer in topology.customers_of(sender):
                offers.setdefault(customer, []).append(
                    (RouteKind.PROVIDER, sender, path)
                )
            if exports_to_all:
                for peer in topology.peers_of(sender):
                    offers.setdefault(peer, []).append(
                        (RouteKind.PEER, sender, path)
                    )
                for provider in topology.providers_of(sender):
                    offers.setdefault(provider, []).append(
                        (RouteKind.CUSTOMER, sender, path)
                    )
        for receiver, candidates in offers.items():
            if receiver == origin:
                continue
            policy = policies.get(receiver, default)
            admissible = []
            for kind, sender, path in candidates:
                neighbor_kind = {
                    RouteKind.CUSTOMER: NeighborKind.CUSTOMER,
                    RouteKind.PEER: NeighborKind.PEER,
                    RouteKind.PROVIDER: NeighborKind.PROVIDER,
                }[kind]
                if receiver in path:
                    continue  # loop prevention
                if policy.accepts(
                    route_class, neighbor_kind,
                    neighbor=sender, importer=receiver,
                ):
                    admissible.append((int(kind), len(path), sender, path))
            if not admissible:
                continue
            best = min(admissible)
            best_route = (RouteKind(best[0]), (receiver,) + best[3])
            if selected.get(receiver) != best_route:
                selected[receiver] = best_route
                changed = True
    return selected


@st.composite
def random_scenarios(draw):
    n = draw(st.integers(min_value=3, max_value=9))
    asns = list(range(1, n + 1))
    topo = ASTopology()
    topo.add_org(Organization("O", "Org", "US"))
    for asn in asns:
        topo.add_as(AutonomousSystem(asn, "O", "US", RIR.ARIN, ASCategory.STUB))
    # provider edges only "upwards" (j provider of i when j < i) keeps the
    # p2c graph acyclic, like the real economy
    for i in asns:
        for j in asns:
            if j >= i:
                continue
            roll = draw(
                st.sampled_from(["none", "none", "p2c", "none", "peer"])
            )
            if roll == "p2c":
                topo.add_link(j, i, Relationship.PROVIDER_CUSTOMER)
            elif roll == "peer":
                topo.add_link(j, i, Relationship.PEER)
    policies = {}
    for asn in asns:
        if draw(st.booleans()):
            policies[asn] = ASPolicy(
                rov=draw(st.booleans()),
                filter_customers_irr=draw(st.booleans()),
                customer_filter_coverage=draw(
                    st.sampled_from([0.0, 0.5, 1.0])
                ),
            )
    origin = draw(st.sampled_from(asns))
    route_class = RouteClass(
        rpki_invalid=draw(st.booleans()),
        irr_invalid=draw(st.booleans()),
    )
    return topo, policies, origin, route_class


@settings(max_examples=120, deadline=None)
@given(random_scenarios())
def test_engine_matches_path_vector_oracle(scenario):
    topo, policies, origin, route_class = scenario
    engine = PropagationEngine(topo, policies)
    engine_routes = engine.propagate(origin, route_class)
    oracle_routes = _oracle(topo, policies, origin, route_class)
    assert set(engine_routes) == set(oracle_routes)
    for asn, route in engine_routes.items():
        oracle_kind, oracle_path = oracle_routes[asn]
        assert route.kind == oracle_kind, f"AS{asn}"
        assert route.path == oracle_path, f"AS{asn}"


@settings(max_examples=60, deadline=None)
@given(random_scenarios())
def test_selected_paths_are_valley_free(scenario):
    """Independent structural check: every selected path must be
    valley-free — reading from the origin outward: uphill (customer to
    provider) steps, at most one peer step, then downhill steps only."""
    topo, policies, origin, route_class = scenario
    engine = PropagationEngine(topo, policies)
    for asn, route in engine.propagate(origin, route_class).items():
        path = route.path[::-1]  # origin ... holder
        phase = "up"
        for a, b in zip(path, path[1:]):
            # the route travels a -> b
            if b in topo.providers_of(a):
                step = "up"
            elif b in topo.peers_of(a):
                step = "peer"
            else:
                assert b in topo.customers_of(a)
                step = "down"
            if phase == "up":
                assert step in ("up", "peer", "down")
                if step == "peer":
                    phase = "peered"
                elif step == "down":
                    phase = "down"
            elif phase == "peered":
                assert step == "down", f"peer step not followed by down in {route.path}"
                phase = "down"
            else:
                assert step == "down", f"valley in {route.path}"
