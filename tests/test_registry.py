"""Unit tests for RIR pools and the address allocation engine."""

from __future__ import annotations

from datetime import date

import pytest

from repro.errors import AllocationError
from repro.net.prefix import Prefix, aggregate_address_count
from repro.registry.allocation import AddressSpace
from repro.registry.rir import ALL_RIRS, RIR, rir_for_country, rir_for_prefix


class TestRIRPools:
    def test_five_rirs(self):
        assert len(ALL_RIRS) == 5

    def test_pools_are_disjoint(self):
        pools = [(rir, p) for rir in RIR for p in rir.v4_pools]
        for i, (_, a) in enumerate(pools):
            for _, b in pools[i + 1:]:
                assert not a.overlaps(b), f"{a} overlaps {b}"

    def test_rir_for_prefix_roundtrip(self):
        for rir in RIR:
            for pool in rir.v4_pools:
                inner = next(pool.subnets(16))
                assert rir_for_prefix(inner) is rir
            assert rir_for_prefix(rir.v6_pool) is rir

    def test_rir_for_prefix_rejects_unpooled(self):
        with pytest.raises(AllocationError):
            rir_for_prefix(Prefix.parse("10.0.0.0/8"))

    def test_rir_for_country(self):
        assert rir_for_country("US") is RIR.ARIN
        assert rir_for_country("BR") is RIR.LACNIC
        with pytest.raises(AllocationError):
            rir_for_country("XX")


class TestAllocation:
    def test_allocates_within_rir_pool(self):
        space = AddressSpace()
        delegation = space.allocate(RIR.RIPE, 16, "ORG-1", date(2020, 1, 1))
        assert delegation.prefix.length == 16
        assert rir_for_prefix(delegation.prefix) is RIR.RIPE

    def test_allocations_are_disjoint(self):
        space = AddressSpace()
        blocks = [
            space.allocate(RIR.ARIN, 12, f"ORG-{i}", date(2020, 1, 1)).prefix
            for i in range(20)
        ]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.overlaps(b)

    def test_deterministic_sequence(self):
        first = AddressSpace()
        second = AddressSpace()
        seq1 = [first.allocate(RIR.APNIC, 20, "O", date(2020, 1, 1)).prefix for _ in range(50)]
        seq2 = [second.allocate(RIR.APNIC, 20, "O", date(2020, 1, 1)).prefix for _ in range(50)]
        assert seq1 == seq2

    def test_exhaustion_raises(self):
        space = AddressSpace()
        # AFRINIC has three /8 pools: four /9s exhaust... eight /9s exist.
        for _ in range(6):
            space.allocate(RIR.AFRINIC, 9, "O", date(2020, 1, 1))
        with pytest.raises(AllocationError):
            space.allocate(RIR.AFRINIC, 9, "O", date(2020, 1, 1))

    def test_rejects_length_zero(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.allocate(RIR.ARIN, 0, "O", date(2020, 1, 1))

    def test_holder_of(self):
        space = AddressSpace()
        delegation = space.allocate(RIR.ARIN, 16, "ORG-1", date(2020, 1, 1))
        inner = next(delegation.prefix.subnets(24))
        found = space.holder_of(inner)
        assert found is not None and found.org_id == "ORG-1"
        assert space.holder_of(Prefix.parse("10.0.0.0/8")) is None

    def test_delegations_for(self):
        space = AddressSpace()
        space.allocate(RIR.ARIN, 16, "A", date(2020, 1, 1))
        space.allocate(RIR.ARIN, 16, "B", date(2020, 1, 1))
        space.allocate(RIR.RIPE, 20, "A", date(2020, 1, 1))
        assert len(space.delegations_for("A")) == 2
        assert space.delegations_for("missing") == []

    def test_legacy_flag_recorded(self):
        space = AddressSpace()
        delegation = space.allocate(
            RIR.ARIN, 16, "A", date(1993, 1, 1), legacy=True
        )
        assert delegation.legacy
        assert "legacy" in str(delegation)

    def test_ipv6_allocation(self):
        space = AddressSpace()
        delegation = space.allocate(RIR.RIPE, 32, "A", date(2020, 1, 1), version=6)
        assert delegation.prefix.version == 6
        assert RIR.RIPE.v6_pool.contains(delegation.prefix)

    def test_buddy_split_conserves_space(self):
        space = AddressSpace()
        total_before = sum(p.address_count for p in RIR.AFRINIC.v4_pools)
        allocated = [
            space.allocate(RIR.AFRINIC, 12, "O", date(2020, 1, 1)).prefix
            for _ in range(10)
        ]
        allocated_count = aggregate_address_count(allocated)
        assert allocated_count == 10 * 2**20
        assert allocated_count < total_before

    def test_serialize_lists_all(self):
        space = AddressSpace()
        space.allocate(RIR.ARIN, 16, "A", date(2020, 1, 1))
        space.allocate(RIR.RIPE, 16, "B", date(2020, 1, 1))
        text = space.serialize()
        assert "ARIN|A" in text and "RIPE|B" in text
