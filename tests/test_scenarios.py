"""Tests for the adversarial scenario pack (``repro.scenarios``).

Three layers of coverage:

* the :class:`~repro.scenarios.base.ScenarioFamily` contract (param
  validation, override merging, render delegation);
* per-family invariants on the ``small_world`` fixture, including the
  composition discipline — running every family leaves the world's
  checkpoint digest untouched;
* golden pinning: the rendered figures at the fixture's (scale, seed)
  must match ``tests/goldens/scenario_digests.json``, and every family
  must be visible through the experiment registry.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.datasets.checkpoint import world_digest
from repro.experiments.registry import REGISTRY
from repro.scenarios import FAMILIES
from repro.scenarios.base import ScenarioFamily

GOLDENS_PATH = Path(__file__).parent / "goldens" / "scenario_digests.json"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestScenarioFamilyContract:
    def _family(self) -> ScenarioFamily:
        return ScenarioFamily(
            name="toy",
            title="Toy family",
            paper_ref="nowhere",
            compute=lambda world, params: {"params": dict(params)},
            format=lambda result: f"toy: {sorted(result['params'])}",
            params={"knob": 3, "other": "x"},
        )

    def test_defaults_applied(self):
        result = self._family().run(None)
        assert result["params"] == {"knob": 3, "other": "x"}

    def test_overrides_merge_without_mutating_defaults(self):
        family = self._family()
        result = family.run(None, knob=9)
        assert result["params"] == {"knob": 9, "other": "x"}
        assert family.params["knob"] == 3

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError, match="unknown toy parameter"):
            self._family().run(None, bogus=1)

    def test_render_delegates_to_format(self):
        family = self._family()
        assert family.render(family.run(None)) == "toy: ['knob', 'other']"


class TestFamiliesCatalogue:
    def test_expected_families_in_order(self):
        assert list(FAMILIES) == ["rsrov", "cexp", "roastorm", "martian"]

    def test_names_match_keys(self):
        for key, family in FAMILIES.items():
            assert family.name == key
            assert family.title
            assert family.paper_ref

    def test_catalogue_is_read_only(self):
        with pytest.raises(TypeError):
            FAMILIES["extra"] = None  # type: ignore[index]

    def test_every_family_registered_as_experiment(self):
        for name, family in FAMILIES.items():
            spec = REGISTRY[name]
            assert spec.title == family.title
            assert spec.paper_ref == family.paper_ref


class TestFamiliesOnWorld:
    def test_composition_preserves_world_digest(self, small_world):
        """The tentpole discipline: scenarios compose onto a built world
        without perturbing it, so its checkpoint identity survives."""
        before = world_digest(small_world)
        for family in FAMILIES.values():
            family.run(small_world)
        assert world_digest(small_world) == before

    def test_runs_are_deterministic(self, small_world):
        for family in FAMILIES.values():
            first = family.render(family.run(small_world))
            second = family.render(family.run(small_world))
            assert first == second, family.name

    def test_renders_match_goldens(self, small_world):
        entry = json.loads(GOLDENS_PATH.read_text())["entry"]
        assert (entry["scale"], entry["seed"]) == (
            small_world.scale,
            small_world.seed,
        )
        assert set(entry["digests"]) == set(FAMILIES)
        for name, family in FAMILIES.items():
            rendered = family.render(family.run(small_world))
            assert _digest(rendered) == entry["digests"][name], (
                f"{name} drifted from its golden; regenerate with "
                "scripts/update_goldens.py if intended"
            )

    def test_rsrov_invariants(self, small_world):
        result = FAMILIES["rsrov"].run(small_world)
        assert result["members"] <= 16
        configs = result["configs"]
        assert set(configs) == {"transparent", "irr", "irr+rov"}
        # Transparent reflects everything; filtering only removes routes.
        assert configs["transparent"]["accepted"] == result["announcements"]
        assert configs["irr"]["accepted"] <= configs["transparent"]["accepted"]
        # The rov stage can only shrink the invalid-accepted count.
        assert (
            configs["irr+rov"]["invalid_accepted"]
            <= configs["irr"]["invalid_accepted"]
        )
        assert configs["irr+rov"]["invalid_accepted"] == 0

    def test_rsrov_member_panel_override(self, small_world):
        result = FAMILIES["rsrov"].run(small_world, max_members=4)
        assert result["members"] == 4

    def test_cexp_reports_precision_and_recall(self, small_world):
        result = FAMILIES["cexp"].run(small_world)
        assert result["results"]
        for row in result["results"].values():
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0
            assert row["tp"] + row["fp"] + row["fn"] + row["tn"] > 0
            assert row["fp_provider_filtered"] <= row["fp"]

    def test_roastorm_waves_accumulate(self, small_world):
        result = FAMILIES["roastorm"].run(small_world)
        waves = result["waves"]
        assert [row["label"] for row in waves] == [
            "baseline",
            "mis-issued",
            "as0-campaign",
            "expiry-storm",
        ]
        assert waves[0]["events"] == 0 and waves[0]["flips"] == 0
        assert result["events_total"] == sum(row["events"] for row in waves)
        # Mis-issuance and AS0 waves can only add invalids.
        assert waves[1]["invalid"] >= waves[0]["invalid"]
        assert waves[2]["invalid"] >= waves[1]["invalid"]
        assert any(row["flips"] > 0 for row in waves[1:])

    def test_martian_reach_and_sav(self, small_world):
        result = FAMILIES["martian"].run(small_world)
        for row in result["reach"].values():
            assert 0.0 <= row["mean"] <= row["max"] <= 1.0
            assert row["n"] > 0
        sav = result["sav"]
        assert 0 < sav["tested"] < len(small_world.topology.asns)
        assert 0.0 <= sav["overall"] <= 1.0
        action2 = result["action2"]
        assert (
            action2["members_conformant"]
            <= action2["members_with_evidence"]
            <= sav["members_tested"]
        )
