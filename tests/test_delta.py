"""The delta layer: cover sets, event replay, and the replay==rebuild gate.

The central invariant — applying an event stream incrementally through
:class:`~repro.delta.live.LiveWorld` produces a world digest-identical
to rebuilding everything cold from the mutated inputs — is pinned three
ways: a Hypothesis sweep over random event sequences (with shrinking),
an every-event-kind checkpoint walk under the pure-Python kernels, and a
committed golden replay digest on the shared ``small_world``.  The cover
set that makes the incremental path cheap is property-tested against a
brute-force containment scan in both kernel modes.

The satellites ride along: the ``repro.perf`` removal-window guards, the
tampered year-snapshot counter, ``repro bench trend`` exit codes, and
the serving layer's ``at=`` live-world hook.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import obs
from repro.config import RuntimeConfig, use
from repro.datasets.checkpoint import (
    CheckpointStore,
    checkpoint_key,
    dataset_digests,
    world_digest,
)
from repro.delta import (
    EVENT_KINDS,
    LiveWorld,
    RoaExpired,
    RouteCoverIndex,
    cold_rebuild,
    synthesize_events,
    vrp_churn,
    vrp_delta,
)
from repro.errors import DeltaError
from repro.net.prefix import Prefix
from repro.registry.rir import RIR
from repro.rpki.roa import ROA, VRP
from repro.rpki.rov import ROVValidator
from repro.scenario.build import build_world

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
GOLDEN_PATH = Path(__file__).parent / "goldens" / "replay_digests.json"


@lru_cache(maxsize=1)
def delta_world():
    """A tiny world shared by the replay tests (built at most once)."""
    return build_world(scale=0.05, seed=3)


def kernel_modes():
    return ("numpy", "python")


# -- cover sets vs brute force (satellite 1) ---------------------------------

prefix_v4 = st.builds(
    lambda value, length: Prefix.from_host(value, length, 4),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=28),
)
prefix_v6 = st.builds(
    lambda value, length: Prefix.from_host(value, length, 6),
    st.integers(min_value=0, max_value=2**128 - 1),
    st.integers(min_value=0, max_value=64),
)
prefix_strategy = st.one_of(prefix_v4, prefix_v6)
route_strategy = st.tuples(
    prefix_strategy, st.integers(min_value=1, max_value=64_511)
)


def brute_force_cover(routes, changed):
    return sorted(
        {
            index
            for index, (prefix, _) in enumerate(routes)
            for cover in changed
            if cover.contains(prefix)
        }
    )


@given(
    routes=st.lists(route_strategy, min_size=0, max_size=40),
    changed=st.lists(prefix_strategy, min_size=0, max_size=8),
)
def test_cover_index_matches_bruteforce_both_kernels(routes, changed):
    index = RouteCoverIndex(routes)
    expected = brute_force_cover(routes, changed)
    for mode in kernel_modes():
        with use(RuntimeConfig.resolve(kernels=mode)):
            assert index.affected(changed) == expected, mode


vrp_strategy = st.builds(
    lambda prefix, asn: VRP(
        prefix=prefix,
        asn=asn,
        max_length=prefix.length,
        trust_anchor=list(RIR)[0],
    ),
    prefix_v4,
    st.integers(min_value=0, max_value=9999),
)


@given(
    old=st.lists(vrp_strategy, min_size=0, max_size=12),
    new=st.lists(vrp_strategy, min_size=0, max_size=12),
    routes=st.lists(route_strategy, min_size=1, max_size=30),
)
@settings(deadline=None)
def test_verdict_diff_is_within_cover_set(old, new, routes):
    """Full-revalidation diff (before vs after) ⊆ the radix cover set."""
    changed = vrp_delta(old, new)
    cover = set(RouteCoverIndex(routes).affected(changed))
    before = ROVValidator(old).validate_many(routes)
    after = ROVValidator(new).validate_many(routes)
    flipped = {
        index
        for index, route in enumerate(routes)
        if before[route] is not after[route]
    }
    assert flipped <= cover


def test_vrp_delta_is_multiset_and_order_blind():
    prefix = Prefix.parse("10.0.0.0/8")
    other = Prefix.parse("192.168.0.0/16")
    a = VRP(prefix, 1, 8, list(RIR)[0])
    b = VRP(other, 2, 16, list(RIR)[0])
    assert vrp_delta([a, b], [b, a]) == set()
    assert vrp_delta([a, a, b], [a, b]) == {prefix}
    assert vrp_churn([a, a, b], [a, b]) == (0, 1)
    assert vrp_churn([a], [a, b, b]) == (2, 0)


# -- replay == rebuild (the tentpole invariant) ------------------------------


@given(
    kinds=st.lists(st.sampled_from(EVENT_KINDS), min_size=1, max_size=5),
    salt=st.integers(min_value=0, max_value=2**16),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_replay_digest_equals_cold_rebuild(kinds, salt):
    world = delta_world()
    events = synthesize_events(world, kinds=kinds, seed=salt)
    live = LiveWorld(world)
    for event in events:
        live.apply(event)
    assert dataset_digests(live.world()) == dataset_digests(
        cold_rebuild(world, events)
    )


def test_every_event_kind_checkpoints_equal_python_kernels():
    """One event of each kind, digest-checked at every instant, with the
    pure-Python kernels driving validation, propagation and hegemony."""
    world = delta_world()
    with use(RuntimeConfig.resolve(kernels="python")):
        events = synthesize_events(world, kinds=list(EVENT_KINDS), seed=13)
        live = LiveWorld(world)
        for applied, event in enumerate(events, start=1):
            live.apply(event)
            assert dataset_digests(live.world()) == dataset_digests(
                cold_rebuild(world, events[:applied])
            ), f"diverged after {applied} events ({type(event).__name__})"


def test_live_world_at_instant_zero_is_the_base():
    world = delta_world()
    live = LiveWorld(world)
    assert live.world() is world
    assert live.events_applied == 0


def test_live_world_caches_between_events():
    world = delta_world()
    events = synthesize_events(world, kinds=["RoaIssued"], seed=1)
    live = LiveWorld(world)
    live.apply(events[0])
    first = live.world()
    assert live.world() is first
    assert live.events_applied == 1


def test_inapplicable_event_raises_delta_error():
    world = delta_world()
    stranger = ROA(
        prefix=Prefix.parse("203.0.113.0/24"),
        asn=64_500,
        max_length=24,
        certificate_id="TA-RIPE",
        not_before=world.snapshot_date,
        not_after=world.snapshot_date,
    )
    with pytest.raises(DeltaError):
        LiveWorld(world).apply(RoaExpired(roa=stranger))


def test_synthesize_events_is_deterministic():
    world = delta_world()
    first = synthesize_events(world, n=8, seed=5)
    second = synthesize_events(world, n=8, seed=5)
    assert first == second
    assert synthesize_events(world, n=8, seed=6) != first
    with pytest.raises(ValueError):
        synthesize_events(world, n=3, kinds=["RoaIssued"])


# -- replayed-instant golden (rides with the digest goldens) -----------------


def test_replay_golden_matches(small_world):
    golden = json.loads(GOLDEN_PATH.read_text())["entry"]
    assert (golden["scale"], golden["seed"]) == (
        small_world.scale,
        small_world.seed,
    )
    events = synthesize_events(
        small_world, n=golden["events"], seed=golden["event_seed"]
    )
    live = LiveWorld(small_world)
    checkpoints = {
        point["applied"]: point["world_digest"]
        for point in golden["checkpoints"]
    }
    for applied, event in enumerate(events, start=1):
        live.apply(event)
        expected = checkpoints.get(applied)
        if expected is None:
            continue
        assert world_digest(live.world()) == expected, (
            f"replayed digest drifted after {applied} events; if intended, "
            "regenerate with scripts/update_goldens.py and justify it"
        )


def test_replay_golden_file_shape():
    golden = json.loads(GOLDEN_PATH.read_text())["entry"]
    assert set(golden) == {
        "scale",
        "seed",
        "event_seed",
        "events",
        "checkpoints",
    }
    assert golden["checkpoints"], "golden pins at least one instant"
    for point in golden["checkpoints"]:
        assert set(point) == {"applied", "world_digest"}
        assert 1 <= point["applied"] <= golden["events"]
        assert len(point["world_digest"]) == 64


# -- repro.perf is gone (removal window closed) ------------------------------


def test_perf_shim_is_removed():
    assert not (SRC / "repro" / "perf.py").exists()
    result = subprocess.run(
        [sys.executable, "-c", "import repro.perf"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode != 0
    assert "ModuleNotFoundError" in result.stderr


# -- tampered year snapshots are counted (satellite 4) -----------------------


def test_tampered_year_sidecar_counts_as_corrupt(tmp_path, small_world):
    from repro.scenario.timeline import Timeline

    store = CheckpointStore(tmp_path)
    first = Timeline(small_world, store=store)
    year = first.years[0]
    fresh = first.rov_at(year)
    key = checkpoint_key(
        small_world.config, small_world.scale, small_world.seed
    )
    path = store.year_path(key, year)
    assert path.is_file()
    path.write_text(path.read_text() + "# tampered\n")

    before = obs.counters().get("timeline.rov_years_corrupt", 0)
    second = Timeline(small_world, store=store)
    recovered = second.rov_at(year)
    after = obs.counters().get("timeline.rov_years_corrupt", 0)
    assert after == before + 1, "tampered snapshot must be counted"
    vrp_key = lambda v: (v.prefix, v.asn, v.max_length)  # noqa: E731
    assert sorted(recovered.all_vrps(), key=vrp_key) == sorted(
        fresh.all_vrps(), key=vrp_key
    )
    # The corrupt file is unlinked, then re-validation re-saves a clean
    # snapshot at the same path: it must verify on the next load.
    assert path.is_file()
    assert "# tampered" not in path.read_text()
    assert store.load_year_vrps(key, year, strict=True) is not None


def test_year_validators_seed_from_neighbours(small_world):
    # The memo-carrying path only matters (and only fills) under the
    # pure-Python kernels: the numpy path answers coverage from a
    # rebuilt interval index and never touches the per-prefix memo.
    from repro.scenario.timeline import Timeline

    before = obs.counters().get("timeline.rov_verdicts_carried", 0)
    with use(RuntimeConfig.resolve(kernels="python")):
        Timeline(small_world).saturation_series()
    after = obs.counters().get("timeline.rov_verdicts_carried", 0)
    assert after > before, "adjacent years should carry verdicts over"


# -- repro bench trend (satellite 5) -----------------------------------------


class TestBenchTrend:
    def _main(self, tmp_path, *argv):
        from repro.cli import main

        return main(["--cache-dir", str(tmp_path), "bench", "trend", *argv])

    def test_empty_ledger_exits_2(self, tmp_path, capsys):
        assert self._main(tmp_path) == 2
        assert "no recorded runs" in capsys.readouterr().err

    def test_corrupt_ledger_exits_2(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir(parents=True)
        (bench_dir / "ledger.jsonl").write_text(
            'not json at all\n{"event": "run", "label": "x", "sha256": "0"}\n'
        )
        assert self._main(tmp_path) == 2
        assert "no recorded runs" in capsys.readouterr().err

    def test_series_over_runs(self, tmp_path, capsys):
        from repro.bench import BenchLedger

        ledger = BenchLedger(tmp_path / "bench")
        ledger.append(
            "run",
            "pr7",
            payload={"benchmarks": {"build_world": {"min": 2.0}}},
        )
        ledger.append(
            "run",
            "pr8",
            payload={
                "benchmarks": {
                    "build_world": {"min": 1.5},
                    "delta_apply": {"min": 0.1},
                }
            },
        )
        assert self._main(tmp_path) == 0
        out = capsys.readouterr().out
        assert "build_world" in out and "pr7" in out and "pr8" in out

        assert self._main(tmp_path, "--json") == 0
        trend = json.loads(capsys.readouterr().out)
        assert trend["labels"] == ["pr7", "pr8"]
        assert trend["metrics"]["build_world"] == [2.0, 1.5]
        assert trend["metrics"]["delta_apply"] == [None, 0.1]


# -- serving a live world at an instant (tentpole surface) -------------------


class RecordingAtBuilder:
    """Injectable ``build_at_fn``: records (job_id, at) per call."""

    def __init__(self):
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, job, at):
        with self._lock:
            self.calls.append((job.job_id, at))
        name = job.experiments[0]
        return {
            name: {"text": f"{name} at={at}", "sha256": "0" * 64}
        }


class TestServeAt:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        obs.reset()
        yield
        obs.reset()

    def test_result_key_changes_only_when_at_is_set(self):
        from repro.serve import result_key

        plain = result_key("fig2", 0.1, 3, {})
        assert result_key("fig2", 0.1, 3, {}, at=None) == plain
        dated = result_key("fig2", 0.1, 3, {}, at="2023-01-01")
        assert dated != plain
        assert result_key("fig2", 0.1, 3, {}, at="2023-06-01") != dated

    def test_at_routes_to_live_world_builder(self, tmp_path):
        from repro.serve import ReproService, http_get

        from tests.test_serve import CountingBuilder

        plain_builder = CountingBuilder()
        at_builder = RecordingAtBuilder()

        async def scenario():
            service = ReproService(
                store=CheckpointStore(tmp_path),
                build_fn=plain_builder,
                build_at_fn=at_builder,
                executor=ThreadPoolExecutor(max_workers=2),
            )
            await service.start(port=0)
            try:
                target = "/experiments/fig2?scale=0.1&seed=3&at=2023-01-01"
                status, headers, body = await http_get(
                    "127.0.0.1", service.port, target
                )
                assert status == 200
                payload = json.loads(body)
                # Same instant again: served from cache, no second build.
                status2, headers2, _body2 = await http_get(
                    "127.0.0.1", service.port, target
                )
                assert status2 == 200
                assert headers2["x-repro-key"] == headers["x-repro-key"]
                # A dateless request is a different key and a different
                # builder (the plain run_job path).
                status3, headers3, _body3 = await http_get(
                    "127.0.0.1",
                    service.port,
                    "/experiments/fig2?scale=0.1&seed=3",
                )
                assert status3 == 200
                assert headers3["x-repro-key"] != headers["x-repro-key"]
                status4, _headers4, body4 = await http_get(
                    "127.0.0.1",
                    service.port,
                    "/experiments/fig2?scale=0.1&seed=3&at=yesterday",
                )
                return payload, status4, body4
            finally:
                await service.stop()

        payload, bad_status, bad_body = asyncio.run(scenario())
        assert payload["at"] == "2023-01-01"
        assert payload["result"]["text"] == "fig2 at=2023-01-01"
        assert [at for _, at in at_builder.calls] == ["2023-01-01"]
        assert len(plain_builder.calls) == 1
        assert bad_status == 400
        assert b"bad at date" in bad_body
