"""Tests for the sweep orchestrator: spec, ledger, scheduler, recovery.

The scheduler tests run real (tiny, scale-0.05) worlds through real
worker processes, with the ``REPRO_SWEEP_FAIL_JOBS`` hook injecting
deterministic failures, hangs and crashes.  A module-scoped checkpoint
store is shared by every test so each distinct (config, scale, seed)
world is built exactly once and warm-started everywhere else.
"""

from __future__ import annotations

import json
from datetime import date

import pytest

from repro import obs
from repro.experiments.registry import REGISTRY
from repro.sweep import (
    Job,
    RunLedger,
    SweepSpec,
    SweepSpecError,
    aggregate,
    apply_overrides,
    job_id_for,
    render_report,
    render_status,
    run_job,
    run_sweep,
)
from repro.sweep.ledger import LEDGER_FILE
from repro.sweep.worker import _parse_fault_spec

SCALE = 0.05


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One checkpoint-store root for every test in this module."""
    return tmp_path_factory.mktemp("sweep-shared-cache")


@pytest.fixture
def cache_env(shared_cache, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(shared_cache))
    monkeypatch.delenv("REPRO_SWEEP_FAIL_JOBS", raising=False)
    return shared_cache


def grid_spec(**kwargs) -> SweepSpec:
    """The canonical 12-job test grid: 2 seeds × 2 scenarios × 3 subsets."""
    data = {
        "name": "grid",
        "timeout": 120,
        "max_attempts": 2,
        "backoff": 0.0,
        "axes": {
            "scale": [SCALE],
            "seed": [1, 2],
            "scenario": [
                {"label": "baseline"},
                {
                    "label": "no-deagg",
                    "overrides": {
                        "origination.deaggregation_probability": 0.0
                    },
                },
            ],
            "experiments": [["fig4"], ["f70"], ["fig2"]],
        },
    }
    data.update(kwargs)
    return SweepSpec.from_mapping(data)


class TestApplyOverrides:
    def test_dotted_dataclass_path(self):
        config = apply_overrides(
            {"origination.deaggregation_probability": 0.5}
        )
        assert config.origination.deaggregation_probability == 0.5

    def test_dict_key_path(self):
        config = apply_overrides(
            {"origination.legacy_probability.ARIN": 0.0}
        )
        assert config.origination.legacy_probability["ARIN"] == 0.0

    def test_date_coercion(self):
        config = apply_overrides({"snapshot_date": "2021-05-01"})
        assert config.snapshot_date == date(2021, 5, 1)

    def test_tuple_coercion(self):
        weights = [0.1] * 8
        config = apply_overrides(
            {"member_adoption_weights": weights}
        )
        assert config.member_adoption_weights == tuple(weights)

    def test_frozen_parent_is_rebuilt(self):
        config = apply_overrides(
            {"behavior.cdn_member_registration.rpki_all": 0.5}
        )
        assert config.behavior.cdn_member_registration.rpki_all == 0.5
        # The default instance is shared; it must not be mutated.
        assert apply_overrides({}).behavior.cdn_member_registration.rpki_all != 0.5

    def test_unknown_field_lists_location(self):
        with pytest.raises(SweepSpecError, match="no field 'nope'"):
            apply_overrides({"origination.nope": 1})

    def test_unknown_dict_key_lists_valid(self):
        with pytest.raises(SweepSpecError, match="ARIN"):
            apply_overrides({"origination.legacy_probability.XXRIR": 0.0})

    def test_type_mismatch_rejected(self):
        with pytest.raises(SweepSpecError, match="expected"):
            apply_overrides({"origination.deaggregation_probability": "lots"})

    def test_defaults_untouched(self):
        apply_overrides({"origination.deaggregation_probability": 0.99})
        assert apply_overrides({}).origination.deaggregation_probability != 0.99


class TestSpecExpansion:
    def test_grid_size_and_determinism(self):
        first, second = grid_spec().expand(), grid_spec().expand()
        assert len(first) == 12
        assert [job.job_id for job in first] == [job.job_id for job in second]

    def test_job_ids_ignore_labels(self):
        relabelled = grid_spec()
        relabelled.scenarios = tuple(
            (f"renamed-{i}", overrides)
            for i, (_, overrides) in enumerate(relabelled.scenarios)
        )
        assert [job.job_id for job in relabelled.expand()] == [
            job.job_id for job in grid_spec().expand()
        ]

    def test_job_ids_depend_on_content(self):
        base = job_id_for({}, 0.05, 1, ("fig4",))
        assert job_id_for({}, 0.05, 2, ("fig4",)) != base
        assert job_id_for({}, 0.1, 1, ("fig4",)) != base
        assert job_id_for({}, 0.05, 1, ("f70",)) != base
        assert job_id_for({"snapshot_date": "2021-05-01"}, 0.05, 1, ("fig4",)) != base

    def test_duplicate_jobs_deduplicated(self):
        spec = grid_spec()
        spec.extra = (spec.expand()[0],)
        assert len(spec.expand()) == 12

    def test_unknown_experiment_names_valid_choices(self):
        with pytest.raises(SweepSpecError, match="fig2"):
            SweepSpec.from_mapping(
                {"axes": {"experiments": ["fig99"]}}
            )

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(SweepSpecError, match="axes"):
            SweepSpec.from_mapping({"axis": {}})

    def test_flat_experiments_is_one_subset(self):
        spec = SweepSpec.from_mapping(
            {"axes": {"experiments": ["fig4", "f70"]}}
        )
        assert spec.experiment_sets == (("fig4", "f70"),)

    def test_sweep_id_ignores_runtime_policy(self):
        assert (
            grid_spec(workers=1, timeout=5).sweep_id
            == grid_spec(workers=8, timeout=600, max_attempts=5).sweep_id
        )

    def test_sweep_id_tracks_jobs(self):
        other = grid_spec()
        other.seeds = (1, 2, 3)
        assert other.sweep_id != grid_spec().sweep_id

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            SweepSpec.from_file(path)

    def test_bad_override_fails_at_parse_time(self):
        with pytest.raises(SweepSpecError, match="no field"):
            SweepSpec.from_mapping(
                {
                    "axes": {
                        "scenario": [
                            {"label": "x", "overrides": {"frobnicate": 1}}
                        ]
                    }
                }
            )


class TestFaultSpecParsing:
    def test_modes_and_counts(self):
        assert _parse_fault_spec("abc=fail,def=hang:2, ghi=crash ") == [
            ("abc", "fail", 1 << 30),
            ("def", "hang", 2),
            ("ghi", "crash", 1 << 30),
        ]

    def test_garbage_ignored(self):
        assert _parse_fault_spec("abc,x=explode,y=fail:many,,=fail") == [
            ("", "fail", 1 << 30)
        ]


class TestLedger:
    def spec_and_jobs(self):
        spec = grid_spec()
        return spec, spec.expand()

    def test_round_trip_and_states(self, tmp_path):
        spec, jobs = self.spec_and_jobs()
        with RunLedger.open(tmp_path, spec, jobs) as ledger:
            ledger.append("start", "j1", 1)
            ledger.append("done", "j1", 1, duration=0.5, payload={"x": 1})
            ledger.append("start", "j2", 1)
            ledger.append("attempt_failed", "j2", 1, error="boom")
            ledger.append("start", "j2", 2)
            ledger.append("failed", "j2", 2, error="boom again")
            ledger.append("start", "j3", 1)
        states = ledger.job_states()
        assert states["j1"].status == "done"
        assert states["j1"].payload == {"x": 1}
        assert states["j2"].status == "failed"
        assert states["j2"].last_error == "boom again"
        # start without a terminal record: the run died mid-attempt.
        assert states["j3"].status == "pending"
        assert ledger.completed() == {"j1": {"x": 1}}
        assert ledger.manifest()["n_jobs"] == len(jobs)

    def test_tampered_line_dropped(self, tmp_path):
        spec, jobs = self.spec_and_jobs()
        with RunLedger.open(tmp_path, spec, jobs) as ledger:
            ledger.append("done", "j1", 1, payload={"x": 1})
            ledger.append("done", "j2", 1, payload={"x": 2})
        path = ledger.directory / LEDGER_FILE
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"x": 1', '"x": 111')
        path.write_text("\n".join(lines) + "\n")
        before = obs.counters().get("sweep.ledger.corrupt", 0)
        assert ledger.completed() == {"j2": {"x": 2}}
        assert obs.counters().get("sweep.ledger.corrupt", 0) == before + 1

    def test_truncated_tail_dropped(self, tmp_path):
        spec, jobs = self.spec_and_jobs()
        with RunLedger.open(tmp_path, spec, jobs) as ledger:
            ledger.append("done", "j1", 1, payload={"x": 1})
            ledger.append("done", "j2", 1, payload={"x": 2})
        path = ledger.directory / LEDGER_FILE
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # tear the last record
        assert ledger.completed() == {"j1": {"x": 1}}

    def test_foreign_manifest_rejected(self, tmp_path):
        spec, jobs = self.spec_and_jobs()
        RunLedger.open(tmp_path, spec, jobs)
        manifest = tmp_path / spec.sweep_id / "MANIFEST.json"
        data = json.loads(manifest.read_text())
        data["sweep_id"] = "0" * 64
        manifest.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="another sweep"):
            RunLedger.open(tmp_path, spec, jobs)


class TestRunJob:
    def test_payload_matches_standalone_experiment(self, cache_env):
        job = Job(
            job_id=job_id_for({}, SCALE, 1, ("fig4",)),
            scenario="baseline",
            overrides={},
            scale=SCALE,
            seed=1,
            experiments=("fig4",),
        )
        payload = run_job(job)
        from repro.experiments.common import world_cache

        spec = REGISTRY["fig4"]
        expected = spec.render(spec.run(world_cache(SCALE, 1)))
        assert payload["fig4"]["text"] == expected

    def test_empty_experiments_means_all(self):
        job = Job(
            job_id="x", scenario="baseline", overrides={},
            scale=SCALE, seed=1, experiments=(),
        )
        # Only check selection, not execution (running all 12 is slow).
        from repro.experiments.registry import select

        assert [s.name for s in select(job.experiments or None)] == list(REGISTRY)


class TestScheduler:
    def test_failures_retry_resume_and_byte_identity(
        self, cache_env, tmp_path, monkeypatch
    ):
        spec = grid_spec()
        jobs = spec.expand()
        ledger_root = tmp_path / "ledgers"
        # Two targeted faults: jobs[0] fails every attempt (terminal),
        # jobs[1] fails once and succeeds on retry.
        monkeypatch.setenv(
            "REPRO_SWEEP_FAIL_JOBS",
            f"{jobs[0].job_id}=fail,{jobs[1].job_id}=fail:1",
        )
        before = dict(obs.counters())
        outcome = run_sweep(spec, ledger_root, workers=2)
        counters = obs.counters()

        assert len(outcome.jobs) == 12
        assert set(outcome.failures) == {jobs[0].job_id}
        assert len(outcome.results) == 11
        assert outcome.retries >= 2
        assert not outcome.ok
        assert (
            counters.get("sweep.jobs.failed", 0)
            - before.get("sweep.jobs.failed", 0)
        ) == 1
        assert (
            counters.get("sweep.jobs.done", 0)
            - before.get("sweep.jobs.done", 0)
        ) == 11

        # Resume with the fault cleared: only the failed job re-runs.
        monkeypatch.delenv("REPRO_SWEEP_FAIL_JOBS")
        before = dict(obs.counters())
        resumed = run_sweep(spec, ledger_root, workers=2)
        counters = obs.counters()
        assert resumed.ok
        assert len(resumed.skipped) == 11
        assert (
            counters.get("sweep.jobs.skipped", 0)
            - before.get("sweep.jobs.skipped", 0)
        ) == 11
        assert (
            counters.get("sweep.jobs.done", 0)
            - before.get("sweep.jobs.done", 0)
        ) == 1
        assert len(resumed.results) == 12

        # Sweep payloads are byte-identical to standalone runs.
        for job in (jobs[0], jobs[1], jobs[6]):
            standalone = run_job(job)
            assert resumed.results[job.job_id] == standalone

        aggregated = aggregate(jobs, resumed.results)
        assert aggregated["missing"] == []
        assert set(aggregated["experiments"]) == {"fig4", "f70", "fig2"}
        for entry in aggregated["experiments"].values():
            assert len(entry["jobs"]) == 4  # 2 seeds × 2 scenarios
        report = render_report(aggregated)
        assert "fig4: 4 job(s)" in report

    def test_timeout_budget_enforced(self, cache_env, tmp_path, monkeypatch):
        spec = grid_spec(timeout=2, max_attempts=1)
        spec.seeds = (1,)
        spec.experiment_sets = (("fig4",),)
        jobs = spec.expand()
        assert len(jobs) == 2
        monkeypatch.setenv(
            "REPRO_SWEEP_FAIL_JOBS", f"{jobs[0].job_id}=hang"
        )
        outcome = run_sweep(spec, tmp_path / "ledgers", workers=2)
        assert set(outcome.failures) == {jobs[0].job_id}
        assert "budget" in outcome.failures[jobs[0].job_id]
        assert len(outcome.results) == 1

    def test_worker_crash_breaks_nothing_else(
        self, cache_env, tmp_path, monkeypatch
    ):
        spec = grid_spec(max_attempts=2)
        spec.seeds = (1,)
        spec.scenarios = (("baseline", {}),)
        spec.experiment_sets = (("fig4",), ("f70",), ("fig2",))
        jobs = spec.expand()
        assert len(jobs) == 3
        # Crash the LAST job: a pool break fails every in-flight attempt,
        # and the scheduler keeps up to workers*2 submitted — crashing an
        # earlier job would let whichever innocent neighbour happens to
        # share the window collect collateral "worker died" failures,
        # racing the rebuild timing.  With one worker executing FIFO, by
        # the time the final job crashes both earlier results are already
        # flushed to the result pipe (the executor drains it before
        # declaring the pool broken), so no innocent attempt is ever in
        # flight at either crash — the outcome is deterministic.
        monkeypatch.setenv(
            "REPRO_SWEEP_FAIL_JOBS", f"{jobs[2].job_id}=crash"
        )
        before = obs.counters().get("sweep.pool.rebuilt", 0)
        outcome = run_sweep(spec, tmp_path / "ledgers", workers=1)
        assert set(outcome.failures) == {jobs[2].job_id}
        assert "died" in outcome.failures[jobs[2].job_id]
        assert len(outcome.results) == 2
        assert obs.counters().get("sweep.pool.rebuilt", 0) > before

    def test_ledger_truncation_recovery(
        self, cache_env, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SWEEP_FAIL_JOBS", raising=False)
        spec = grid_spec()
        jobs = spec.expand()
        clean_root, kill_root = tmp_path / "clean", tmp_path / "killed"
        clean = run_sweep(spec, clean_root, workers=2)
        assert clean.ok

        killed = run_sweep(spec, kill_root, workers=2)
        assert killed.ok
        # Simulate a mid-run kill by tearing the ledger: drop the last
        # few lines (losing some done records, tearing one in half).
        path = killed.ledger_dir / LEDGER_FILE
        lines = path.read_text().splitlines(keepends=True)
        survivors = lines[: len(lines) // 2]
        path.write_text("".join(survivors) + lines[len(lines) // 2][:20])

        ledger = RunLedger(killed.ledger_dir)
        still_done = set(ledger.completed())
        assert 0 < len(still_done) < 12

        resumed = run_sweep(spec, kill_root, workers=2)
        assert resumed.ok
        assert set(resumed.skipped) == still_done
        assert len(resumed.results) == 12
        # The resumed run's payloads and aggregate equal the
        # uninterrupted run's, byte for byte per experiment.
        for job in jobs:
            assert resumed.results[job.job_id] == clean.results[job.job_id]
        assert aggregate(jobs, resumed.results) == aggregate(
            jobs, clean.results
        )

    def test_status_rendering(self, cache_env, tmp_path):
        spec = grid_spec()
        spec.seeds = (1,)
        spec.scenarios = (("baseline", {}),)
        spec.experiment_sets = (("fig4",),)
        jobs = spec.expand()
        outcome = run_sweep(spec, tmp_path / "ledgers", workers=1)
        assert outcome.ok
        ledger = RunLedger(outcome.ledger_dir)
        status = render_status(jobs, ledger.job_states())
        assert "done" in status
        assert "-- 1 done, 0 failed, 0 pending of 1 job(s)" in status
