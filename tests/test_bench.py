"""Tests for the benchmark ledger and the ``repro bench`` CLI verbs."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchLedger,
    compare_payloads,
    split_compare_problems,
)
from repro.cli import main


def payload_for(label: str, end_to_end: float = 1.0) -> dict:
    return {
        "label": label,
        "git_rev": "abc1234",
        "benchmarks": {
            "end_to_end": {"mean": end_to_end, "min": end_to_end, "rounds": 1}
        },
    }


class TestBenchLedger:
    def test_round_trip_and_ordering(self, tmp_path):
        ledger = BenchLedger(tmp_path)
        ledger.append("run", "a", payload=payload_for("a"))
        ledger.append("run", "b", payload=payload_for("b"))
        runs = ledger.runs()
        assert list(runs) == ["a", "b"]
        assert runs["a"]["payload"]["label"] == "a"

    def test_rerecording_a_label_keeps_the_latest(self, tmp_path):
        ledger = BenchLedger(tmp_path)
        ledger.append("run", "a", payload=payload_for("a", 1.0))
        ledger.append("run", "a", payload=payload_for("a", 2.0))
        assert len(ledger.records()) == 2
        assert ledger.runs()["a"]["payload"]["benchmarks"]["end_to_end"][
            "mean"
        ] == 2.0

    def test_corrupt_lines_are_dropped(self, tmp_path):
        ledger = BenchLedger(tmp_path)
        ledger.append("run", "good", payload=payload_for("good"))
        with ledger.path.open("a") as handle:
            handle.write("not json at all\n")
            record = json.loads(ledger.path.read_text().splitlines()[0])
            record["label"] = "tampered"  # digest no longer matches
            handle.write(json.dumps(record) + "\n")
        assert [r["label"] for r in ledger.records()] == ["good"]

    def test_baseline_marker_latest_wins(self, tmp_path):
        ledger = BenchLedger(tmp_path)
        assert ledger.baseline_label() is None
        ledger.append("run", "a", payload=payload_for("a"))
        ledger.append("run", "b", payload=payload_for("b"))
        ledger.append("baseline", "a")
        ledger.append("baseline", "b")
        assert ledger.baseline_label() == "b"

    def test_clean_keeps_most_recent_runs(self, tmp_path):
        ledger = BenchLedger(tmp_path)
        for label in ("a", "b", "c"):
            ledger.append("run", label, payload=payload_for(label))
        ledger.append("baseline", "a")
        dropped = ledger.clean(keep=2)
        assert dropped == ["a"]
        assert list(ledger.runs()) == ["b", "c"]
        # The baseline marker pointed at a dropped label and went with it.
        assert ledger.baseline_label() is None
        # Survivors still verify.
        assert len(ledger.records()) == 2


class TestComparePayloads:
    def test_clean_comparison_passes(self):
        assert compare_payloads(payload_for("x"), payload_for("y"), 0.25) == []

    def test_slowdown_past_threshold_flags(self):
        problems = compare_payloads(
            payload_for("x", 2.0), payload_for("y", 1.0), 0.25
        )
        assert len(problems) == 1
        assert "end_to_end" in problems[0]

    def test_digest_drift_flags(self):
        current = {
            "benchmarks": {},
            "scale_sweep": [
                {"scale": 0.5, "seed": 7, "world_digest": "aaa",
                 "digest_equal": True, "cold": {"seconds": 1.0}},
            ],
        }
        baseline = {
            "benchmarks": {},
            "scale_sweep": [
                {"scale": 0.5, "seed": 7, "world_digest": "bbb",
                 "digest_equal": True, "cold": {"seconds": 1.0}},
            ],
        }
        problems = compare_payloads(current, baseline, 0.25)
        assert any("digest drifted" in p for p in problems)


class TestSplitCompareProblems:
    """The digest/timing split behind ``--compare-mode digests``."""

    def _payloads(self):
        current = {
            "benchmarks": {
                "end_to_end": {"mean": 2.0, "min": 2.0, "rounds": 1}
            },
            "warm_start": {"digest_equal": False},
            "scale_sweep": [
                {"scale": 0.5, "seed": 7, "world_digest": "aaa",
                 "digest_equal": True, "cold": {"seconds": 5.0}},
            ],
        }
        baseline = {
            "benchmarks": {
                "end_to_end": {"mean": 1.0, "min": 1.0, "rounds": 1}
            },
            "scale_sweep": [
                {"scale": 0.5, "seed": 7, "world_digest": "bbb",
                 "digest_equal": True, "cold": {"seconds": 1.0}},
            ],
        }
        return current, baseline

    def test_classes_separated(self):
        current, baseline = self._payloads()
        digests, timings = split_compare_problems(current, baseline, 0.25)
        assert any("warm_start" in p for p in digests)
        assert any("digest drifted" in p for p in digests)
        assert all("digest" not in p for p in timings)
        assert any("end_to_end" in p for p in timings)
        assert any("cold build" in p for p in timings)

    def test_compare_payloads_is_the_union(self):
        current, baseline = self._payloads()
        digests, timings = split_compare_problems(current, baseline, 0.25)
        assert compare_payloads(current, baseline, 0.25) == digests + timings

    def test_clean_comparison_yields_two_empty_lists(self):
        assert split_compare_problems(
            payload_for("x"), payload_for("y"), 0.25
        ) == ([], [])


class TestBenchCli:
    def ingest(self, tmp_path, label, seconds=1.0):
        source = tmp_path / f"BENCH_{label}.json"
        source.write_text(json.dumps(payload_for(label, seconds)))
        return main(
            [
                "bench",
                "run",
                "--cache-dir",
                str(tmp_path / "store"),
                "--from-json",
                str(source),
            ]
        )

    def test_requires_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["bench", "list"]) == 2
        assert "no checkpoint store" in capsys.readouterr().err

    def test_run_from_json_then_list(self, tmp_path, capsys):
        assert self.ingest(tmp_path, "pr1") == 0
        assert main(
            ["bench", "list", "--cache-dir", str(tmp_path / "store")]
        ) == 0
        out = capsys.readouterr().out
        assert "pr1" in out and "abc1234" in out
        ledger = BenchLedger(tmp_path / "store" / "bench")
        assert list(ledger.runs()) == ["pr1"]

    def test_baseline_and_compare_flow(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.ingest(tmp_path, "fast", seconds=1.0)
        assert main(["bench", "baseline", "--cache-dir", store]) == 0
        # A clean follow-up run compares fine...
        self.ingest(tmp_path, "same", seconds=1.1)
        assert main(["bench", "compare", "--cache-dir", store]) == 0
        assert "ok" in capsys.readouterr().out
        # ...a regressed one exits 3 and names the benchmark.
        self.ingest(tmp_path, "slow", seconds=5.0)
        assert main(["bench", "compare", "--cache-dir", store]) == 3
        assert "end_to_end" in capsys.readouterr().err

    def test_compare_without_baseline_is_an_error(self, tmp_path, capsys):
        self.ingest(tmp_path, "pr1")
        code = main(
            ["bench", "compare", "--cache-dir", str(tmp_path / "store")]
        )
        assert code == 2
        assert "no baseline" in capsys.readouterr().err

    def test_clean_drops_old_runs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        for label in ("one", "two", "three"):
            self.ingest(tmp_path, label)
        assert main(
            ["bench", "clean", "--keep", "1", "--cache-dir", store]
        ) == 0
        assert "dropped 2" in capsys.readouterr().out
        ledger = BenchLedger(tmp_path / "store" / "bench")
        assert list(ledger.runs()) == ["three"]

    def test_baseline_unknown_label_errors(self, tmp_path, capsys):
        self.ingest(tmp_path, "pr1")
        code = main(
            [
                "bench",
                "baseline",
                "missing",
                "--cache-dir",
                str(tmp_path / "store"),
            ]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err
