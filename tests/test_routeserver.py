"""Tests for the IXP route server (MANRS IXP program extension)."""

from __future__ import annotations

from repro.bgp.announcement import Announcement
from repro.bgp.routeserver import RouteServer
from repro.irr.database import IRRDatabase
from repro.irr.objects import AsSetObject, RouteObject
from repro.net.prefix import Prefix
from repro.rpki.roa import RIR, VRP
from repro.rpki.rov import ROVValidator


def _p(text: str) -> Prefix:
    return Prefix.parse(text)


def make_registry() -> IRRDatabase:
    db = IRRDatabase("RADB")
    # member 10 with customer 20 via as-set
    db.add_as_set(AsSetObject("AS-10-CUSTOMERS", ("AS20",), "RADB"))
    db.add_route(RouteObject(_p("12.0.0.0/16"), 10, "RADB"))
    db.add_route(RouteObject(_p("31.5.0.0/18"), 20, "RADB"))
    # unrelated network 99
    db.add_route(RouteObject(_p("99.0.0.0/8"), 99, "RADB"))
    return db


class TestRouteServer:
    def setup_method(self):
        self.server = RouteServer(make_registry(), members=(10, 30))

    def test_member_own_route_accepted(self):
        verdict = self.server.evaluate(10, Announcement(_p("12.0.0.0/16"), 10))
        assert verdict.accepted

    def test_customer_route_via_as_set_accepted(self):
        verdict = self.server.evaluate(10, Announcement(_p("31.5.0.0/18"), 20))
        assert verdict.accepted

    def test_deaggregation_within_upto_accepted(self):
        verdict = self.server.evaluate(10, Announcement(_p("12.0.5.0/24"), 10))
        assert verdict.accepted

    def test_too_specific_rejected(self):
        verdict = self.server.evaluate(10, Announcement(_p("12.0.5.0/25"), 10))
        assert not verdict.accepted
        assert "not registered" in verdict.reason

    def test_foreign_origin_rejected(self):
        verdict = self.server.evaluate(10, Announcement(_p("99.0.0.0/8"), 99))
        assert not verdict.accepted
        assert "not in AS-10-CUSTOMERS" in verdict.reason

    def test_unregistered_prefix_rejected(self):
        verdict = self.server.evaluate(10, Announcement(_p("13.0.0.0/16"), 10))
        assert not verdict.accepted

    def test_non_member_rejected(self):
        verdict = self.server.evaluate(77, Announcement(_p("12.0.0.0/16"), 10))
        assert not verdict.accepted
        assert verdict.reason == "not a member"

    def test_member_without_as_set_uses_own_routes(self):
        # member 30 has no as-set and no routes: everything rejected
        verdict = self.server.evaluate(30, Announcement(_p("12.0.0.0/16"), 30))
        assert not verdict.accepted

    def test_batch_report(self):
        report = self.server.evaluate_batch(
            [
                (10, Announcement(_p("12.0.0.0/16"), 10)),
                (10, Announcement(_p("99.0.0.0/8"), 99)),
            ]
        )
        assert report.accepted == 1
        assert report.rejected == 1
        assert report.acceptance_rate == 0.5

    def test_empty_batch_rate(self):
        assert self.server.evaluate_batch([]).acceptance_rate == 1.0

    def test_filter_cached(self):
        first = self.server.filter_for(10)
        second = self.server.filter_for(10)
        assert first is second


class TestRouteServerROV:
    """The optional ROV stage added for the routeserver-ROV scenario."""

    def setup_method(self):
        self.rov = ROVValidator(
            [VRP(_p("12.0.0.0/16"), 10, 16, RIR.ARIN)]
        )
        self.server = RouteServer(
            make_registry(), members=(10, 30), rov=self.rov
        )

    def test_valid_route_passes_through_to_irr(self):
        verdict = self.server.evaluate(10, Announcement(_p("12.0.0.0/16"), 10))
        assert verdict.accepted
        assert verdict.reason == "registered"

    def test_invalid_asn_rejected_before_irr(self):
        # Forged origin under a covering ROA: rejected at the ROV stage,
        # never reaching the as-set check (whose reason would differ).
        verdict = self.server.evaluate(10, Announcement(_p("12.0.0.0/16"), 99))
        assert not verdict.accepted
        assert verdict.reason == "RPKI invalid_asn"

    def test_invalid_length_rejected_despite_upto_allowance(self):
        # The IRR filter's upto allowance would admit the /24; the ROA's
        # maxLength of /16 rejects it first.
        verdict = self.server.evaluate(10, Announcement(_p("12.0.5.0/24"), 10))
        assert not verdict.accepted
        assert verdict.reason == "RPKI invalid_length"

    def test_not_found_falls_through_to_irr(self):
        # No covering VRP: ROV abstains, the IRR verdict decides.
        verdict = self.server.evaluate(10, Announcement(_p("13.0.0.0/16"), 10))
        assert not verdict.accepted
        assert "not registered" in verdict.reason

    def test_membership_checked_before_rov(self):
        verdict = self.server.evaluate(77, Announcement(_p("12.0.0.0/16"), 99))
        assert verdict.reason == "not a member"

    def test_default_rov_none_matches_historical_behaviour(self):
        plain = RouteServer(make_registry(), members=(10, 30))
        hijack = Announcement(_p("12.0.0.0/16"), 99)
        verdict = plain.evaluate(10, hijack)
        assert not verdict.accepted
        assert verdict.reason.startswith("origin AS99")


class TestTransparentRouteServer:
    """``irr_filtering=False``: the pre-filtering baseline."""

    def test_members_reflected_unfiltered(self):
        server = RouteServer(
            make_registry(), members=(10, 30), irr_filtering=False
        )
        # Even an unregistered prefix with a foreign origin goes through.
        verdict = server.evaluate(10, Announcement(_p("99.0.0.0/8"), 99))
        assert verdict.accepted
        assert verdict.reason == "transparent"

    def test_non_members_still_rejected(self):
        server = RouteServer(
            make_registry(), members=(10, 30), irr_filtering=False
        )
        verdict = server.evaluate(77, Announcement(_p("12.0.0.0/16"), 10))
        assert not verdict.accepted
        assert verdict.reason == "not a member"

    def test_rov_applies_even_when_transparent(self):
        rov = ROVValidator([VRP(_p("12.0.0.0/16"), 10, 16, RIR.ARIN)])
        server = RouteServer(
            make_registry(), members=(10, 30), rov=rov, irr_filtering=False
        )
        hijack = server.evaluate(10, Announcement(_p("12.0.0.0/16"), 99))
        assert not hijack.accepted
        assert hijack.reason == "RPKI invalid_asn"
        legit = server.evaluate(10, Announcement(_p("12.0.0.0/16"), 10))
        assert legit.accepted
        assert legit.reason == "transparent"


class TestRouteServerOnWorld:
    def test_world_members_mostly_accepted(self, small_world):
        """Members' real announcements pass the route-server filters at a
        high rate — the leaks are exactly the unregistered prefixes the
        Action 4 analysis flags."""
        radb = small_world.irr.database("RADB")
        members = tuple(
            asn
            for asn in small_world.topology.asns
            if radb.as_set(f"AS-{asn}-CUSTOMERS") is not None
        )[:10]
        server = RouteServer(small_world.irr, members=members)
        batch = [
            (member, Announcement(origination.prefix, member))
            for member in members
            for origination in small_world.originations.get(member, ())
        ]
        assert batch
        report = server.evaluate_batch(batch)
        assert report.acceptance_rate > 0.5
        # rejected ones are genuinely unregistered or deaggregated beyond
        # the allowance
        for verdict in report.verdicts:
            if not verdict.accepted:
                assert "not registered" in verdict.reason or (
                    "not in" in verdict.reason
                )
