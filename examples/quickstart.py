#!/usr/bin/env python3
"""Quickstart: build a synthetic Internet and measure its MANRS ecosystem.

Builds a small world (about a thousand ASes), runs the paper's full
measurement methodology over it, and prints the ecosystem report —
participation, Action 4 and Action 1 conformance, and impact metrics.

Usage::

    python examples/quickstart.py [scale] [seed]

``scale`` (default 0.2) multiplies the world size; 1.0 reproduces the
paper-shaped ~10k-AS world used by the benchmarks.
"""

from __future__ import annotations

import sys
import time

from repro.core import build_report, render_report
from repro.scenario import build_world


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    print(f"Building world (scale={scale}, seed={seed})...")
    started = time.perf_counter()
    world = build_world(scale=scale, seed=seed)
    elapsed = time.perf_counter() - started
    print(
        f"  {len(world.topology)} ASes, {world.all_announcements()} announced "
        f"prefixes, {len(world.rov)} VRPs, {world.irr.route_count} IRR route "
        f"objects ({elapsed:.1f}s)"
    )
    print()
    print(render_report(build_report(world)))


if __name__ == "__main__":
    main()
