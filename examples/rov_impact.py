#!/usr/bin/env python3
"""Why MANRS actions matter: origin hijacks vs ROV deployment.

§2.1 of the paper motivates MANRS with BGP origin hijacks.  This example
closes the loop: it launches exact-prefix and sub-prefix hijacks against a
victim in the synthetic Internet and measures how much of the Internet the
attacker captures, sweeping ROV deployment among large transit ASes from
0% to 100% — with and without the victim registering a ROA (Action 4).

The punchline matches the ecosystem's logic: ROV only helps victims who
registered; registration only helps when transit networks filter.

Usage::

    python examples/rov_impact.py [scale] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bgp.announcement import Announcement
from repro.bgp.hijack import HijackKind, simulate_hijack
from repro.bgp.policy import ASPolicy, RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.scenario import build_world
from repro.topology.classify import SizeClass


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    world = build_world(scale=scale, seed=seed)
    rng = np.random.default_rng(seed)

    stubs = [
        asn
        for asn, size in world.size_of.items()
        if size is SizeClass.SMALL and world.originations.get(asn)
    ]
    victim_asn, attacker_asn = (int(a) for a in rng.choice(stubs, 2, replace=False))
    victim_prefix = world.originations[victim_asn][0].prefix
    victim = Announcement(victim_prefix, victim_asn)
    larges = sorted(
        (asn for asn, size in world.size_of.items() if size is SizeClass.LARGE),
        key=lambda a: -len(world.topology.customer_cone(a)),
    )

    print(
        f"victim AS{victim_asn} announcing {victim_prefix}; "
        f"attacker AS{attacker_asn}; {len(larges)} large transits"
    )
    print()
    header = f"{'ROV larges':>10}  {'exact, no ROA':>13}  {'exact, ROA':>10}  {'sub-prefix, ROA':>15}"
    print(header)
    for deployed_fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        n_deployed = round(deployed_fraction * len(larges))
        policies = {
            asn: ASPolicy(rov=True) for asn in larges[:n_deployed]
        }
        engine = PropagationEngine(world.topology, policies)
        no_roa = simulate_hijack(
            engine, victim, attacker_asn, world.vantage_points
        )
        with_roa = simulate_hijack(
            engine,
            victim,
            attacker_asn,
            world.vantage_points,
            hijack_route_class=RouteClass(rpki_invalid=True),
        )
        sub_prefix = simulate_hijack(
            engine,
            victim,
            attacker_asn,
            world.vantage_points,
            kind=HijackKind.SUB_PREFIX,
            hijack_route_class=RouteClass(rpki_invalid=True),
        )
        print(
            f"{n_deployed:>10}  "
            f"{100 * no_roa.capture_fraction:12.1f}%  "
            f"{100 * with_roa.capture_fraction:9.1f}%  "
            f"{100 * sub_prefix.capture_fraction:14.1f}%"
        )
    print()
    print(
        "Without a ROA the hijack is RPKI NotFound and ROV cannot help; "
        "with a ROA, rising deployment shrinks the capture — and even "
        "defeats the otherwise-always-winning sub-prefix attack."
    )


if __name__ == "__main__":
    main()
