#!/usr/bin/env python3
"""Operator-facing conformance audit — the "monthly MANRS report".

§10 of the paper reports that operators found ISOC's private conformance
reports short on actionable information.  This example shows what an
actionable report looks like: for each unconformant MANRS member
organisation, it lists every offending prefix-origin, what exactly is
wrong (RPKI Invalid?  stale IRR object?  registered nowhere?), whom the
conflicting registration points at, and the concrete fix.

Usage::

    python examples/manrs_audit.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro.core.classification import is_conformant
from repro.core.conformance import (
    is_action4_conformant,
    origination_stats,
)
from repro.irr.validation import IRRStatus
from repro.manrs.actions import Program, action4_threshold
from repro.rpki.rov import RPKIStatus
from repro.scenario import World, build_world


def audit_asn(world: World, asn: int) -> list[str]:
    """Per-prefix findings and remediation advice for one member AS."""
    lines: list[str] = []
    for record in world.ihr.records_of(asn):
        if is_conformant(record.rpki, record.irr):
            continue
        problem: str
        fix: str
        if record.rpki.is_invalid:
            conflicting = {
                vrp.asn
                for vrp in world.rov.covering_vrps(record.prefix)
                if vrp.asn != asn
            }
            problem = f"RPKI {record.rpki.value}"
            if 0 in conflicting:
                fix = "an AS0 ROA forbids this announcement; replace it"
            else:
                owners = ", ".join(f"AS{a}" for a in sorted(conflicting))
                fix = f"ROA authorises {owners or 'nothing'}; re-issue for AS{asn}"
        elif record.irr is IRRStatus.INVALID_ORIGIN:
            conflicting = {
                obj.origin
                for obj in world.irr.routes_covering(record.prefix)
                if obj.origin != asn
            }
            related = [
                a for a in conflicting if world.as2org.same_org(asn, a)
            ]
            problem = "stale IRR route object (RPKI NotFound)"
            if related:
                fix = (
                    f"route object names sibling AS{related[0]}; update the "
                    "origin or create a ROA"
                )
            else:
                owners = ", ".join(f"AS{a}" for a in sorted(conflicting))
                fix = f"route object names {owners}; update it or create a ROA"
        else:
            problem = "registered in neither IRR nor RPKI"
            fix = "create a route object or (preferably) a ROA"
        lines.append(f"      {record.prefix}: {problem} -> {fix}")
    return lines


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.35
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    world = build_world(scale=scale, seed=seed)
    stats = origination_stats(world.ihr)
    snapshot = world.snapshot_date

    print(f"MANRS conformance audit — snapshot {snapshot}")
    print("=" * 60)
    audited = 0
    for participant in world.manrs.participants:
        if participant.joined > snapshot:
            continue
        program = participant.program
        if program not in (Program.ISP, Program.CDN):
            continue
        bad_asns = [
            asn
            for asn in participant.asns
            if asn in stats
            and stats[asn].total > 0
            and not is_action4_conformant(stats[asn], program)
        ]
        if not bad_asns:
            continue
        audited += 1
        org = world.topology.get_org(participant.org_id)
        print()
        print(
            f"{org.name} ({participant.org_id}, {program.value.upper()} "
            f"program, joined {participant.joined})"
        )
        for asn in bad_asns:
            as_stats = stats[asn]
            print(
                f"   AS{asn}: {as_stats.og_conformant:.1f}% conformant "
                f"(needs {action4_threshold(program):.0f}%), "
                f"{as_stats.total} prefixes, "
                f"{as_stats.rpki_valid} RPKI-valid, "
                f"{as_stats.irr_valid} IRR-valid"
            )
            for line in audit_asn(world, asn):
                print(line)
    print()
    print(f"{audited} organisations need attention.")


if __name__ == "__main__":
    main()
