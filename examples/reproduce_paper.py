#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Builds the full-scale world and prints, in paper order, the series/rows
behind Figures 2, 4a/4b, 5a/5b, 6, 7a/7b, 8, 9 and Tables 1, 2, plus
Findings 7.0, 8.3/8.4 and 8.7.  Optionally exports every input dataset
(prefix2as, as2org, AS relationships, VRPs, IRR dumps, participant list)
to a directory.

Usage::

    python examples/reproduce_paper.py [scale] [seed] [--export DIR]
"""

from __future__ import annotations

import sys

from repro import experiments as ex
from repro.datasets import export_world
from repro.scenario import build_world


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    scale = float(args[0]) if args else 1.0
    seed = int(args[1]) if len(args) > 1 else 7
    export_dir = None
    if "--export" in sys.argv:
        export_dir = sys.argv[sys.argv.index("--export") + 1]

    print(f"Building world (scale={scale}, seed={seed})...", flush=True)
    world = build_world(scale=scale, seed=seed)
    print(f"  {len(world.topology)} ASes, {len(world.members())} MANRS members")
    print()

    sections = [
        ex.fig2_growth.render(ex.fig2_growth.run(world)),
        ex.fig4_participation.render(ex.fig4_participation.run(world)),
        ex.f70_completeness.render(ex.f70_completeness.run(world)),
        ex.fig5_origination.render(ex.fig5_origination.run(world)),
        ex.f83_action4.render(ex.f83_action4.run(world)),
        ex.tab1_casestudies.render(ex.tab1_casestudies.run(world)),
        ex.f87_stability.render(ex.f87_stability.run(world, seed=3)),
        ex.fig6_saturation.render(ex.fig6_saturation.run(world)),
        ex.fig7_filtering.render(ex.fig7_filtering.run(world)),
        ex.fig8_unconformant.render(ex.fig8_unconformant.run(world)),
        ex.tab2_action1.render(ex.tab2_action1.run(world)),
        ex.fig9_preference.render(ex.fig9_preference.run(world)),
        ex.ext_other_actions.render(ex.ext_other_actions.run(world)),
        ex.ablations.render_visibility_ablation(
            ex.ablations.visibility_ablation(world, fractions=(0.25, 1.0))
        ),
    ]
    for section in sections:
        print(section)
        print()

    if export_dir:
        path = export_world(world, export_dir)
        print(f"datasets exported to {path}/")


if __name__ == "__main__":
    main()
