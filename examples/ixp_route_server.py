#!/usr/bin/env python3
"""IXP route server: as-set-based ingress filtering (§2.2 / IXP program).

Builds a world, stands up a route server whose members are the transit
networks that publish customer as-sets, and replays every member's (and
its customers') announcements through the server's IRR-derived filters —
the workflow §2.2 attributes to IXPs and cloud providers, and the core of
the MANRS IXP program the paper leaves to future work.

Announcements rejected at the route server are precisely the
registration gaps the Action 4 analysis flags, which is the practical
incentive loop MANRS relies on: unregistered routes lose reachability.

Usage::

    python examples/ixp_route_server.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro.bgp.announcement import Announcement
from repro.bgp.routeserver import RouteServer
from repro.core.classification import is_conformant
from repro.scenario import build_world


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 9
    world = build_world(scale=scale, seed=seed)

    radb = world.irr.database("RADB")
    members = tuple(
        asn
        for asn in world.topology.asns
        if radb.as_set(f"AS-{asn}-CUSTOMERS") is not None
    )[:25]
    server = RouteServer(world.irr, members=members)

    batch = []
    for member in members:
        for origination in world.originations.get(member, ()):
            batch.append((member, Announcement(origination.prefix, member)))
        for customer in sorted(world.topology.customers_of(member))[:5]:
            for origination in world.originations.get(customer, ())[:2]:
                batch.append(
                    (member, Announcement(origination.prefix, customer))
                )
    report = server.evaluate_batch(batch)

    print(
        f"route server with {len(members)} members evaluated "
        f"{len(report.verdicts)} announcements"
    )
    print(
        f"accepted {report.accepted}, rejected {report.rejected} "
        f"({100 * report.acceptance_rate:.1f}% acceptance)"
    )
    print()
    print("sample rejections:")
    statuses = {
        (record.prefix, record.origin): (record.rpki, record.irr)
        for record in world.ihr.prefix_origins
    }
    shown = 0
    for verdict in report.verdicts:
        if verdict.accepted:
            continue
        key = (verdict.announcement.prefix, verdict.announcement.origin)
        conformant = (
            is_conformant(*statuses[key]) if key in statuses else None
        )
        print(
            f"  member AS{verdict.member}: {verdict.announcement} "
            f"-> {verdict.reason} "
            f"(Action 4 conformant: {conformant})"
        )
        shown += 1
        if shown == 10:
            break
    if shown == 0:
        print("  (none — every announcement was registered)")


if __name__ == "__main__":
    main()
