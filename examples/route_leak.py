#!/usr/bin/env python3
"""Route-leak impact: why Action 1 filtering matters beyond hijacks.

§1 motivates MANRS with accidental compromises too — the 2020 leak the
paper cites pulled a large share of the Internet through a small ISP.
This example picks mid-sized networks, has each leak its provider-learned
route to a popular origin (RFC 7908 type 1), and measures how much of the
collector's view gets pulled onto the leaked path — then repeats the leak
against providers that filter customer announcements against the IRR,
showing how Action 1 contains the blast radius.

Usage::

    python examples/route_leak.py [scale] [seed]
"""

from __future__ import annotations

import sys
from dataclasses import replace

import numpy as np

from repro.bgp.leak import simulate_leak
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine, RouteKind
from repro.errors import ReproError
from repro.scenario import build_world
from repro.topology.classify import SizeClass


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    world = build_world(scale=scale, seed=seed)
    rng = np.random.default_rng(seed)

    # A popular origin: the largest CDN by announced prefixes.
    origin = max(
        (asn for asn in world.topology.asns if world.originations.get(asn)),
        key=lambda a: len(world.originations[a]),
    )
    mediums = [
        asn for asn, size in world.size_of.items() if size is SizeClass.MEDIUM
    ]
    rng.shuffle(mediums)

    # Engine variant where every AS filters customer announcements fully:
    # a leaked IRR-invalid route gets dropped at the first filtered edge.
    filtering_policies = {
        asn: replace(
            policy,
            filter_customers_irr=True,
            filter_peers_irr=True,
            customer_filter_coverage=1.0,
        )
        for asn, policy in world.policies.items()
    }
    filtering_engine = PropagationEngine(world.topology, filtering_policies)

    print(f"leaking routes toward AS{origin} "
          f"({len(world.originations[origin])} prefixes)")
    print(f"{'leaker':>8}  {'affected (no filters)':>21}  {'affected (Action 1)':>19}")
    shown = 0
    for leaker in mediums:
        baseline = world.engine.propagate(origin, targets=[leaker])
        route = baseline.get(leaker)
        if route is None or route.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
            continue
        try:
            unfiltered = simulate_leak(
                world.engine, origin, leaker, world.vantage_points
            )
            # The leaked announcement does not match the leaker's IRR
            # objects, so Action 1 filters classify it IRR-invalid.
            filtered = simulate_leak(
                filtering_engine,
                origin,
                leaker,
                world.vantage_points,
                leak_route_class=RouteClass(irr_invalid=True),
            )
        except ReproError:
            continue
        if unfiltered.affected_fraction == 0.0:
            continue  # this leak loses best-path selection everywhere
        print(
            f"AS{leaker:>6}  {100 * unfiltered.affected_fraction:20.1f}%  "
            f"{100 * filtered.affected_fraction:18.1f}%"
        )
        shown += 1
        if shown == 8:
            break
    print()
    print(
        "Universal ingress filtering (Action 1 on customers plus the CDN "
        "program's peer filtering) treats the leaked announcement as "
        "IRR-invalid at every edge and contains the blast radius."
    )


if __name__ == "__main__":
    main()
