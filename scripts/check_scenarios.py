#!/usr/bin/env python
"""Scenario-pack smoke: every family, both kernel modes, golden digests.

Builds the pinned (scale, seed) world once per kernel mode
(``REPRO_KERNELS=python`` and ``=numpy``), runs every scenario family in
``repro.scenarios.FAMILIES`` on it, and fails unless each rendered
figure hashes to the digest committed in
``tests/goldens/scenario_digests.json`` — in *both* modes.  This is the
``make scenarios-smoke`` CI gate: it pins the families' output
byte-for-byte and proves they are kernel-independent in one pass.

Usage::

    PYTHONPATH=src python scripts/check_scenarios.py
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

GOLDENS_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "goldens"
    / "scenario_digests.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)

    from repro.scenario.build import _build_world
    from repro.scenarios import FAMILIES

    golden = json.loads(GOLDENS_PATH.read_text())["entry"]
    scale, seed = golden["scale"], golden["seed"]
    expected: dict[str, str] = golden["digests"]

    missing = set(FAMILIES) ^ set(expected)
    if missing:
        print(
            f"SCENARIO SMOKE FAIL: goldens and FAMILIES disagree on "
            f"{sorted(missing)} — rerun scripts/update_goldens.py",
            file=sys.stderr,
        )
        return 1

    failures = 0
    previous = os.environ.get("REPRO_KERNELS")
    try:
        for mode in ("python", "numpy"):
            os.environ["REPRO_KERNELS"] = mode
            start = time.perf_counter()
            world = _build_world(scale, seed, None, None, None, None)
            for name, family in FAMILIES.items():
                text = family.render(family.run(world))
                digest = hashlib.sha256(text.encode()).hexdigest()
                if digest != expected[name]:
                    failures += 1
                    print(
                        f"SCENARIO SMOKE FAIL [{mode}] {name}: "
                        f"digest {digest[:16]}… != golden "
                        f"{expected[name][:16]}…",
                        file=sys.stderr,
                    )
            print(
                f"{mode}: {len(FAMILIES)} families in "
                f"{time.perf_counter() - start:.2f}s",
                file=sys.stderr,
            )
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = previous

    if failures:
        return 1
    print(
        f"scenario smoke OK: {len(FAMILIES)} families golden-identical "
        f"in both kernel modes at scale {scale:g} seed {seed}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
