"""Shard-parity smoke: sharded builds and mapped loads change nothing.

Builds the same (scale, seed) world twice — once serially and once with
the build stages sharded across worker processes (``--shards``, fanned
over ``--jobs`` workers) — bypassing every cache, and fails unless the
two worlds hash to the same digest.  The sharded world is then pushed
through a checkpoint round-trip and re-opened both eagerly and as a
memory-mapped columnar world; all four digests must agree.  This is the
CI gate behind ``make scale-smoke``.

Usage::

    PYTHONPATH=src python scripts/check_shard_parity.py --scale 0.5 \
        --shards 2 --jobs 2
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.checkpoint import (  # noqa: E402
    CheckpointStore,
    world_digest,
)
from repro.scenario.build import _build_world  # noqa: E402
from repro.scenario.config import ScenarioConfig  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    digests: dict[str, str] = {}
    timings: dict[str, float] = {}

    start = time.perf_counter()
    serial = _build_world(args.scale, args.seed, None, None, None, None, 1)
    timings["serial"] = time.perf_counter() - start
    digests["serial"] = world_digest(serial)
    del serial

    start = time.perf_counter()
    sharded = _build_world(
        args.scale, args.seed, None, None, None, args.jobs, args.shards
    )
    timings["sharded"] = time.perf_counter() - start
    digests["sharded"] = world_digest(sharded)

    with tempfile.TemporaryDirectory(prefix="repro-shard-parity-") as tmp:
        store = CheckpointStore(tmp)
        store.save(sharded)
        del sharded
        for label, mode in (("mmap", "columnar"), ("eager", "eager")):
            start = time.perf_counter()
            world = store.load(
                ScenarioConfig(), args.scale, args.seed, mode=mode
            )
            timings[label] = time.perf_counter() - start
            if world is None:
                print(f"SHARD PARITY FAIL: {label} load missed", file=sys.stderr)
                return 1
            digests[label] = world_digest(world)
            del world

    for label in digests:
        print(
            f"{label}: {timings[label]:.3f}s digest={digests[label][:16]}…",
            file=sys.stderr,
        )
    if len(set(digests.values())) != 1:
        lines = "\n".join(f"  {k}: {v}" for k, v in digests.items())
        print(f"SHARD PARITY FAIL: digests diverge\n{lines}", file=sys.stderr)
        return 1
    print(
        f"shard parity OK at scale {args.scale} seed {args.seed} "
        f"({args.shards} shards, {args.jobs} jobs)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
