"""End-to-end smoke for the delta layer (the ``make delta-smoke`` gate).

Runs ``python -m repro replay`` as a real subprocess against a
throwaway cache directory: a short synthetic event trace is applied
through :class:`repro.delta.live.LiveWorld` and, at three instants, the
live world's digest is compared against a cold rebuild of the same
events.  The subprocess must exit 0 and print one verified ``ok`` line
per checkpoint — any digest divergence makes ``repro replay`` exit 1,
which fails the gate.  This is the one gate that exercises the event
synthesizer, the incremental apply path, the cold-rebuild reference and
the CLI verb together.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CHECKPOINT_LINE = re.compile(r"^checkpoint\s+(\d+)\s+[0-9a-f]{16}\s+ok$")


def fail(message: str) -> None:
    raise SystemExit(f"delta smoke FAILED: {message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--events", type=int, default=9)
    parser.add_argument("--checkpoints", type=int, default=3)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-delta-smoke-") as tmp:
        command = [
            sys.executable,
            "-m",
            "repro",
            "--scale",
            f"{args.scale:g}",
            "--seed",
            str(args.seed),
            "replay",
            "--events",
            str(args.events),
            "--checkpoints",
            str(args.checkpoints),
            "--cache-dir",
            tmp,
        ]
        print("+", " ".join(command))
        result = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
            capture_output=True,
            text=True,
        )
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        fail(f"repro replay exited {result.returncode}")
    verified = [
        int(match.group(1))
        for line in result.stdout.splitlines()
        if (match := CHECKPOINT_LINE.match(line.strip()))
    ]
    if len(verified) != args.checkpoints:
        fail(
            f"expected {args.checkpoints} verified checkpoints, "
            f"saw {len(verified)}: {verified}"
        )
    if verified != sorted(verified) or verified[-1] != args.events:
        fail(f"checkpoint instants malformed: {verified}")
    if "replay==rebuild: all equal" not in result.stdout:
        fail("summary line missing the replay==rebuild verdict")
    print(f"delta smoke OK ({args.checkpoints} instants digest-verified)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
