#!/usr/bin/env python
"""Regenerate the golden world digests pinned by tests/test_goldens.py.

Run this ONLY when a change is *supposed* to alter world construction or
dataset serialisation (new behaviour, new field, fixed bug).  Commit the
rewritten ``tests/goldens/world_digests.json`` together with the change
and explain the drift in the commit message — an unexplained golden
update defeats the regression suite.

Usage::

    PYTHONPATH=src python scripts/update_goldens.py
    PYTHONPATH=src python scripts/update_goldens.py --point 0.1:7

``--point SCALE:SEED`` (repeatable) replaces the default point set.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.checkpoint import dataset_digests, world_digest  # noqa: E402
from repro.scenario.build import build_world  # noqa: E402

GOLDENS_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "goldens"
    / "world_digests.json"
)

REPLAY_GOLDENS_PATH = GOLDENS_PATH.parent / "replay_digests.json"

SCENARIO_GOLDENS_PATH = GOLDENS_PATH.parent / "scenario_digests.json"

#: The scenario-pack pin: every family rendered at the ``small_world``
#: point and digested.  (scale, seed) matches the first DEFAULT_POINTS
#: entry so tests/test_scenarios.py can reuse the session fixture.
SCENARIO_SCALE, SCENARIO_SEED = 0.12, 11

#: The replayed-instant pin: synthetic events applied to the
#: ``small_world`` point through the live world, digested mid-stream and
#: at the end.  (scale, seed) must match the first DEFAULT_POINTS entry
#: so tests/test_delta.py can reuse the session fixture.
REPLAY_SCALE, REPLAY_SEED = 0.12, 11
REPLAY_EVENT_SEED = 5
REPLAY_EVENTS = 6
REPLAY_CHECKPOINTS = (3, 6)

#: (scale, seed) points pinned by the suite.  The first matches the
#: session-scoped ``small_world`` test fixture so the golden check reuses
#: the already-built world instead of building a third one; the 0.5
#: point matches ``make scale-smoke`` so the sharded-parity gate and the
#: golden suite pin the same world.
DEFAULT_POINTS: list[tuple[float, int]] = [(0.12, 11), (0.05, 3), (0.5, 7)]


def golden_entry(scale: float, seed: int) -> dict:
    world = build_world(scale=scale, seed=seed)
    return {
        "scale": scale,
        "seed": seed,
        "world_digest": world_digest(world),
        "datasets": dataset_digests(world),
    }


def replay_entry() -> dict:
    """Digest the live world at fixed instants along a synthetic stream."""
    from repro.delta import LiveWorld, synthesize_events

    world = build_world(scale=REPLAY_SCALE, seed=REPLAY_SEED)
    events = synthesize_events(
        world, n=REPLAY_EVENTS, seed=REPLAY_EVENT_SEED
    )
    live = LiveWorld(world)
    checkpoints = []
    for applied, event in enumerate(events, start=1):
        live.apply(event)
        if applied in REPLAY_CHECKPOINTS:
            checkpoints.append(
                {
                    "applied": applied,
                    "world_digest": world_digest(live.world()),
                }
            )
    return {
        "scale": REPLAY_SCALE,
        "seed": REPLAY_SEED,
        "event_seed": REPLAY_EVENT_SEED,
        "events": REPLAY_EVENTS,
        "checkpoints": checkpoints,
    }


def scenario_entry() -> dict:
    """Digest every scenario family's rendered figure at the pin point."""
    import hashlib

    from repro.scenarios import FAMILIES

    world = build_world(scale=SCENARIO_SCALE, seed=SCENARIO_SEED)
    digests = {}
    for name, family in FAMILIES.items():
        text = family.render(family.run(world))
        digests[name] = hashlib.sha256(text.encode()).hexdigest()
    return {
        "scale": SCENARIO_SCALE,
        "seed": SCENARIO_SEED,
        "digests": digests,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--point",
        action="append",
        metavar="SCALE:SEED",
        default=None,
        help="replace the default (scale, seed) points (repeatable)",
    )
    args = parser.parse_args(argv)
    points = DEFAULT_POINTS
    if args.point:
        points = []
        for text in args.point:
            scale_text, _, seed_text = text.partition(":")
            points.append((float(scale_text), int(seed_text)))
    payload = {
        "comment": (
            "Golden dataset digests; regenerate with "
            "scripts/update_goldens.py and justify drift in the commit."
        ),
        "entries": [golden_entry(scale, seed) for scale, seed in points],
    }
    GOLDENS_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDENS_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    for entry in payload["entries"]:
        print(
            f"scale={entry['scale']:g} seed={entry['seed']} "
            f"world={entry['world_digest'][:16]}"
        )
    print(f"wrote {len(payload['entries'])} entries to {GOLDENS_PATH}")
    replay = {
        "comment": (
            "Replayed-instant world digests (event replay through "
            "repro.delta.LiveWorld); regenerate with "
            "scripts/update_goldens.py and justify drift in the commit."
        ),
        "entry": replay_entry(),
    }
    REPLAY_GOLDENS_PATH.write_text(
        json.dumps(replay, indent=1, sort_keys=True) + "\n"
    )
    for point in replay["entry"]["checkpoints"]:
        print(
            f"replay applied={point['applied']} "
            f"world={point['world_digest'][:16]}"
        )
    print(f"wrote replay golden to {REPLAY_GOLDENS_PATH}")
    scenarios = {
        "comment": (
            "Scenario-pack rendered-figure digests (repro.scenarios); "
            "regenerate with scripts/update_goldens.py and justify "
            "drift in the commit."
        ),
        "entry": scenario_entry(),
    }
    SCENARIO_GOLDENS_PATH.write_text(
        json.dumps(scenarios, indent=1, sort_keys=True) + "\n"
    )
    for name, digest in scenarios["entry"]["digests"].items():
        print(f"scenario {name} digest={digest[:16]}")
    print(f"wrote scenario goldens to {SCENARIO_GOLDENS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
