"""Build-budget smoke: spill-to-disk builds change nothing.

Builds the same (scale, seed) world twice per kernel mode — once
unbudgeted and serial, once sharded under a deliberately tiny
``REPRO_BUILD_BUDGET_MB`` so every sharded stage's column accumulator
is forced to spill completed blocks to its scratch file — and fails
unless the two worlds hash to the same digest.  The budgeted leg must
actually have spilled (``build.spill.blocks`` observed non-zero),
otherwise the run silently tested nothing.  This is the CI gate behind
``make build-smoke``.

Usage::

    PYTHONPATH=src python scripts/check_build_budget.py --scale 0.3 \
        --shards 2 --jobs 2 --budget-mb 0.05
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.checkpoint import world_digest  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.scenario.build import _build_world  # noqa: E402

#: Environment knobs this smoke owns for the duration of the run.
_OWNED = ("REPRO_KERNELS", "REPRO_BUILD_BUDGET_MB")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--budget-mb",
        type=float,
        default=0.05,
        help="tiny byte budget that forces every accumulator to spill",
    )
    args = parser.parse_args(argv)

    previous = {name: os.environ.get(name) for name in _OWNED}
    failures: list[str] = []
    try:
        for mode in ("python", "numpy"):
            os.environ["REPRO_KERNELS"] = mode

            os.environ.pop("REPRO_BUILD_BUDGET_MB", None)
            start = time.perf_counter()
            plain = _build_world(
                args.scale, args.seed, None, None, None, None, 1
            )
            plain_seconds = time.perf_counter() - start
            plain_digest = world_digest(plain)
            del plain

            os.environ["REPRO_BUILD_BUDGET_MB"] = str(args.budget_mb)
            before = metrics.counters().get("build.spill.blocks", 0)
            start = time.perf_counter()
            budgeted = _build_world(
                args.scale, args.seed, None, None, None,
                args.jobs, args.shards,
            )
            budgeted_seconds = time.perf_counter() - start
            budgeted_digest = world_digest(budgeted)
            del budgeted
            spilled = metrics.counters().get("build.spill.blocks", 0) - before

            print(
                f"{mode}: plain {plain_seconds:.3f}s "
                f"digest={plain_digest[:16]}… | budgeted "
                f"{budgeted_seconds:.3f}s digest={budgeted_digest[:16]}… "
                f"({spilled} blocks spilled)",
                file=sys.stderr,
            )
            if budgeted_digest != plain_digest:
                failures.append(
                    f"{mode}: budgeted build diverged\n"
                    f"  plain:    {plain_digest}\n"
                    f"  budgeted: {budgeted_digest}"
                )
            if spilled <= 0:
                failures.append(
                    f"{mode}: budget {args.budget_mb}MB never spilled — "
                    "the smoke exercised nothing; lower --budget-mb"
                )
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    if failures:
        print("BUILD BUDGET FAIL:\n" + "\n".join(failures), file=sys.stderr)
        return 1
    print(
        f"build budget OK at scale {args.scale} seed {args.seed} "
        f"({args.shards} shards under {args.budget_mb}MB)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
