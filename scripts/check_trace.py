"""Validate a ``--trace-json`` snapshot (the ``make trace-smoke`` gate).

Checks that the document parses, that the span tree covers the world
build and every registry experiment, and that the headline counters
(routes propagated, memo hits) are present — the invariants the
observability layer promises tooling.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.registry import REGISTRY  # noqa: E402


def span_names(nodes: list[dict]) -> set[str]:
    names: set[str] = set()
    stack = list(nodes)
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node.get("children", ()))
    return names


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} TRACE.json", file=sys.stderr)
        return 2
    document = json.loads(Path(argv[1]).read_text())
    problems: list[str] = []
    if document.get("schema_version") != 1:
        problems.append("missing/unexpected schema_version")
    names = span_names(document.get("spans", []))
    for required in ("cli.build_world", "build.topology", "build.collect_rib"):
        if required not in names:
            problems.append(f"span tree misses {required}")
    for name in REGISTRY:
        if f"experiment.{name}" not in names:
            problems.append(f"span tree misses experiment.{name}")
    counters = document.get("metrics", {}).get("counters", {})
    for required in (
        "collect.routes_propagated",
        "rov.memo_hits",
        "build.routes_classified",
    ):
        if required not in counters:
            problems.append(f"counters miss {required}")
    if problems:
        for problem in problems:
            print(f"TRACE SMOKE FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        f"trace ok: {len(names)} span names, {len(counters)} counters"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
