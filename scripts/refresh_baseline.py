#!/usr/bin/env python
"""Regenerate ``benchmarks/BASELINE.json`` from a trusted local run.

The committed baseline is what ``make bench-compare`` (and the CI
digest gate) measures against, so refreshing it is a deliberate act:
this script re-runs the exact benchmark configuration the baseline was
recorded with, then *refuses to overwrite* the committed file if any
world digest drifted from the old baseline — digest drift means the
code now builds a different world, which is a correctness question, not
a performance one.  After an intentional world change (new stage, new
golden set), pass ``--expect-digest-change`` to acknowledge the drift
explicitly; the refusal is a guard against accidentally laundering a
digest regression into the baseline alongside a timing refresh.

Self-inconsistency in the *new* run (a cold/warm or cold/lazy/eager
digest mismatch within the run itself) always blocks the refresh and
cannot be overridden: a baseline that disagrees with itself is never
trustworthy.

Usage::

    PYTHONPATH=src python scripts/refresh_baseline.py
    PYTHONPATH=src python scripts/refresh_baseline.py --expect-digest-change
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import split_compare_problems  # noqa: E402

BASELINE_PATH = REPO_ROOT / "benchmarks" / "BASELINE.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--expect-digest-change",
        action="store_true",
        help="allow the new baseline's world digests to differ from the "
        "committed baseline (required after an intentional world change)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="override the round count"
    )
    args = parser.parse_args(argv)

    if not BASELINE_PATH.exists():
        print(f"refresh-baseline: no committed baseline at {BASELINE_PATH}")
        return 2
    old = json.loads(BASELINE_PATH.read_text())
    rounds = args.rounds if args.rounds is not None else old.get("rounds", 3)
    scale = old.get("scale", 0.3)
    seed = old.get("seed", 7)

    with tempfile.TemporaryDirectory(prefix="repro-baseline-") as tmp:
        command = [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run.py"),
            "--label", "BASELINE",
            "--scale", str(scale),
            "--seed", str(seed),
            "--rounds", str(rounds),
            "--scale-sweep", str(scale),
            "--output-dir", tmp,
        ]
        print("refresh-baseline: running", " ".join(command[1:]))
        result = subprocess.run(command, cwd=REPO_ROOT)
        if result.returncode != 0:
            print(
                "refresh-baseline: benchmark run failed "
                f"(exit {result.returncode}); baseline untouched"
            )
            return result.returncode
        new = json.loads((Path(tmp) / "BENCH_BASELINE.json").read_text())

    # Self-inconsistency (digest_equal flags inside the new run) is
    # never overridable; drift *from the old baseline* is, because an
    # intentional world change legitimately moves the digests.
    self_problems, _ = split_compare_problems(new, {}, threshold=0.25)
    if self_problems:
        print("refresh-baseline: new run is self-inconsistent; refusing:")
        for problem in self_problems:
            print(f"  - {problem}")
        return 3
    drift, _ = split_compare_problems(new, old, threshold=0.25)
    drift = [problem for problem in drift if problem not in self_problems]
    if drift and not args.expect_digest_change:
        print(
            "refresh-baseline: world digests drifted from the committed "
            "baseline; refusing to refresh.  If the drift is an intended "
            "world change, re-run with --expect-digest-change."
        )
        for problem in drift:
            print(f"  - {problem}")
        return 3
    if drift:
        print("refresh-baseline: accepting acknowledged digest change:")
        for problem in drift:
            print(f"  - {problem}")

    BASELINE_PATH.write_text(json.dumps(new, indent=2) + "\n")
    print(f"refresh-baseline: wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
