"""Kernel-parity smoke: one world, both kernel modes, identical digests.

Builds the same (scale, seed) world twice — once with the pure-Python
reference paths (``REPRO_KERNELS=python``) and once with the columnar
numpy kernels (``REPRO_KERNELS=numpy``) — bypassing every cache, and
fails unless the two worlds hash to the same digest.  Prints both build
times so the run doubles as a coarse kernel benchmark.

Usage::

    PYTHONPATH=src python scripts/check_kernel_parity.py --scale 0.1
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.checkpoint import world_digest  # noqa: E402
from repro.scenario.build import _build_world  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    digests: dict[str, str] = {}
    timings: dict[str, float] = {}
    previous = os.environ.get("REPRO_KERNELS")
    try:
        for mode in ("python", "numpy"):
            os.environ["REPRO_KERNELS"] = mode
            start = time.perf_counter()
            world = _build_world(args.scale, args.seed, None, None, None, None)
            timings[mode] = time.perf_counter() - start
            digests[mode] = world_digest(world)
            print(
                f"{mode}: {timings[mode]:.3f}s digest={digests[mode][:16]}…",
                file=sys.stderr,
            )
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = previous

    if digests["python"] != digests["numpy"]:
        print(
            "KERNEL PARITY FAIL: python and numpy worlds diverge\n"
            f"  python: {digests['python']}\n"
            f"  numpy:  {digests['numpy']}",
            file=sys.stderr,
        )
        return 1
    print(
        f"kernel parity OK at scale {args.scale} seed {args.seed} "
        f"({timings['python'] / timings['numpy']:.2f}x numpy speedup)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
