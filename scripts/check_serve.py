"""End-to-end smoke for the measurement service (the ``make serve-smoke`` gate).

Starts ``python -m repro serve`` as a real subprocess on an ephemeral
port, then drives it exactly as a client would: liveness, the
experiment registry, one cold build, the warm cache hit (same ETag,
``x-repro-key``), conditional revalidation (304), the metrics snapshot
(hit/miss counters must reflect the requests just made), and finally a
clean SIGINT shutdown.  Any deviation is a non-zero exit — this is the
one gate that exercises the CLI entry point, the spawn build pool and
the wire protocol together.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.http import http_get  # noqa: E402


def fail(message: str) -> None:
    raise SystemExit(f"serve smoke FAILED: {message}")


async def drive(host: str, port: int, scale: float) -> None:
    status, _headers, body = await http_get(host, port, "/healthz", timeout=30)
    health = json.loads(body)
    if status != 200 or health.get("status") != "ok":
        fail(f"/healthz returned {status}: {body!r}")
    print(f"healthz ok (store: {health.get('store')})")

    status, _headers, body = await http_get(host, port, "/experiments")
    names = [e["name"] for e in json.loads(body)["experiments"]]
    if status != 200 or "fig2" not in names:
        fail(f"/experiments returned {status} with {names}")
    print(f"registry ok ({len(names)} experiments)")

    target = f"/experiments/fig2?scale={scale:g}&seed=1"
    status, cold_headers, cold_body = await http_get(
        host, port, target, timeout=300
    )
    if status != 200:
        fail(f"cold GET {target} returned {status}: {cold_body[:200]!r}")
    payload = json.loads(cold_body)
    if payload.get("experiment") != "fig2" or not payload.get("result"):
        fail(f"cold payload malformed: {sorted(payload)}")
    print(f"cold build ok (key {cold_headers.get('x-repro-key', '?')[:16]})")

    status, warm_headers, warm_body = await http_get(host, port, target)
    if status != 200 or warm_body != cold_body:
        fail(f"warm GET diverged: status {status}")
    if warm_headers.get("etag") != cold_headers.get("etag"):
        fail("warm ETag does not match cold ETag")
    print("warm hit ok (same body, same ETag)")

    status, headers, body = await http_get(
        host, port, target, headers={"if-none-match": cold_headers["etag"]}
    )
    if status != 304 or body:
        fail(f"revalidation returned {status} with {len(body)} body bytes")
    print("conditional GET ok (304, empty body)")

    status, _headers, body = await http_get(host, port, "/metrics")
    counters = json.loads(body)["metrics"]["counters"]
    if counters.get("serve.misses", 0) < 1 or counters.get("serve.hits", 0) < 1:
        fail(f"metrics counters incomplete: {counters}")
    print(
        f"metrics ok (hits={counters['serve.hits']} "
        f"misses={counters['serve.misses']})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                tmp,
                "--workers",
                "1",
            ],
            cwd=REPO_ROOT,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            announce = process.stdout.readline().strip()
            if not announce.startswith("serving on http://"):
                fail(f"unexpected announce line: {announce!r}")
            host, _, port = announce.rsplit("/", 1)[-1].partition(":")
            print(announce)
            asyncio.run(drive(host, int(port), args.scale))
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                fail("server did not shut down on SIGINT")
        if process.returncode != 0:
            fail(f"server exited {process.returncode} after SIGINT")
        print("shutdown ok (SIGINT, exit 0)")
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
