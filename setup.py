"""Setup shim: lets `python setup.py develop` work offline (no wheel pkg)."""
from setuptools import setup

setup()
