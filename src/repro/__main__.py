"""Allow ``python -m repro ...`` to run the CLI."""

import sys

from repro.cli import main

sys.exit(main())
