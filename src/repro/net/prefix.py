"""IP prefix algebra for IPv4 and IPv6.

The whole measurement pipeline — RPKI route origin validation, IRR route
object matching, prefix2as derivation, address-space accounting — operates
on CIDR prefixes.  This module provides an immutable :class:`Prefix` value
type backed by plain integers, which keeps comparisons and radix-trie
insertion cheap (no per-operation object churn as with ``ipaddress``).

A prefix is the pair ``(value, length)`` for a given IP ``version`` where
``value`` is the network address as an unsigned integer with all host bits
zero.  ``Prefix`` objects are hashable and totally ordered (by version,
then value, then length) so they can be used as dict keys and sorted into
the canonical "address order" used by routing-table dumps.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterable, Iterator

from repro.errors import PrefixError

__all__ = [
    "Prefix",
    "aggregate_address_count",
    "coalesce",
]

_V4_BITS = 32
_V6_BITS = 128
_V4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def _parse_v4(text: str) -> int:
    match = _V4_RE.match(text)
    if match is None:
        raise PrefixError(f"malformed IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise PrefixError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _parse_v6(text: str) -> int:
    """Parse an IPv6 address (RFC 4291 text form, without zone index)."""
    if text.count("::") > 1:
        raise PrefixError(f"multiple '::' in IPv6 address: {text!r}")
    if "::" in text:
        head_text, tail_text = text.split("::", 1)
        head = head_text.split(":") if head_text else []
        tail = tail_text.split(":") if tail_text else []
        missing = 8 - (len(head) + len(tail))
        if missing < 1:
            raise PrefixError(f"'::' expands to nothing in {text!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = text.split(":")
        if len(groups) != 8:
            raise PrefixError(f"IPv6 address needs 8 groups: {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise PrefixError(f"bad IPv6 group {group!r} in {text!r}")
        try:
            part = int(group, 16)
        except ValueError as exc:
            raise PrefixError(f"bad IPv6 group {group!r} in {text!r}") from exc
        value = (value << 16) | part
    return value


def _format_v4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _format_v6(value: int) -> str:
    groups = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups to compress with '::'.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


#: :meth:`Prefix.parse` memo.  Bounded by wholesale clearing (not LRU):
#: the working set of distinct prefix strings in even a full-scale world
#: is far below the bound, so a clear only ever fires on pathological
#: input streams.
_parse_cache: dict = {}
_PARSE_CACHE_MAX = 1 << 18


@total_ordering
class Prefix:
    """An immutable IPv4/IPv6 CIDR prefix.

    Instances are created with :meth:`parse` (from ``"10.0.0.0/8"`` text)
    or directly from integer network value + length.  Host bits must be
    zero; :meth:`from_host` masks them off instead of raising.
    """

    __slots__ = ("_value", "_length", "_version", "_hash")

    def __init__(self, value: int, length: int, version: int = 4):
        if version not in (4, 6):
            raise PrefixError(f"IP version must be 4 or 6, got {version}")
        bits = _V4_BITS if version == 4 else _V6_BITS
        if not 0 <= length <= bits:
            raise PrefixError(f"/{length} out of range for IPv{version}")
        if not 0 <= value < (1 << bits):
            raise PrefixError(f"address value out of range for IPv{version}")
        host_mask = (1 << (bits - length)) - 1
        if value & host_mask:
            raise PrefixError(
                f"host bits set in {value:#x}/{length} (IPv{version}); "
                "use Prefix.from_host to mask them"
            )
        self._value = value
        self._length = length
        self._version = version
        # Prefixes key the hot dicts of the whole pipeline (validation
        # memos, RIB group indexes, radix query dedupe); hashing a fresh
        # tuple per lookup dominates those paths, so cache it once.
        self._hash = hash((version, value, length))

    # -- constructors -----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` or an IPv6 equivalent.

        A bare address (no ``/len``) is treated as a host prefix (/32 or
        /128).  Results are memoised: the same prefix strings recur by
        the hundreds of thousands when loading dataset bundles and
        checkpoints, and instances are immutable so sharing them is
        safe.
        """
        if cls is Prefix:
            cached = _parse_cache.get(text)
            if cached is not None:
                return cached
        stripped = text.strip()
        if "/" in stripped:
            addr_text, _, len_text = stripped.partition("/")
            try:
                length = int(len_text)
            except ValueError as exc:
                raise PrefixError(f"malformed prefix length in {text!r}") from exc
        else:
            addr_text, length = stripped, -1
        if ":" in addr_text:
            value, version = _parse_v6(addr_text), 6
        else:
            value, version = _parse_v4(addr_text), 4
        if length < 0:
            length = _V4_BITS if version == 4 else _V6_BITS
        prefix = cls.from_host(value, length, version)
        if cls is Prefix:
            if len(_parse_cache) >= _PARSE_CACHE_MAX:
                _parse_cache.clear()
            _parse_cache[text] = prefix
        return prefix

    @classmethod
    def _from_trusted(cls, value: int, length: int, version: int) -> "Prefix":
        """Construct without validation from a previously-validated triple.

        Only for callers replaying ``(value, length, version)`` triples
        that a live :class:`Prefix` produced — the checkpoint store
        rebuilds hundreds of thousands of prefixes from digest-verified
        integer columns, and re-running the range/host-bit checks (or
        round-tripping through text) dominated that path.  Feeding
        arbitrary integers in here yields an invalid instance, hence
        private.
        """
        self = object.__new__(cls)
        self._value = value
        self._length = length
        self._version = version
        self._hash = hash((version, value, length))
        return self

    @classmethod
    def from_host(cls, value: int, length: int, version: int = 4) -> "Prefix":
        """Build a prefix from an address that may have host bits set."""
        bits = _V4_BITS if version == 4 else _V6_BITS
        if not 0 <= length <= bits:
            raise PrefixError(f"/{length} out of range for IPv{version}")
        mask = ((1 << length) - 1) << (bits - length) if length else 0
        return cls(value & mask, length, version)

    # -- basic accessors ---------------------------------------------------

    @property
    def value(self) -> int:
        """Network address as an unsigned integer (host bits zero)."""
        return self._value

    @property
    def length(self) -> int:
        """Prefix length in bits."""
        return self._length

    @property
    def version(self) -> int:
        """IP version: 4 or 6."""
        return self._version

    @property
    def bits(self) -> int:
        """Address width in bits (32 or 128)."""
        return _V4_BITS if self._version == 4 else _V6_BITS

    @property
    def address_count(self) -> int:
        """Number of addresses covered (2**(bits - length))."""
        return 1 << (self.bits - self._length)

    @property
    def network_address(self) -> str:
        """Dotted-quad / RFC 4291 text of the network address."""
        if self._version == 4:
            return _format_v4(self._value)
        return _format_v6(self._value)

    @property
    def first(self) -> int:
        """First covered address as an integer (== :attr:`value`)."""
        return self._value

    @property
    def last(self) -> int:
        """Last covered address as an integer."""
        return self._value + self.address_count - 1

    # -- algebra -----------------------------------------------------------

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than ``self``."""
        if self._version != other._version or other._length < self._length:
            return False
        shift = self.bits - self._length
        return (other._value >> shift) == (self._value >> shift)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def supernet(self, length: int | None = None) -> "Prefix":
        """The covering prefix at ``length`` (default: one bit shorter)."""
        if length is None:
            length = self._length - 1
        if length < 0 or length > self._length:
            raise PrefixError(
                f"supernet length {length} invalid for /{self._length}"
            )
        return Prefix.from_host(self._value, length, self._version)

    def subnets(self, length: int | None = None) -> Iterator["Prefix"]:
        """Yield the subnets of ``self`` at ``length`` (default: one bit
        longer), in address order."""
        if length is None:
            length = self._length + 1
        if length < self._length or length > self.bits:
            raise PrefixError(
                f"subnet length {length} invalid for /{self._length}"
            )
        step = 1 << (self.bits - length)
        for i in range(1 << (length - self._length)):
            yield Prefix(self._value + i * step, length, self._version)

    def bit_at(self, index: int) -> int:
        """The address bit at ``index`` (0 = most significant).

        Only bits below :attr:`length` are meaningful; asking beyond is an
        error because it would read host bits.
        """
        if not 0 <= index < self._length:
            raise PrefixError(f"bit {index} outside /{self._length}")
        return (self._value >> (self.bits - 1 - index)) & 1

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (
            self._version == other._version
            and self._value == other._value
            and self._length == other._length
        )

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._version, self._value, self._length) < (
            other._version,
            other._value,
            other._length,
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.network_address}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def aggregate_address_count(prefixes: Iterable[Prefix]) -> int:
    """Count distinct addresses covered by ``prefixes``.

    Overlapping prefixes are only counted once; this is the "routed address
    space" accounting the paper uses for Figures 4b and 6.  Mixing IP
    versions is allowed; counts are simply summed across versions.
    """
    by_version: dict[int, list[Prefix]] = {}
    for prefix in prefixes:
        by_version.setdefault(prefix.version, []).append(prefix)
    total = 0
    for version_prefixes in by_version.values():
        version_prefixes.sort(key=lambda p: (p.first, p.length))
        covered_until = -1
        for prefix in version_prefixes:
            first, last = prefix.first, prefix.last
            if last <= covered_until:
                continue
            total += last - max(first, covered_until + 1) + 1
            covered_until = last
    return total


def coalesce(prefixes: Iterable[Prefix]) -> list[Prefix]:
    """Return a minimal sorted list of prefixes covering the same space.

    Removes prefixes contained in others and merges sibling pairs into
    their supernet, repeating until a fixed point.
    """
    by_version: dict[int, set[Prefix]] = {}
    for prefix in prefixes:
        by_version.setdefault(prefix.version, set()).add(prefix)
    result: list[Prefix] = []
    for version_set in by_version.values():
        work = sorted(version_set, key=lambda p: (p.length, p.value))
        # Drop contained prefixes: any prefix covered by a shorter one.
        kept: list[Prefix] = []
        for prefix in work:
            if not any(other.contains(prefix) for other in kept):
                kept.append(prefix)
        # Merge sibling pairs bottom-up until stable.
        merged = True
        current = set(kept)
        while merged:
            merged = False
            for prefix in sorted(current, key=lambda p: -p.length):
                if prefix not in current or prefix.length == 0:
                    continue
                sibling_value = prefix.value ^ (
                    1 << (prefix.bits - prefix.length)
                )
                sibling = Prefix(sibling_value, prefix.length, prefix.version)
                if sibling in current:
                    current.discard(prefix)
                    current.discard(sibling)
                    current.add(prefix.supernet())
                    merged = True
        result.extend(current)
    return sorted(result)
