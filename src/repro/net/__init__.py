"""Networking primitives: prefixes, AS numbers, and the radix trie."""

from repro.net.asn import (
    AS_TRANS,
    MAX_ASN,
    format_as_path,
    format_asn,
    is_private_asn,
    is_reserved_asn,
    parse_as_path,
    parse_asn,
    strip_prepending,
    validate_asn,
)
from repro.net.prefix import Prefix, aggregate_address_count, coalesce
from repro.net.radix import RadixTree

__all__ = [
    "AS_TRANS",
    "MAX_ASN",
    "Prefix",
    "RadixTree",
    "aggregate_address_count",
    "coalesce",
    "format_as_path",
    "format_asn",
    "is_private_asn",
    "is_reserved_asn",
    "parse_as_path",
    "parse_asn",
    "strip_prepending",
    "validate_asn",
]
