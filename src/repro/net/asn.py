"""AS number and AS path utilities.

AS numbers are plain ints throughout the library (fast, hashable); this
module centralises validation and the text forms used in datasets ("AS65001"
in IRR objects, bare digits in CAIDA files, space-separated paths in BGP
dumps).
"""

from __future__ import annotations

from itertools import groupby, islice
from operator import eq
from typing import Iterable, Sequence

from repro.errors import ASNError

__all__ = [
    "MAX_ASN",
    "AS_TRANS",
    "validate_asn",
    "parse_asn",
    "format_asn",
    "parse_as_path",
    "format_as_path",
    "strip_prepending",
    "is_private_asn",
    "is_reserved_asn",
]

MAX_ASN = 2**32 - 1
#: RFC 6793 placeholder ASN used when 4-byte ASNs traverse 2-byte speakers.
AS_TRANS = 23456

_PRIVATE_RANGES = ((64512, 65534), (4200000000, 4294967294))
#: ASNs that must never originate routes: AS0 (RFC 7607), AS_TRANS,
#: documentation ASNs (RFC 5398) and the last ASN of each size (RFC 7300).
_RESERVED = frozenset({0, AS_TRANS, 65535, MAX_ASN}) | frozenset(
    range(64496, 64512)
) | frozenset(range(65536, 65552))


def validate_asn(asn: int) -> int:
    """Return ``asn`` if it is a structurally valid AS number, else raise."""
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise ASNError(f"ASN must be an int, got {type(asn).__name__}")
    if not 0 <= asn <= MAX_ASN:
        raise ASNError(f"ASN {asn} out of 32-bit range")
    return asn


def parse_asn(text: str) -> int:
    """Parse ``"AS65001"``, ``"as65001"`` or ``"65001"`` into an int."""
    text = text.strip()
    if text[:2].upper() == "AS":
        text = text[2:]
    try:
        asn = int(text)
    except ValueError as exc:
        raise ASNError(f"malformed ASN: {text!r}") from exc
    return validate_asn(asn)


def format_asn(asn: int) -> str:
    """Canonical ``"AS<digits>"`` text form used in RPSL objects."""
    return f"AS{validate_asn(asn)}"


def parse_as_path(text: str) -> tuple[int, ...]:
    """Parse a space-separated AS path (as in MRT/`show ip bgp` dumps)."""
    if not text.strip():
        return ()
    return tuple(parse_asn(token) for token in text.split())


def format_as_path(path: Sequence[int]) -> str:
    """Render an AS path as space-separated decimal ASNs."""
    return " ".join(str(validate_asn(asn)) for asn in path)


def strip_prepending(path: Iterable[int]) -> tuple[int, ...]:
    """Collapse consecutive duplicate ASNs (AS-path prepending).

    Hegemony and transit analyses count each AS once per path, so prepended
    paths must be deduplicated while preserving order.  This sits on the
    IHR hot path (once per route group and vantage point), and paths from
    the propagation engine never contain prepending, so the common case is
    a C-level adjacent-pair scan that returns the input tuple untouched;
    only paths that actually repeat pay for the ``groupby`` collapse.
    """
    if not isinstance(path, tuple):
        path = tuple(path)
    if any(map(eq, path, islice(path, 1, None))):
        return tuple(asn for asn, _ in groupby(path))
    return path


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use ASNs."""
    validate_asn(asn)
    return any(low <= asn <= high for low, high in _PRIVATE_RANGES)


def is_reserved_asn(asn: int) -> bool:
    """True for ASNs that must not appear as a route origin."""
    validate_asn(asn)
    return asn in _RESERVED
