"""Binary radix (Patricia-style) trie keyed by IP prefixes.

Both RPKI route origin validation and IRR route-object matching need the
same primitive: given a BGP prefix, find every registered entry whose
prefix *covers* it (RFC 6811 calls these "covering VRPs").  A binary trie
indexed by address bits answers that in O(prefix length).

The trie stores a list of values per node so that multiple objects can be
registered under the same prefix (e.g. two ROAs for the same prefix with
different origin ASNs).  IPv4 and IPv6 entries live in separate roots so
key bits never collide.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.net.prefix import Prefix

__all__ = ["RadixTree"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "values")

    def __init__(self) -> None:
        self.children: list["_Node[V] | None"] = [None, None]
        self.values: list[V] | None = None


class RadixTree(Generic[V]):
    """Map from :class:`Prefix` to lists of values with covering lookups.

    ``insert`` appends (duplicate values under one prefix are allowed, as
    in real registries), ``covering`` walks root-to-leaf collecting every
    match, and ``search_exact`` returns only the values stored at the
    queried prefix.
    """

    def __init__(self) -> None:
        self._roots: dict[int, _Node[V]] = {4: _Node(), 6: _Node()}
        self._size = 0

    def __len__(self) -> int:
        """Number of inserted values (not distinct prefixes)."""
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Register ``value`` under ``prefix``."""
        node = self._roots[prefix.version]
        address = prefix.value
        shift = prefix.bits - 1
        for _ in range(prefix.length):
            bit = (address >> shift) & 1
            shift -= 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if node.values is None:
            node.values = []
        node.values.append(value)
        self._size += 1

    def insert_sorted(self, items: Iterable[tuple[Prefix, V]]) -> None:
        """Bulk-insert ``(prefix, value)`` pairs given in address order.

        Equivalent to calling :meth:`insert` per pair (including the
        per-node value ordering), but consecutive keys in address order
        share long common bit-prefixes, so the walk resumes from the
        deepest node still on the previous key's path instead of
        re-descending from the root.  Checkpoint restores feed whole
        registry dumps through here; the shared-path skip roughly halves
        the rebuild cost of a full-scale IRR trie.

        Items must be sorted ascending by ``(version, value, length)``
        (the natural :class:`Prefix` order); out-of-order input falls
        back to correctness-preserving full descents only when the
        version changes, so truly unsorted streams belong in
        :meth:`insert`.
        """
        stack: list[_Node[V]] = []
        prev_value = 0
        prev_length = 0
        prev_version = -1
        for prefix, value in items:
            address = prefix.value
            length = prefix.length
            bits = prefix.bits
            if prefix.version != prev_version:
                stack = [self._roots[prefix.version]]
                prev_version = prefix.version
                prev_value = 0
                prev_length = 0
            diff = address ^ prev_value
            common = bits - diff.bit_length() if diff else bits
            depth = min(common, length, prev_length)
            del stack[depth + 1:]
            node = stack[depth]
            shift = bits - 1 - depth
            for _ in range(length - depth):
                bit = (address >> shift) & 1
                shift -= 1
                child = node.children[bit]
                if child is None:
                    child = _Node()
                    node.children[bit] = child
                node = child
                stack.append(node)
            if node.values is None:
                node.values = []
            node.values.append(value)
            self._size += 1
            prev_value = address
            prev_length = length

    def remove(self, prefix: Prefix, value: V) -> bool:
        """Remove one occurrence of ``value`` at ``prefix``.

        Returns True if something was removed.  Empty interior nodes are
        left in place; the trie is insert-heavy and rebuilt per snapshot,
        so path compression on delete is not worth the complexity.
        """
        node: _Node[V] | None = self._roots[prefix.version]
        for i in range(prefix.length):
            if node is None:
                return False
            node = node.children[prefix.bit_at(i)]
        if node is None or not node.values:
            return False
        try:
            node.values.remove(value)
        except ValueError:
            return False
        self._size -= 1
        return True

    def search_exact(self, prefix: Prefix) -> list[V]:
        """Values registered at exactly ``prefix`` (possibly empty)."""
        node: _Node[V] | None = self._roots[prefix.version]
        for i in range(prefix.length):
            if node is None:
                return []
            node = node.children[prefix.bit_at(i)]
        if node is None or node.values is None:
            return []
        return list(node.values)

    def covering(self, prefix: Prefix) -> list[V]:
        """All values whose prefix contains ``prefix`` (including exact).

        Matches are returned shortest-prefix first (least specific to most
        specific), which callers use e.g. to prefer the most specific IRR
        route object.
        """
        found: list[V] = []
        node: _Node[V] | None = self._roots[prefix.version]
        address = prefix.value
        shift = prefix.bits - 1
        for _ in range(prefix.length):
            if node.values:
                found.extend(node.values)
            node = node.children[(address >> shift) & 1]
            shift -= 1
            if node is None:
                return found
        if node.values:
            found.extend(node.values)
        return found

    def covering_many(
        self, prefixes: Iterable[Prefix]
    ) -> dict[Prefix, list[V]]:
        """Covering values for many prefixes in one deduplicated pass.

        Queries are deduplicated (bulk callers repeat prefixes heavily —
        one per announcement, not per distinct prefix) and each distinct
        prefix gets one inlined root-to-leaf walk.  A sorted walk sharing
        path segments between address-adjacent queries was measured here
        and lost: these tries are shallow and sparse, so the per-query
        stack bookkeeping costs more than the few levels it saves.
        Per-prefix results are identical to :meth:`covering`, including
        the shortest-first ordering.
        """
        results: dict[Prefix, list[V]] = {}
        roots = self._roots
        for prefix in prefixes:
            if prefix in results:
                continue
            found: list[V] = []
            node: _Node[V] | None = roots[prefix.version]
            address = prefix.value
            shift = prefix.bits - 1
            for _ in range(prefix.length):
                if node.values:
                    found.extend(node.values)
                node = node.children[(address >> shift) & 1]
                shift -= 1
                if node is None:
                    break
            else:
                if node.values:
                    found.extend(node.values)
            results[prefix] = found
        return results

    def covered(self, prefix: Prefix) -> list[V]:
        """All values at ``prefix`` or more-specific prefixes under it."""
        node: _Node[V] | None = self._roots[prefix.version]
        for i in range(prefix.length):
            if node is None:
                return []
            node = node.children[prefix.bit_at(i)]
        if node is None:
            return []
        found: list[V] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.values:
                found.extend(current.values)
            for child in current.children:
                if child is not None:
                    stack.append(child)
        return found

    def has_covering(self, prefix: Prefix) -> bool:
        """Cheap test for "is there any covering entry at all?"."""
        node: _Node[V] | None = self._roots[prefix.version]
        address = prefix.value
        shift = prefix.bits - 1
        for _ in range(prefix.length):
            if node.values:
                return True
            node = node.children[(address >> shift) & 1]
            shift -= 1
            if node is None:
                return False
        return bool(node.values)

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Iterate over every (prefix, value) pair in address order."""
        for version in (4, 6):
            yield from self._walk(self._roots[version], 0, 0, version)

    def _walk(
        self, node: _Node[V], value: int, depth: int, version: int
    ) -> Iterator[tuple[Prefix, V]]:
        if node.values:
            bits = 32 if version == 4 else 128
            prefix = Prefix(value << (bits - depth) if depth else 0, depth, version)
            for stored in node.values:
                yield prefix, stored
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                yield from self._walk(child, (value << 1) | bit, depth + 1, version)
