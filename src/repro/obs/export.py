"""Exporters: one observability state, three serialisations.

* :func:`snapshot` — a JSON-ready document (span tree + flat timings +
  metrics); ``--trace-json PATH`` on every CLI command writes it via
  :func:`write_json`.
* :func:`render_tree` — the human-readable span tree (what a person
  reads instead of raw JSON).
* :func:`render_flat` — one ``label value`` pair per line, the simplest
  scrape format: span seconds under ``span_seconds.<name>``, counters
  under ``counter.<name>``, gauges under ``gauge.<name>``.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.obs import metrics, trace

__all__ = ["SCHEMA_VERSION", "render_flat", "render_tree", "snapshot", "write_json"]

#: Bumped whenever the snapshot document shape changes.
SCHEMA_VERSION = 1


def snapshot(spans: bool = True) -> dict:
    """The complete observability state as a JSON-ready document.

    ``spans=False`` omits the span tree (the benchmark runner stores only
    timings and metrics so BENCH files stay small).
    """
    document: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "timings_s": {
            name: round(seconds, 6)
            for name, seconds in trace.timings().items()
        },
        "metrics": {
            "counters": metrics.counters(),
            "gauges": metrics.gauges(),
        },
    }
    if spans:
        document["spans"] = [root.as_dict() for root in trace.root_spans()]
    return document


def write_json(path: str, spans: bool = True) -> None:
    """Serialise :func:`snapshot` to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot(spans=spans), handle, indent=2, sort_keys=False)
        handle.write("\n")


def _render_span(span: trace.Span, depth: int, lines: list[str]) -> None:
    parts = [f"{'  ' * depth}{span.name}: {span.elapsed:.3f}s"]
    if span.attrs:
        parts.append(
            "[" + " ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
        )
    if span.counters:
        parts.append(
            "(" + " ".join(f"{k}={v:g}" for k, v in span.counters.items()) + ")"
        )
    lines.append(" ".join(parts))
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_tree() -> str:
    """The span tree as indented human-readable text."""
    lines: list[str] = []
    for root in trace.root_spans():
        _render_span(root, 0, lines)
    return "\n".join(lines)


def render_flat() -> str:
    """Flat ``label value`` text: one metric or span total per line."""
    lines = [
        f"span_seconds.{name} {seconds:.6f}"
        for name, seconds in trace.timings().items()
    ]
    lines.extend(
        f"counter.{name} {value:g}"
        for name, value in metrics.counters().items()
    )
    lines.extend(
        f"gauge.{name} {value:g}" for name, value in metrics.gauges().items()
    )
    return "\n".join(lines)


def dump_tree(stream: TextIO) -> None:
    """Write :func:`render_tree` (with trailing newline) to ``stream``."""
    text = render_tree()
    if text:
        stream.write(text + "\n")
