"""Structured observability: trace spans, metrics, exporters.

The measurement pipeline is instrumented with three primitives:

* :func:`span` — hierarchical wall-clock trace spans with ``key=value``
  attributes (``with obs.span("build.collect_rib", jobs=4): ...``);
* :func:`add` / :func:`gauge` — a process-wide metrics registry
  (counters such as routes propagated, memo hits, ROV verdict tallies,
  the ``checkpoint.hit`` / ``checkpoint.miss`` / ``checkpoint.corrupt``
  / ``checkpoint.saved`` counters of the :mod:`repro.datasets.checkpoint`
  store, and the sweep orchestrator's ``sweep.jobs.{done,failed,
  retried,skipped}`` / ``sweep.ledger.corrupt`` / ``sweep.pool.rebuilt``
  counters; gauges such as pool worker counts and ``sweep.workers``);
* exporters — the human span tree (:func:`render_tree`), a JSON
  document (:func:`snapshot` / :func:`write_json`, what ``--trace-json``
  writes), and a flat ``label value`` scrape format
  (:func:`render_flat`).

Setting ``REPRO_PERF=1`` prints each span to stderr as it closes, in the
same ``[perf] name: N.NNNs`` format the retired ``repro.perf`` module
used (the shim itself was removed after its two-PR deprecation window).

Everything here is observation-only: no instrumented call site feeds a
span or counter value back into the pipeline, so world and timeline
outputs are byte-identical with or without the hooks.
"""

from __future__ import annotations

from repro.obs.export import (
    SCHEMA_VERSION,
    render_flat,
    render_tree,
    snapshot,
    write_json,
)
from repro.obs.metrics import add, counters, gauge, gauges, reset_metrics
from repro.obs.runtime import JOBS_ENV, gc_paused, resolve_jobs
from repro.obs.trace import (
    PERF_ENV,
    Span,
    annotate,
    current_span,
    enabled,
    reset_trace,
    root_spans,
    span,
    timings,
)

__all__ = [
    "JOBS_ENV",
    "PERF_ENV",
    "SCHEMA_VERSION",
    "Span",
    "add",
    "annotate",
    "counters",
    "current_span",
    "enabled",
    "gauge",
    "gauges",
    "gc_paused",
    "render_flat",
    "render_tree",
    "reset",
    "reset_metrics",
    "reset_trace",
    "resolve_jobs",
    "root_spans",
    "snapshot",
    "span",
    "timings",
    "write_json",
]


def reset() -> None:
    """Clear all observability state: spans, timings, counters, gauges."""
    reset_trace()
    reset_metrics()
