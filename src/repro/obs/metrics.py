"""Process-wide metrics registry: monotonic counters and point gauges.

Counters accumulate across the whole process (routes propagated, memo
hits, ROV verdict tallies); gauges record last-written values (worker
count, vantage-point count).  Every counter increment is mirrored onto
the innermost open trace span, so the span tree shows *where* the counts
came from while the registry keeps the process totals.

The hot-path cost of :func:`add` is two dict updates — cheap enough to
leave in production code, but still not free: per-item pipeline loops
should count in bulk (one ``add(name, len(batch))`` per batch), which is
how the validator and collector call sites use it.
"""

from __future__ import annotations

from repro.obs import trace

__all__ = ["add", "counters", "gauge", "gauges", "reset_metrics"]

_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}


def add(name: str, value: float = 1) -> None:
    """Increment a process-wide counter (and the current span's copy)."""
    _counters[name] = _counters.get(name, 0) + value
    stack = trace._stack
    if stack:
        span_counters = stack[-1].counters
        span_counters[name] = span_counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Set a process-wide gauge to its latest observed value."""
    _gauges[name] = value


def counters() -> dict[str, float]:
    """All counters, insertion-ordered by first increment."""
    return dict(_counters)


def gauges() -> dict[str, float]:
    """All gauges with their latest values."""
    return dict(_gauges)


def reset_metrics() -> None:
    """Clear every counter and gauge."""
    _counters.clear()
    _gauges.clear()
