"""Runtime knobs that travel with the instrumentation.

Worker-count resolution and the batch GC pause are not observability per
se, but they are steered by the same environment contract
(``REPRO_JOBS``, ``REPRO_PERF``) and every instrumented call site needs
them.
"""

from __future__ import annotations

import gc
import os
from contextlib import contextmanager
from typing import Iterator

from repro import config as _config

__all__ = ["JOBS_ENV", "gc_paused", "resolve_jobs"]

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Number of worker processes to use.

    An explicit ``jobs`` argument wins; otherwise the active
    :class:`repro.config.RuntimeConfig` decides (which falls back to
    ``REPRO_JOBS`` when none is installed).  ``0`` (either way) means
    "all cores"; anything else is clamped to at least 1.  The default
    with no argument, no installed config and no env var is 1 (serial),
    which keeps single-shot builds free of process-pool overhead and
    bit-reproducible under the simplest configuration.
    """
    if jobs is None:
        jobs = _config.current().jobs
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@contextmanager
def gc_paused(freeze: bool = False) -> Iterator[None]:
    """Suspend the cyclic garbage collector for a batch construction.

    The world builders allocate millions of long-lived, acyclic objects
    (radix nodes, routes, path tuples); every generation-0 collection
    triggered mid-build re-scans that growing graph for cycles it cannot
    contain, which at full scale costs more than the allocations
    themselves.  Pausing collection around the batch and restoring it on
    exit (collection state is re-enabled even on exceptions) removes that
    overhead without changing any result.  Nested pauses are free: only
    the outermost one toggles the collector.

    With ``freeze=True`` the batch's survivors are moved to the
    permanent generation on success (``gc.freeze()``, a constant-time
    list splice).  Without it, the first full collections after a large
    paused batch re-scan the whole surviving graph looking for cycles a
    builder never creates — measured here at ~0.8s per scan at full
    scale, recurring until the collector's long-lived quota catches up.
    Frozen objects are simply exempt from future scans; they are still
    freed by reference counting as usual.  Only pass ``freeze=True``
    from top-level builders whose output lives for the rest of the
    process (anything else alive at that moment is frozen too).
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
        if freeze and was_enabled:
            gc.freeze()
    finally:
        if was_enabled:
            gc.enable()
