"""Hierarchical trace spans.

A *span* times one named unit of pipeline work.  Spans nest: entering a
span while another is open makes it a child, so a full CLI run yields a
tree (``cli.reproduce`` → ``build.topology`` … → ``experiment.fig9``).
Each span carries its wall time, free-form ``key=value`` attributes, and
any counters incremented while it was the innermost open span (see
:mod:`repro.obs.metrics`).

The hooks stay as cheap as the bare ``perf_counter`` pairs they replaced:
entering a span is one object construction plus a list append, exiting is
one subtraction and two dict updates.  Nothing here is thread-safe by
design — the pipeline's process-parallel fan-out never traces inside
workers, and the per-process stack keeps the hot path lock-free.

Alongside the tree, a flat ``name → accumulated seconds`` aggregate is
maintained with the semantics of the retired ``repro.perf`` timings
(insertion-ordered by first completion, summed across repeats).
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "PERF_ENV",
    "RSS_ENV",
    "Span",
    "annotate",
    "current_span",
    "enabled",
    "reset_trace",
    "root_spans",
    "span",
    "timings",
]

PERF_ENV = "REPRO_PERF"

#: Opt-in per-span RSS stamping (used by the benchmark scale sweep's
#: cold leg): at span close the process high-water RSS is attached as an
#: ``rss_mb`` attribute, so the span tree shows which stage pushed the
#: high-water mark where.
RSS_ENV = "REPRO_SPAN_RSS"

#: Completed top-level spans, in completion order.
_roots: list["Span"] = []
#: Open spans, outermost first.
_stack: list["Span"] = []
#: Flat per-name accumulated seconds (the legacy ``perf.timings`` view).
_aggregate: dict[str, float] = {}


def enabled() -> bool:
    """True when ``REPRO_PERF`` asks for a printed breakdown."""
    return os.environ.get(PERF_ENV, "") not in ("", "0")


def rss_stamping() -> bool:
    """True when ``REPRO_SPAN_RSS`` asks spans to record high-water RSS."""
    return os.environ.get(RSS_ENV, "") not in ("", "0")


def high_water_rss_mb() -> float:
    """The process's high-water RSS in MiB (0.0 where unsupported).

    ``ru_maxrss`` is KiB on Linux; the benchmark runner divides the same
    way, so stamped spans and sweep points are directly comparable.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@dataclass
class Span:
    """One timed, attributed unit of work."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    elapsed: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready node: name, seconds, attrs, counters, children."""
        node: dict[str, object] = {
            "name": self.name,
            "elapsed_s": round(self.elapsed, 6),
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.counters:
            node["counters"] = dict(self.counters)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Span]:
    """Open a trace span around a block of pipeline work.

    Nested spans become children of the enclosing one; top-level spans
    accumulate in the trace's root list.  Counter increments issued while
    the span is innermost are attributed to it.  With ``REPRO_PERF`` set,
    the span prints the same ``[perf] name: N.NNNs`` stderr line the old
    ``perf.stage`` printed, indented by nesting depth.
    """
    current = Span(name=name, attrs=dict(attrs))
    depth = len(_stack)
    _stack.append(current)
    current.start = time.perf_counter()
    try:
        yield current
    finally:
        current.elapsed = time.perf_counter() - current.start
        if rss_stamping():
            current.attrs["rss_mb"] = round(high_water_rss_mb(), 1)
        _stack.pop()
        if _stack:
            _stack[-1].children.append(current)
        else:
            _roots.append(current)
        _aggregate[name] = _aggregate.get(name, 0.0) + current.elapsed
        if enabled():
            indent = "  " * depth
            print(
                f"[perf] {indent}{name}: {current.elapsed:.3f}s",
                file=sys.stderr,
            )


def current_span() -> Span | None:
    """The innermost open span, or None outside any span."""
    return _stack[-1] if _stack else None


def annotate(**attrs: object) -> None:
    """Attach ``key=value`` attributes to the innermost open span.

    A no-op outside any span, so library code can annotate
    unconditionally.
    """
    if _stack:
        _stack[-1].attrs.update(attrs)


def root_spans() -> list[Span]:
    """Completed top-level spans since the last :func:`reset_trace`."""
    return list(_roots)


def timings() -> dict[str, float]:
    """Accumulated seconds per span name (the legacy flat view)."""
    return dict(_aggregate)


def reset_trace() -> None:
    """Drop all completed spans and the flat aggregate.

    Open spans are untouched: a reset issued mid-span (e.g. by a test)
    must not corrupt the enclosing instrumentation's bookkeeping.
    """
    _roots.clear()
    _aggregate.clear()
