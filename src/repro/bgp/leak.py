"""Route-leak simulation (RFC 7908 type 1: full-table leak to providers).

§2.1/§1 motivate MANRS with accidental compromises; the big 2020 leak the
paper cites ([51]) was a customer re-exporting provider-learned routes
upward.  The propagation engine enforces valley-free export, so a leak is
modelled as an *event*: the leaker AS treats its selected route toward a
victim origin as if it were customer-learned and re-announces it to all
its providers and peers, from where normal (valley-free) propagation
resumes.

The outcome quantifies who prefers the leaked path — leaked routes win at
ASes that hear the leak as a customer route (cheaper) or as a shorter
path, which is exactly why leaks spread so destructively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.policy import NeighborKind, RouteClass
from repro.bgp.propagation import PropagationEngine, Route, RouteKind
from repro.errors import ReproError

__all__ = ["LeakOutcome", "simulate_leak"]


@dataclass(frozen=True)
class LeakOutcome:
    """Result of one route-leak event."""

    origin: int
    leaker: int
    #: The (valley-violating) path the leaker re-announces.
    leaked_path: tuple[int, ...]
    #: Vantage points whose best route now traverses the leak.
    affected: dict[int, bool]

    @property
    def affected_fraction(self) -> float:
        """Fraction of vantage points pulled onto the leaked path."""
        if not self.affected:
            return 0.0
        return sum(self.affected.values()) / len(self.affected)


def simulate_leak(
    engine: PropagationEngine,
    origin: int,
    leaker: int,
    vantage_points: tuple[int, ...],
    route_class: RouteClass = RouteClass(),
    leak_route_class: RouteClass | None = None,
) -> LeakOutcome:
    """Simulate ``leaker`` leaking its route toward ``origin`` upward.

    ``route_class`` is the announcement's own validity (used for the
    baseline propagation).  ``leak_route_class`` is how import filters see
    the *leaked* copy: a leaked prefix is absent from the leaker's
    registered announcement set, so IRR-derived prefix-lists classify it
    as invalid even when the origin's own announcement is clean — pass
    ``RouteClass(irr_invalid=True)`` to model that cascading mismatch.
    Defaults to ``route_class``.

    Raises :class:`ReproError` when the leaker has no route to leak, or
    when its route is customer-learned (re-exporting a customer route is
    legitimate, not a leak).
    """
    if leaker == origin:
        raise ReproError("the origin cannot leak its own route")
    if leak_route_class is None:
        leak_route_class = route_class
    baseline = engine.propagate(origin, route_class)
    leaker_route = baseline.get(leaker)
    if leaker_route is None:
        raise ReproError(f"AS{leaker} has no route toward AS{origin}")
    if leaker_route.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
        raise ReproError(
            "leaker's route is customer-learned; exporting it is not a leak"
        )

    # Propagate the leaked announcement: seed the leaker's providers and
    # peers as if the leaker's path were a customer route, then let
    # valley-free propagation continue from there.
    leaked: dict[int, Route] = {leaker: Route(RouteKind.CUSTOMER, leaker_route.path)}
    frontier = [leaker]
    while frontier:
        next_frontier = []
        for holder in frontier:
            holder_route = leaked[holder]
            for provider in sorted(engine.topology.providers_of(holder)):
                if provider in leaked or provider in holder_route.path:
                    continue
                if not engine.policy_of(provider).accepts(
                    leak_route_class, NeighborKind.CUSTOMER,
                    neighbor=holder, importer=provider,
                ):
                    continue
                leaked[provider] = Route(
                    RouteKind.CUSTOMER, (provider,) + holder_route.path
                )
                next_frontier.append(provider)
        frontier = next_frontier
    # One peer hop off any leaked customer route, then downward only.
    peer_seeded: dict[int, Route] = {}
    for holder, holder_route in leaked.items():
        for peer in sorted(engine.topology.peers_of(holder)):
            if peer in leaked or peer in peer_seeded or peer in holder_route.path:
                continue
            if not engine.policy_of(peer).accepts(
                leak_route_class, NeighborKind.PEER
            ):
                continue
            peer_seeded[peer] = Route(
                RouteKind.PEER, (peer,) + holder_route.path
            )
    leaked.update(peer_seeded)

    # Downward propagation: every AS holding the leaked route exports it
    # to customers (providers export everything), breadth-first.
    frontier = sorted(leaked)
    while frontier:
        candidates: dict[int, list[int]] = {}
        for holder in frontier:
            for customer in engine.topology.customers_of(holder):
                if customer in leaked:
                    continue
                candidates.setdefault(customer, []).append(holder)
        frontier = []
        for customer, holders in candidates.items():
            if not engine.policy_of(customer).accepts(
                leak_route_class, NeighborKind.PROVIDER
            ):
                continue
            best = min(
                holders, key=lambda h: (leaked[h].length, h)
            )
            if customer in leaked[best].path:
                continue
            leaked[customer] = Route(
                RouteKind.PROVIDER, (customer,) + leaked[best].path
            )
            frontier.append(customer)

    affected: dict[int, bool] = {}
    for vantage_point in vantage_points:
        leak_route = leaked.get(vantage_point)
        normal_route = baseline.get(vantage_point)
        if leak_route is None:
            affected[vantage_point] = False
        elif normal_route is None:
            affected[vantage_point] = True
        else:
            affected[vantage_point] = (
                int(leak_route.kind),
                leak_route.length,
                leak_route.path,
            ) < (
                int(normal_route.kind),
                normal_route.length,
                normal_route.path,
            )
    return LeakOutcome(
        origin=origin,
        leaker=leaker,
        leaked_path=leaker_route.path,
        affected=affected,
    )
