"""BGP announcement and RIB-entry value types.

An :class:`Announcement` is what an origin AS injects into the routing
system: a prefix plus the originating ASN.  A :class:`RibEntry` is what a
route-collector vantage point ends up with after propagation: the
announcement plus the AS path from the vantage point to the origin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.asn import format_as_path, strip_prepending, validate_asn
from repro.net.prefix import Prefix

__all__ = ["Announcement", "RibEntry"]


@dataclass(frozen=True)
class Announcement:
    """A (prefix, origin AS) pair injected into BGP."""

    prefix: Prefix
    origin: int

    def __post_init__(self) -> None:
        validate_asn(self.origin)

    def __str__(self) -> str:
        return f"{self.prefix} origin AS{self.origin}"


@dataclass(frozen=True)
class RibEntry:
    """One route in a vantage point's table.

    ``path`` runs from the vantage point (first element) to the origin
    (last element), matching the AS_PATH a collector would record.
    """

    vantage_point: int
    prefix: Prefix
    origin: int
    path: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("empty AS path")
        if self.path[0] != self.vantage_point:
            raise ValueError(
                f"path {self.path} does not start at vantage point "
                f"AS{self.vantage_point}"
            )
        if self.path[-1] != self.origin:
            raise ValueError(
                f"path {self.path} does not end at origin AS{self.origin}"
            )

    @property
    def transit_ases(self) -> tuple[int, ...]:
        """ASes on the path excluding the vantage point and origin."""
        return strip_prepending(self.path)[1:-1]

    def __str__(self) -> str:
        return f"{self.prefix} via {format_as_path(self.path)}"
