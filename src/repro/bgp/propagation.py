"""Valley-free (Gao–Rexford) BGP route propagation.

Given an origin AS, the engine computes the route every other AS selects,
honouring the standard export rules:

* an AS exports routes learned from customers (and its own) to everyone;
* routes learned from peers or providers are exported only to customers.

and the standard selection preference: customer-learned > peer-learned >
provider-learned, then shortest AS path, then lowest next-hop ASN.

That policy structure admits the classic three-phase computation:

1. **Customer routes** propagate "up" from the origin along
   customer→provider edges (breadth-first, so paths are shortest).
2. **Peer routes** appear at peers of ASes holding customer routes.
3. **Provider routes** propagate "down"; we compute them *lazily* per
   queried AS as a memoised best-over-providers recursion, because the
   measurement pipeline only ever needs routes at collector vantage
   points — this is what makes whole-Internet propagation tractable in
   pure Python.

Import filtering (ROV, MANRS Action 1) is applied at each acceptance step
using the per-AS :class:`~repro.bgp.policy.ASPolicy`.

Two fast paths keep full-table collection affordable:

* **Effective-filter signatures.**  Before propagating a
  :class:`~repro.bgp.policy.RouteClass`, the engine resolves the class
  against every policy into three small tables (ASes dropping the class
  everywhere, at peer sessions, or on some customer sessions).  Route
  classes that resolve to *identical* tables provably propagate
  identically — see DESIGN.md §"Memoisation soundness" — so they share
  one signature id, and the hot loops test set membership instead of
  calling :meth:`~repro.bgp.policy.ASPolicy.accepts` per neighbour.
* **Result memoisation.**  ``paths_to`` results are cached in a bounded
  LRU keyed by ``(origin, signature id, vantage points)``; repeated
  snapshots (timelines, counterfactual reruns, benchmarks) hit the cache
  instead of re-propagating.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Mapping

from repro import config as _config
from repro import obs
from repro.bgp.policy import ASPolicy, RouteClass, covers_session
from repro.errors import TopologyError
from repro.kernels.csr import CollectionPlan, batch_paths
from repro.topology.model import ASTopology

__all__ = ["RouteKind", "Route", "PropagationEngine"]

_DEFAULT_POLICY = ASPolicy()

#: Default bound on the per-engine ``paths_to`` memo (entries, not bytes;
#: each entry holds one path tuple per vantage point).  The default is a
#: floor, not a ceiling: collection grows it to the observed route-group
#: count (see :meth:`PropagationEngine.ensure_cache_capacity`) so one
#: snapshot's working set never thrashes the memo.  An explicit
#: ``paths_cache_size`` argument or a ``REPRO_PATHS_CACHE`` environment
#: value pins the bound instead.
DEFAULT_PATHS_CACHE_SIZE = 8192


class _ClassFilters:
    """One route class resolved against every AS policy.

    ``drops_everywhere`` — ASes that refuse the class from any neighbour
    (ROV deployments when the class is RPKI Invalid).
    ``drops_peers`` — ASes refusing the class over peer sessions
    (superset of ``drops_everywhere``).
    ``customer_filters`` — importer AS → ``(coverage, unfiltered
    customers)`` for ASes whose customer sessions filter the class.
    """

    __slots__ = ("drops_everywhere", "drops_peers", "customer_filters", "signature")

    def __init__(
        self,
        drops_everywhere: frozenset[int],
        drops_peers: frozenset[int],
        customer_filters: dict[int, tuple[float, frozenset[int]]],
    ):
        self.drops_everywhere = drops_everywhere
        self.drops_peers = drops_peers
        self.customer_filters = customer_filters
        #: Canonical hashable form: equal signatures ⇒ identical propagation.
        self.signature = (
            tuple(sorted(drops_everywhere)),
            tuple(sorted(drops_peers)),
            tuple(
                (asn, coverage, tuple(sorted(unfiltered)))
                for asn, (coverage, unfiltered) in sorted(customer_filters.items())
            ),
        )


class RouteKind(IntEnum):
    """How an AS learned its best route (lower is more preferred)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True, slots=True)
class Route:
    """The best route one AS holds toward an origin.

    ``path`` runs from the holding AS (first element) to the origin (last
    element).
    """

    kind: RouteKind
    path: tuple[int, ...]

    @property
    def length(self) -> int:
        """AS-path length in hops (edges, not nodes)."""
        return len(self.path) - 1


class PropagationEngine:
    """Computes per-origin routing outcomes over a fixed topology.

    The engine is immutable with respect to the topology and policies it
    was built with; :meth:`propagate` calls are independent, so one engine
    can serve many origins (and many filter classes per origin).
    """

    def __init__(
        self,
        topology: ASTopology,
        policies: Mapping[int, ASPolicy] | None = None,
        paths_cache_size: int | None = None,
    ):
        self._topology = topology
        policies = policies or {}
        # Freeze adjacency into plain dict/tuple structures: propagation is
        # the hot loop and must not pay frozenset-copy costs per call.
        self._providers: dict[int, tuple[int, ...]] = {}
        self._customers: dict[int, tuple[int, ...]] = {}
        self._peers: dict[int, tuple[int, ...]] = {}
        self._policies: dict[int, ASPolicy] = {}
        for asn in topology.asns:
            self._providers[asn] = tuple(sorted(topology.providers_of(asn)))
            self._customers[asn] = tuple(sorted(topology.customers_of(asn)))
            self._peers[asn] = tuple(sorted(topology.peers_of(asn)))
            self._policies[asn] = policies.get(asn, _DEFAULT_POLICY)
        # An explicit size (argument or the runtime config's paths_cache,
        # fed by REPRO_PATHS_CACHE) is pinned; otherwise the default acts
        # as a floor that collection may grow.
        if paths_cache_size is None:
            paths_cache_size = _config.current().paths_cache
        if paths_cache_size is None:
            self._paths_cache_size = DEFAULT_PATHS_CACHE_SIZE
            self._cache_pinned = False
        else:
            self._paths_cache_size = paths_cache_size
            self._cache_pinned = True
        self._init_caches()

    def _init_caches(self) -> None:
        # route class (as a bit pair) → resolved filter tables
        self._class_filters: dict[tuple[bool, bool], _ClassFilters] = {}
        # canonical signature → small interned id shared by equal classes
        self._signature_ids: dict[tuple, int] = {}
        # route class (as a bit pair) → interned id; avoids rehashing the
        # (potentially huge) signature tuple on every paths_to call
        self._class_sig_ids: dict[tuple[bool, bool], int] = {}
        # (origin, signature id, vantage tuple) → paths mapping
        self._paths_cache: OrderedDict[tuple, dict[int, tuple[int, ...]]] = (
            OrderedDict()
        )
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        # target tuple → its transitive provider closure (see _closure_of)
        self._target_closures: dict[tuple[int, ...], frozenset[int]] = {}
        # target tuple → provider-first ordering of the closure, or None
        # when the closure has a provider cycle (see _closure_order_of)
        self._target_orders: dict[
            tuple[int, ...], tuple[int, ...] | None
        ] = {}
        # vantage tuple → frozen batch-collection slot arrays
        self._batch_plans: dict[tuple[int, ...], CollectionPlan] = {}

    def __getstate__(self) -> dict:
        # Workers rebuild caches locally; shipping a warm memo would bloat
        # the pickle without changing any result.
        state = self.__dict__.copy()
        for transient in (
            "_class_filters",
            "_signature_ids",
            "_class_sig_ids",
            "_paths_cache",
            "_cache_hits",
            "_cache_misses",
            "_cache_evictions",
            "_target_closures",
            "_target_orders",
            "_batch_plans",
        ):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_caches()

    @property
    def topology(self) -> ASTopology:
        """The topology this engine propagates over."""
        return self._topology

    def policy_of(self, asn: int) -> ASPolicy:
        """The import policy the engine applies at ``asn``."""
        return self._policies[asn]

    # -- route-class resolution and memoisation ------------------------------

    def class_filters(self, route_class: RouteClass) -> _ClassFilters:
        """Resolve ``route_class`` against every policy (cached).

        The tables capture *everything* :meth:`ASPolicy.accepts` can do
        with this class, so propagation needs no policy calls afterwards.
        """
        key = (route_class.rpki_invalid, route_class.irr_invalid)
        filters = self._class_filters.get(key)
        if filters is None:
            rpki, irr = key
            drops_everywhere: set[int] = set()
            drops_peers: set[int] = set()
            customer_filters: dict[int, tuple[float, frozenset[int]]] = {}
            if rpki or irr:
                for asn, policy in self._policies.items():
                    if rpki and policy.rov:
                        drops_everywhere.add(asn)
                        drops_peers.add(asn)
                        continue
                    if (rpki and policy.filter_peers_rpki) or (
                        irr and policy.filter_peers_irr
                    ):
                        drops_peers.add(asn)
                    if (rpki and policy.filter_customers_rpki) or (
                        irr and policy.filter_customers_irr
                    ):
                        customer_filters[asn] = (
                            policy.customer_filter_coverage,
                            policy.unfiltered_customers,
                        )
            filters = _ClassFilters(
                frozenset(drops_everywhere),
                frozenset(drops_peers),
                customer_filters,
            )
            self._class_filters[key] = filters
        return filters

    def signature_id(self, route_class: RouteClass) -> int:
        """Interned id of the class's effective-filter signature.

        Two route classes with the same id propagate identically from
        every origin (e.g. RPKI-Valid and NotFound announcements, or any
        two classes when no AS filters at all), so they share memoised
        results.
        """
        key = (route_class.rpki_invalid, route_class.irr_invalid)
        sig_id = self._class_sig_ids.get(key)
        if sig_id is None:
            signature = self.class_filters(route_class).signature
            sig_id = self._signature_ids.get(signature)
            if sig_id is None:
                sig_id = len(self._signature_ids)
                self._signature_ids[signature] = sig_id
            self._class_sig_ids[key] = sig_id
        return sig_id

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/eviction/size counters of the ``paths_to`` memo."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "size": len(self._paths_cache),
            "max_size": self._paths_cache_size,
        }

    def ensure_cache_capacity(self, entries: int) -> None:
        """Grow the ``paths_to`` memo bound to at least ``entries``.

        Collection calls this with the route-group count of the snapshot
        it is about to build, so one snapshot's keys never evict each
        other.  No-op when the bound was pinned explicitly (constructor
        argument or ``REPRO_PATHS_CACHE``) or is already large enough.
        """
        if self._cache_pinned or entries <= self._paths_cache_size:
            return
        self._paths_cache_size = entries

    def clear_cache(self) -> None:
        """Drop all memoised propagation results."""
        self._paths_cache.clear()

    def adopt_cache(self, other: "PropagationEngine") -> int:
        """Carry memoised paths over from another engine where sound.

        Cached entries transfer for route classes whose effective-filter
        signatures are identical in both engines: propagation is a pure
        function of (topology, class filters), so over the *same*
        topology an identical signature guarantees identical paths.  The
        caller is responsible for only pairing engines that share a
        topology (the delta layer uses this after a policy flip, where
        the topology is untouched and typically half the route classes
        keep their signatures).  Returns the number of entries adopted.
        """
        classes = [
            RouteClass(rpki_invalid=rpki, irr_invalid=irr)
            for rpki in (False, True)
            for irr in (False, True)
        ]
        mine = {
            self.class_filters(rc).signature: self.signature_id(rc)
            for rc in classes
        }
        id_map = {}
        for rc in classes:
            signature = other.class_filters(rc).signature
            my_id = mine.get(signature)
            if my_id is not None:
                id_map[other.signature_id(rc)] = my_id
        if not id_map:
            return 0
        self.ensure_cache_capacity(len(other._paths_cache))
        cache = self._paths_cache
        adopted = 0
        for (origin, sig_id, vantage_points), paths in other._paths_cache.items():
            my_id = id_map.get(sig_id)
            if my_id is None:
                continue
            key = (origin, my_id, vantage_points)
            if key not in cache:
                cache[key] = paths
                adopted += 1
        while len(cache) > self._paths_cache_size:
            cache.popitem(last=False)
            self._cache_evictions += 1
        obs.add("propagation.cache_adopted", adopted)
        return adopted

    # -- public API ---------------------------------------------------------

    def propagate(
        self,
        origin: int,
        route_class: RouteClass = RouteClass(),
        targets: Iterable[int] | None = None,
    ) -> dict[int, Route]:
        """Compute selected routes toward ``origin``.

        With ``targets`` given, routes at the targets are exactly those of
        a full propagation, but work off the targets' influence zone is
        skipped: peer routes (phase 2) are only materialised inside the
        targets' transitive provider closure — the only ASes whose routes
        can feed a target's provider route — and provider routes (phase 3)
        are resolved only for the targets.  Entries for ASes outside the
        targets are a by-product and callers must not rely on them.
        With ``targets=None``, every phase runs globally and the mapping
        holds the selected route of every AS that accepts one.
        """
        if origin not in self._providers:
            raise TopologyError(f"unknown origin AS{origin}")
        filters = self.class_filters(route_class)
        relevant: frozenset[int] | None = None
        if targets is not None:
            targets = tuple(targets)
            relevant = self._closure_of(targets)
        routes = self._customer_routes(origin, filters)
        self._peer_routes(routes, filters, relevant)
        if targets is not None:
            order = self._closure_order_of(targets)
            if order is not None:
                # Provider-first order: every provider of `asn` inside the
                # closure is finalised before `asn`, so one linear pass
                # replaces the recursion below with identical selections.
                providers = self._providers
                drops = filters.drops_everywhere
                routes_get = routes.get
                for asn in order:
                    if asn in routes or asn in drops:
                        continue
                    best_len = 0
                    best_route = None
                    for provider in providers[asn]:
                        route = routes_get(provider)
                        if route is None:
                            continue
                        path_len = len(route.path)
                        # providers iterate in ascending ASN order, so a
                        # strict < keeps the lowest-ASN provider on ties.
                        if best_route is None or path_len < best_len:
                            best_len = path_len
                            best_route = route
                    if best_route is not None:
                        routes[asn] = Route(
                            RouteKind.PROVIDER, (asn,) + best_route.path
                        )
                return routes
        memo: dict[int, Route | None] = {}
        if targets is None:
            pending = [asn for asn in self._providers if asn not in routes]
        else:
            pending = [asn for asn in targets if asn not in routes]
        for asn in pending:
            route = self._provider_route(asn, routes, filters, memo)
            if route is not None:
                routes[asn] = route
        return routes

    def _closure_of(self, targets: tuple[int, ...]) -> frozenset[int]:
        """Targets plus every transitive provider of a target (cached).

        Provider-route resolution at a target only ever consults routes at
        ASes in this set, so phases 2 and 3 need not look outside it.
        Collection reuses one vantage-point tuple across thousands of
        origins, so the closure is computed once per engine.
        """
        closure = self._target_closures.get(targets)
        if closure is None:
            providers = self._providers
            seen: set[int] = set()
            stack: list[int] = []
            for asn in targets:
                if asn not in providers:
                    raise TopologyError(f"unknown target AS{asn}")
                if asn not in seen:
                    seen.add(asn)
                    stack.append(asn)
            while stack:
                for provider in providers[stack.pop()]:
                    if provider not in seen:
                        seen.add(provider)
                        stack.append(provider)
            closure = frozenset(seen)
            self._target_closures[targets] = closure
        return closure

    def _closure_order_of(
        self, targets: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Provider-first ordering of the targets' closure (cached).

        Kahn's algorithm over the provider edges inside the closure; an AS
        is emitted only after all its (in-closure) providers.  Returns
        ``None`` when the closure contains a provider cycle (pathological
        hand-built topologies) — callers then fall back to the recursive
        resolution, which handles cycles.
        """
        order = self._target_orders.get(targets, False)
        if order is False:
            closure = self._closure_of(targets)
            providers = self._providers
            remaining = {
                asn: len(providers[asn]) for asn in closure
            }
            dependents: dict[int, list[int]] = {asn: [] for asn in closure}
            for asn in closure:
                for provider in providers[asn]:
                    dependents[provider].append(asn)
            ready = sorted(
                asn for asn, count in remaining.items() if count == 0
            )
            emitted: list[int] = []
            while ready:
                next_ready: list[int] = []
                for asn in ready:
                    emitted.append(asn)
                    for customer in dependents[asn]:
                        remaining[customer] -= 1
                        if remaining[customer] == 0:
                            next_ready.append(customer)
                ready = sorted(next_ready)
            order = tuple(emitted) if len(emitted) == len(closure) else None
            self._target_orders[targets] = order
        return order

    def paths_to(
        self,
        origin: int,
        vantage_points: Iterable[int],
        route_class: RouteClass = RouteClass(),
    ) -> dict[int, tuple[int, ...]]:
        """AS paths from each vantage point toward ``origin``.

        Vantage points with no route (e.g. the announcement was filtered on
        every valley-free path to them) are absent from the result.

        Results are memoised per ``(origin, filter signature, vantage
        points)`` — see the module docstring — so repeated collection over
        the same engine is close to free.
        """
        vantage_points = tuple(vantage_points)
        cache = self._paths_cache
        key = None
        if self._paths_cache_size > 0:
            key = (origin, self.signature_id(route_class), vantage_points)
            cached = cache.get(key)
            if cached is not None:
                cache.move_to_end(key)
                self._cache_hits += 1
                obs.add("propagation.cache_hits")
                return dict(cached)
            self._cache_misses += 1
            obs.add("propagation.cache_misses")
        paths = self._compute_paths(origin, route_class, vantage_points)
        if key is not None:
            cache[key] = paths
            if len(cache) > self._paths_cache_size:
                cache.popitem(last=False)
                self._cache_evictions += 1
                obs.add("propagation.cache_evictions")
            return dict(paths)
        return paths

    def _compute_paths(
        self,
        origin: int,
        route_class: RouteClass,
        vantage_points: tuple[int, ...],
    ) -> dict[int, tuple[int, ...]]:
        """One uncached ``paths_to`` resolution (shared with the batch path)."""
        if origin not in self._providers:
            raise TopologyError(f"unknown origin AS{origin}")
        filters = self.class_filters(route_class)
        order = self._closure_order_of(vantage_points)
        if order is not None:
            return self._fast_paths(origin, filters, vantage_points, order)
        routes = self.propagate(origin, route_class, targets=vantage_points)
        return {vp: routes[vp].path for vp in vantage_points if vp in routes}

    def paths_to_many(
        self,
        keys: Iterable[tuple[int, RouteClass]],
        vantage_points: Iterable[int],
    ) -> list[dict[int, tuple[int, ...]]]:
        """Batched :meth:`paths_to` over many (origin, route class) pairs.

        Phases 2–3 of every uncached key resolve together as columnar
        sweeps (:func:`repro.kernels.csr.batch_paths`); phase 1 and the
        memo bookkeeping stay scalar, replayed key by key so the cache
        contents, LRU order and hit/miss/eviction counters end up exactly
        as a ``paths_to`` loop would leave them.
        """
        keys = list(keys)
        vantage_points = tuple(vantage_points)
        order = self._closure_order_of(vantage_points)
        if order is None:
            # Provider cycle in the closure: no batch plan exists; the
            # scalar path handles it via the recursive resolution.
            return [
                self.paths_to(origin, vantage_points, route_class)
                for origin, route_class in keys
            ]
        resolved = [
            (origin, self.signature_id(route_class), route_class)
            for origin, route_class in keys
        ]
        cache = self._paths_cache
        if self._paths_cache_size <= 0:
            # Caching disabled: every call computes (and counts nothing),
            # so just batch the distinct keys and copy for duplicates.
            need = {}
            for origin, sig, route_class in resolved:
                need.setdefault((origin, sig), (origin, route_class))
            computed = self._batch_compute(need, vantage_points, order)
            results = []
            seen: set[tuple[int, int]] = set()
            for origin, sig, _ in resolved:
                paths = computed[(origin, sig)]
                if (origin, sig) in seen:
                    # Duplicate keys get independent dicts, like repeated
                    # calls of the scalar path.
                    paths = dict(paths)
                else:
                    seen.add((origin, sig))
                results.append(paths)
            return results
        need = {}
        for origin, sig, route_class in resolved:
            cache_key = (origin, sig, vantage_points)
            if cache_key not in cache and cache_key not in need:
                need[cache_key] = (origin, route_class)
        computed = self._batch_compute(need, vantage_points, order)
        results: list[dict[int, tuple[int, ...]]] = []
        for origin, sig, route_class in resolved:
            cache_key = (origin, sig, vantage_points)
            cached = cache.get(cache_key)
            if cached is not None:
                cache.move_to_end(cache_key)
                self._cache_hits += 1
                obs.add("propagation.cache_hits")
                results.append(dict(cached))
                continue
            self._cache_misses += 1
            obs.add("propagation.cache_misses")
            paths = computed.pop(cache_key, None)
            if paths is None:
                # Pre-computed entry was evicted from the memo between
                # its insertion and this reuse: recompute like the
                # scalar loop would.
                paths = self._compute_paths(origin, route_class, vantage_points)
            cache[cache_key] = paths
            if len(cache) > self._paths_cache_size:
                cache.popitem(last=False)
                self._cache_evictions += 1
                obs.add("propagation.cache_evictions")
            results.append(dict(paths))
        return results

    def _batch_compute(
        self,
        need: dict,
        vantage_points: tuple[int, ...],
        order: tuple[int, ...],
    ) -> dict:
        """Compute ``{key: paths}`` for every ``key: (origin, class)`` in
        ``need`` via the columnar phase-2/3 kernel, grouped by signature."""
        if not need:
            return {}
        plan = self._batch_plans.get(vantage_points)
        if plan is None:
            plan = CollectionPlan(
                order, vantage_points, self._peers, self._providers
            )
            self._batch_plans[vantage_points] = plan
        by_signature: dict[int, list] = defaultdict(list)
        for key, (origin, route_class) in need.items():
            if origin not in self._providers:
                raise TopologyError(f"unknown origin AS{origin}")
            # key[1] is the interned signature id, resolved by the caller.
            by_signature[key[1]].append((key, origin, route_class))
        computed = {}
        for entries in by_signature.values():
            filters = self.class_filters(entries[0][2])
            p2_keep, level_keeps = plan.filter_masks(
                filters.drops_peers, filters.drops_everywhere
            )
            bases = [
                {
                    asn: route.path
                    for asn, route in self._customer_routes(
                        origin, filters
                    ).items()
                }
                for _, origin, _ in entries
            ]
            for (key, _, _), paths in zip(
                entries, batch_paths(plan, bases, p2_keep, level_keeps)
            ):
                computed[key] = paths
        return computed

    def _fast_paths(
        self,
        origin: int,
        filters: _ClassFilters,
        targets: tuple[int, ...],
        order: tuple[int, ...],
    ) -> dict[int, tuple[int, ...]]:
        """Collection fast path: selected AS paths at ``targets`` only.

        Mirrors :meth:`propagate` with ``targets`` phase for phase but
        works on bare path tuples — route kinds are implicit in the phase
        structure (phase 1 yields customer/origin routes, closure peers
        are added from phase-1 holders only, the provider pass consumes
        anything) — so the hot loops skip :class:`Route` construction.
        """
        relevant = self._closure_of(targets)
        base = {
            asn: route.path
            for asn, route in self._customer_routes(origin, filters).items()
        }
        merged = dict(base)
        # Phase 2, restricted: closure peers of customer-route holders.
        drops_peers = filters.drops_peers
        peers_of = self._peers
        base_get = base.get
        for asn in relevant:
            if asn in base or asn in drops_peers:
                continue
            best_len = 0
            best_path = None
            for peer in peers_of[asn]:
                path = base_get(peer)
                if path is None:
                    continue
                if best_path is None or len(path) < best_len:
                    best_len = len(path)
                    best_path = path
            if best_path is not None:
                merged[asn] = (asn,) + best_path
        # Phase 3: one provider-first pass over the closure ordering.
        drops = filters.drops_everywhere
        providers = self._providers
        merged_get = merged.get
        for asn in order:
            if asn in merged or asn in drops:
                continue
            best_len = 0
            best_path = None
            for provider in providers[asn]:
                path = merged_get(provider)
                if path is None:
                    continue
                if best_path is None or len(path) < best_len:
                    best_len = len(path)
                    best_path = path
            if best_path is not None:
                merged[asn] = (asn,) + best_path
        return {vp: merged[vp] for vp in targets if vp in merged}

    # -- phase 1: customer routes -------------------------------------------

    def _customer_routes(
        self, origin: int, filters: _ClassFilters
    ) -> dict[int, Route]:
        routes: dict[int, Route] = {
            origin: Route(RouteKind.ORIGIN, (origin,))
        }
        frontier = [origin]
        drops = filters.drops_everywhere
        customer_filters = filters.customer_filters
        filtered = bool(drops) or bool(customer_filters)
        while frontier:
            # children proposing a route to each not-yet-routed provider
            candidates: defaultdict[int, list[int]] = defaultdict(list)
            for child in frontier:
                for provider in self._providers[child]:
                    if provider in routes:
                        continue
                    candidates[provider].append(child)
            frontier = []
            for provider, children in candidates.items():
                if filtered:
                    if provider in drops:
                        continue
                    session_filter = customer_filters.get(provider)
                    if session_filter is not None:
                        # A provider may filter some customer sessions but
                        # not others (partial Action 1 coverage): take the
                        # lowest-ASN child whose session passes.
                        coverage, unfiltered = session_filter
                        children = [
                            child
                            for child in children
                            if child in unfiltered
                            or not covers_session(provider, child, coverage)
                        ]
                        if not children:
                            continue
                child = min(children)
                routes[provider] = Route(
                    RouteKind.CUSTOMER, (provider,) + routes[child].path
                )
                frontier.append(provider)
        return routes

    # -- phase 2: peer routes -------------------------------------------------

    def _peer_routes(
        self,
        routes: dict[int, Route],
        filters: _ClassFilters,
        relevant: frozenset[int] | None = None,
    ) -> None:
        # Only ASes holding customer/origin routes export over peer links.
        # With ``relevant`` given, peer routes are materialised only there
        # (the selection per importer is unchanged — every exporter still
        # competes — so relevant ASes get exactly their global-run route).
        drops_peers = filters.drops_peers
        peers_of = self._peers
        if relevant is not None:
            routes_get = routes.get
            additions: list[tuple[int, int]] = []
            for asn in relevant:
                if asn in routes or asn in drops_peers:
                    continue
                best_len = 0
                best_holder = -1
                for peer in peers_of[asn]:
                    route = routes_get(peer)
                    if route is None or route.kind > RouteKind.CUSTOMER:
                        continue
                    path_len = len(route.path)
                    # peers iterate in ascending ASN order, so a strict <
                    # keeps the lowest-ASN exporter on equal-length ties.
                    if best_holder < 0 or path_len < best_len:
                        best_len = path_len
                        best_holder = peer
                if best_holder >= 0:
                    additions.append((asn, best_holder))
            for asn, holder in additions:
                routes[asn] = Route(RouteKind.PEER, (asn,) + routes[holder].path)
            return
        candidates: dict[int, tuple[int, int]] = {}
        for holder, route in routes.items():
            if route.kind not in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
                continue
            key = (len(route.path) - 1, holder)
            for peer in peers_of[holder]:
                if peer in routes or peer in drops_peers:
                    continue
                best = candidates.get(peer)
                if best is None or key < best:
                    candidates[peer] = key
        for peer, (_, holder) in candidates.items():
            routes[peer] = Route(RouteKind.PEER, (peer,) + routes[holder].path)

    # -- phase 3: provider routes (lazy) --------------------------------------

    def _provider_route(
        self,
        asn: int,
        routes: dict[int, Route],
        filters: _ClassFilters,
        memo: dict[int, Route | None],
    ) -> Route | None:
        if asn in memo:
            return memo[asn]
        # Guard against provider cycles in pathological topologies: mark
        # in-progress as unreachable; a cyclic chain cannot yield a route.
        memo[asn] = None
        if asn in filters.drops_everywhere:
            return None
        best: tuple[int, int] | None = None
        best_route: Route | None = None
        for provider in self._providers[asn]:
            provider_route = routes.get(provider)
            if provider_route is None:
                provider_route = self._provider_route(
                    provider, routes, filters, memo
                )
            if provider_route is None:
                continue
            key = (len(provider_route.path) - 1, provider)
            if best is None or key < best:
                best = key
                best_route = provider_route
        if best_route is None:
            return None
        result = Route(RouteKind.PROVIDER, (asn,) + best_route.path)
        memo[asn] = result
        return result
