"""Valley-free (Gao–Rexford) BGP route propagation.

Given an origin AS, the engine computes the route every other AS selects,
honouring the standard export rules:

* an AS exports routes learned from customers (and its own) to everyone;
* routes learned from peers or providers are exported only to customers.

and the standard selection preference: customer-learned > peer-learned >
provider-learned, then shortest AS path, then lowest next-hop ASN.

That policy structure admits the classic three-phase computation:

1. **Customer routes** propagate "up" from the origin along
   customer→provider edges (breadth-first, so paths are shortest).
2. **Peer routes** appear at peers of ASes holding customer routes.
3. **Provider routes** propagate "down"; we compute them *lazily* per
   queried AS as a memoised best-over-providers recursion, because the
   measurement pipeline only ever needs routes at collector vantage
   points — this is what makes whole-Internet propagation tractable in
   pure Python.

Import filtering (ROV, MANRS Action 1) is applied at each acceptance step
using the per-AS :class:`~repro.bgp.policy.ASPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Mapping

from repro.bgp.policy import ASPolicy, NeighborKind, RouteClass
from repro.errors import TopologyError
from repro.topology.model import ASTopology

__all__ = ["RouteKind", "Route", "PropagationEngine"]

_DEFAULT_POLICY = ASPolicy()


class RouteKind(IntEnum):
    """How an AS learned its best route (lower is more preferred)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """The best route one AS holds toward an origin.

    ``path`` runs from the holding AS (first element) to the origin (last
    element).
    """

    kind: RouteKind
    path: tuple[int, ...]

    @property
    def length(self) -> int:
        """AS-path length in hops (edges, not nodes)."""
        return len(self.path) - 1


class PropagationEngine:
    """Computes per-origin routing outcomes over a fixed topology.

    The engine is immutable with respect to the topology and policies it
    was built with; :meth:`propagate` calls are independent, so one engine
    can serve many origins (and many filter classes per origin).
    """

    def __init__(
        self,
        topology: ASTopology,
        policies: Mapping[int, ASPolicy] | None = None,
    ):
        self._topology = topology
        policies = policies or {}
        # Freeze adjacency into plain dict/tuple structures: propagation is
        # the hot loop and must not pay frozenset-copy costs per call.
        self._providers: dict[int, tuple[int, ...]] = {}
        self._customers: dict[int, tuple[int, ...]] = {}
        self._peers: dict[int, tuple[int, ...]] = {}
        self._policies: dict[int, ASPolicy] = {}
        for asn in topology.asns:
            self._providers[asn] = tuple(sorted(topology.providers_of(asn)))
            self._customers[asn] = tuple(sorted(topology.customers_of(asn)))
            self._peers[asn] = tuple(sorted(topology.peers_of(asn)))
            self._policies[asn] = policies.get(asn, _DEFAULT_POLICY)

    @property
    def topology(self) -> ASTopology:
        """The topology this engine propagates over."""
        return self._topology

    def policy_of(self, asn: int) -> ASPolicy:
        """The import policy the engine applies at ``asn``."""
        return self._policies[asn]

    # -- public API ---------------------------------------------------------

    def propagate(
        self,
        origin: int,
        route_class: RouteClass = RouteClass(),
        targets: Iterable[int] | None = None,
    ) -> dict[int, Route]:
        """Compute selected routes toward ``origin``.

        With ``targets`` given, provider routes (phase 3) are resolved only
        for those ASes; the returned mapping contains every AS that holds a
        customer/peer route plus any targets reachable via provider routes.
        With ``targets=None``, provider routes are resolved for every AS.
        """
        if origin not in self._providers:
            raise TopologyError(f"unknown origin AS{origin}")
        routes = self._customer_routes(origin, route_class)
        self._peer_routes(routes, route_class)
        memo: dict[int, Route | None] = {}
        if targets is None:
            pending = [asn for asn in self._providers if asn not in routes]
        else:
            pending = [asn for asn in targets if asn not in routes]
        for asn in pending:
            if asn not in self._providers:
                raise TopologyError(f"unknown target AS{asn}")
            route = self._provider_route(asn, routes, route_class, memo)
            if route is not None:
                routes[asn] = route
        return routes

    def paths_to(
        self,
        origin: int,
        vantage_points: Iterable[int],
        route_class: RouteClass = RouteClass(),
    ) -> dict[int, tuple[int, ...]]:
        """AS paths from each vantage point toward ``origin``.

        Vantage points with no route (e.g. the announcement was filtered on
        every valley-free path to them) are absent from the result.
        """
        vantage_points = list(vantage_points)
        routes = self.propagate(origin, route_class, targets=vantage_points)
        return {
            vp: routes[vp].path for vp in vantage_points if vp in routes
        }

    # -- phase 1: customer routes -------------------------------------------

    def _customer_routes(
        self, origin: int, route_class: RouteClass
    ) -> dict[int, Route]:
        routes: dict[int, Route] = {
            origin: Route(RouteKind.ORIGIN, (origin,))
        }
        frontier = [origin]
        filtered = route_class.rpki_invalid or route_class.irr_invalid
        while frontier:
            # children proposing a route to each not-yet-routed provider
            candidates: dict[int, list[int]] = {}
            for child in frontier:
                for provider in self._providers[child]:
                    if provider in routes:
                        continue
                    candidates.setdefault(provider, []).append(child)
            frontier = []
            for provider, children in candidates.items():
                policy = self._policies[provider]
                if filtered:
                    # A provider may filter some customer sessions but not
                    # others (partial Action 1 coverage): take the lowest-
                    # ASN child whose session passes the import policy.
                    children = [
                        child
                        for child in children
                        if policy.accepts(
                            route_class,
                            NeighborKind.CUSTOMER,
                            neighbor=child,
                            importer=provider,
                        )
                    ]
                    if not children:
                        continue
                child = min(children)
                routes[provider] = Route(
                    RouteKind.CUSTOMER, (provider,) + routes[child].path
                )
                frontier.append(provider)
        return routes

    # -- phase 2: peer routes -------------------------------------------------

    def _peer_routes(
        self, routes: dict[int, Route], route_class: RouteClass
    ) -> None:
        # Only ASes holding customer/origin routes export over peer links.
        candidates: dict[int, tuple[int, int]] = {}
        for holder, route in routes.items():
            if route.kind not in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
                continue
            key = (route.length, holder)
            for peer in self._peers[holder]:
                if peer in routes:
                    continue
                best = candidates.get(peer)
                if best is None or key < best:
                    candidates[peer] = key
        for peer, (_, holder) in candidates.items():
            policy = self._policies[peer]
            if not policy.accepts(route_class, NeighborKind.PEER):
                continue
            routes[peer] = Route(RouteKind.PEER, (peer,) + routes[holder].path)

    # -- phase 3: provider routes (lazy) --------------------------------------

    def _provider_route(
        self,
        asn: int,
        routes: dict[int, Route],
        route_class: RouteClass,
        memo: dict[int, Route | None],
    ) -> Route | None:
        if asn in memo:
            return memo[asn]
        # Guard against provider cycles in pathological topologies: mark
        # in-progress as unreachable; a cyclic chain cannot yield a route.
        memo[asn] = None
        policy = self._policies[asn]
        if not policy.accepts(route_class, NeighborKind.PROVIDER):
            return None
        best: tuple[int, int] | None = None
        best_route: Route | None = None
        for provider in self._providers[asn]:
            provider_route = routes.get(provider)
            if provider_route is None:
                provider_route = self._provider_route(
                    provider, routes, route_class, memo
                )
            if provider_route is None:
                continue
            key = (provider_route.length, provider)
            if best is None or key < best:
                best = key
                best_route = provider_route
        if best_route is None:
            return None
        result = Route(RouteKind.PROVIDER, (asn,) + best_route.path)
        memo[asn] = result
        return result
