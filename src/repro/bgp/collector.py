"""Route collectors: the RouteViews / RIPE RIS substitute.

A collector has a set of *vantage points* (peer ASes exporting their full
tables).  :func:`collect_rib` runs propagation for every announcement and
records the AS path each vantage point selects, producing a
:class:`RibSnapshot` — the raw material for the prefix2as dataset and the
IHR pipeline.

Announcements sharing (origin AS, filter class) propagate identically, so
the snapshot stores one :class:`RouteGroup` per such pair — paths are kept
once per group rather than once per prefix, which keeps full-table
collection affordable in both time and memory.

Real collectors see the Internet through a limited, biased set of vantage
points (mostly large transit networks); §11 of the paper calls this out as
the main limitation.  :func:`select_vantage_points` reproduces that bias:
all large transits, a sample of mediums, and a few edge networks.

Collection parallelises across (origin, filter-class) groups: with
``REPRO_JOBS=N`` (or an explicit ``jobs=`` argument) the per-origin
propagation fans out over a process pool.  Workers receive a pickled
engine once, results are reassembled in the same deterministic order the
serial path uses, so parallel and serial snapshots are identical.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import config as _config
from repro import kernels, obs
from repro.bgp.announcement import Announcement, RibEntry
from repro.config import RuntimeConfig
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.net.prefix import Prefix
from repro.shard import (
    ColumnAccumulator,
    SpillError,
    check_shard_manifests,
    pool_map_consume,
    resolve_build_budget,
    resolve_shards,
    shard_manifest,
    split_evenly,
)
from repro.topology.classify import SizeClass, classify_all
from repro.topology.model import ASTopology

__all__ = ["RouteGroup", "RibSnapshot", "collect_rib", "select_vantage_points"]

log = logging.getLogger(__name__)

#: Below this many (origin, class) groups the pool overhead cannot pay
#: for itself; collection stays serial regardless of ``jobs``.
MIN_PARALLEL_GROUPS = 256


@dataclass(frozen=True)
class RouteGroup:
    """Routes for all prefixes of one (origin, filter-class) pair.

    ``paths`` maps each vantage point that selected a route to its AS path
    (vantage point first, origin last).  Vantage points missing from the
    mapping did not receive the announcement — typically because filters
    dropped it on every valley-free path.
    """

    origin: int
    route_class: RouteClass
    prefixes: tuple[Prefix, ...]
    paths: dict[int, tuple[int, ...]]


@dataclass
class RibSnapshot:
    """All routes observed by the collector's vantage points.

    Lookup helpers are backed by lazily built caches (an ``(origin,
    prefix) → groups`` index for :meth:`paths_for` and a materialised
    visible-announcement set).  The caches key off ``len(groups)``:
    appending groups invalidates them, which covers every mutation the
    pipeline performs (``RouteGroup`` itself is frozen).
    """

    vantage_points: tuple[int, ...]
    groups: list[RouteGroup]
    _group_index: dict[tuple[int, Prefix], list[RouteGroup]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _visible: frozenset[Announcement] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _cached_group_count: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    def iter_entries(self) -> Iterator[RibEntry]:
        """Expand groups into per-(vantage point, prefix) RIB entries."""
        for group in self.groups:
            for prefix in group.prefixes:
                for vantage_point, path in group.paths.items():
                    yield RibEntry(
                        vantage_point=vantage_point,
                        prefix=prefix,
                        origin=group.origin,
                        path=path,
                    )

    def _refresh_caches(self) -> None:
        if self._cached_group_count == len(self.groups):
            return
        index: dict[tuple[int, Prefix], list[RouteGroup]] = {}
        visible: set[Announcement] = set()
        for group in self.groups:
            for prefix in group.prefixes:
                index.setdefault((group.origin, prefix), []).append(group)
                if group.paths:
                    visible.add(Announcement(prefix, group.origin))
        self._group_index = index
        self._visible = frozenset(visible)
        self._cached_group_count = len(self.groups)

    @property
    def visible_announcements(self) -> set[Announcement]:
        """Announcements seen by at least one vantage point."""
        self._refresh_caches()
        return set(self._visible or ())

    def paths_for(self, announcement: Announcement) -> list[tuple[int, ...]]:
        """Every vantage-point path recorded for one announcement."""
        self._refresh_caches()
        assert self._group_index is not None
        groups = self._group_index.get(
            (announcement.origin, announcement.prefix), ()
        )
        paths: list[tuple[int, ...]] = []
        for group in groups:
            paths.extend(group.paths.values())
        return paths


def select_vantage_points(
    topology: ASTopology,
    n_medium: int = 25,
    n_small: int = 5,
    seed: int = 0,
) -> tuple[int, ...]:
    """Choose a RouteViews-like vantage-point set.

    Every large AS peers with the collector (as the big transits do in
    reality), plus ``n_medium`` mediums and ``n_small`` edge networks.
    """
    rng = np.random.default_rng(seed)
    sizes = classify_all(topology)
    # Sorted explicitly: inheriting dict-iteration order from classify_all
    # would tie the rng.choice draw to topology insertion order, making
    # vantage-point selection fragile across refactors and numpy versions.
    larges = sorted(asn for asn, size in sizes.items() if size is SizeClass.LARGE)
    mediums = sorted(asn for asn, size in sizes.items() if size is SizeClass.MEDIUM)
    smalls = sorted(asn for asn, size in sizes.items() if size is SizeClass.SMALL)
    chosen = list(larges)
    if mediums:
        count = min(n_medium, len(mediums))
        chosen.extend(int(a) for a in rng.choice(mediums, size=count, replace=False))
    if smalls:
        count = min(n_small, len(smalls))
        chosen.extend(int(a) for a in rng.choice(smalls, size=count, replace=False))
    return tuple(sorted(set(chosen)))


def collect_rib(
    engine: PropagationEngine,
    announcements: Iterable[tuple[Announcement, RouteClass]],
    vantage_points: Sequence[int],
    jobs: int | None = None,
    shards: int | None = None,
    runtime: RuntimeConfig | None = None,
) -> RibSnapshot:
    """Propagate every announcement and record vantage-point routes.

    ``runtime`` installs a :class:`repro.config.RuntimeConfig` for the
    duration of the call; ``jobs``/``shards`` arguments still win over
    it when given explicitly.

    ``jobs`` (default: the runtime config, whose fallback is the
    ``REPRO_JOBS`` environment variable, else serial) fans the per-group
    propagation across worker processes.  The output is identical either
    way: groups are keyed and emitted in one deterministic order, and
    each group's paths depend only on (origin, route class, vantage
    points).

    ``shards`` (default: the runtime config / ``REPRO_SHARDS``, else 1)
    instead splits the *vantage points* into contiguous chunks, each
    propagated by a worker that emits packed path columns; the driver
    merges the column shards in shard order, which reproduces the serial
    vantage-point iteration order exactly — see DESIGN §13 for the
    determinism argument.
    """
    with _config.use(runtime):
        return _collect_rib(engine, announcements, vantage_points, jobs, shards)


def _collect_rib(
    engine: PropagationEngine,
    announcements: Iterable[tuple[Announcement, RouteClass]],
    vantage_points: Sequence[int],
    jobs: int | None,
    shards: int | None,
) -> RibSnapshot:
    grouped: dict[tuple[int, RouteClass], list[Prefix]] = {}
    for announcement, route_class in announcements:
        grouped.setdefault((announcement.origin, route_class), []).append(
            announcement.prefix
        )
    keys = sorted(
        grouped,
        key=lambda key: (key[0], key[1].rpki_invalid, key[1].irr_invalid),
    )
    vantage_points = tuple(vantage_points)
    jobs = obs.resolve_jobs(jobs)
    obs.add("collect.route_groups", len(keys))
    obs.gauge("collect.jobs", jobs)
    obs.gauge("collect.vantage_points", len(vantage_points))
    obs.annotate(groups=len(keys), jobs=jobs)
    # Size the propagation memo to this snapshot's working set before any
    # lookups (and before workers inherit the engine), so one snapshot's
    # groups never evict each other.
    engine.ensure_cache_capacity(len(keys))
    shards = resolve_shards(shards)
    paths_by_key = None
    if shards > 1 and len(vantage_points) > 1:
        paths_by_key = _sharded_paths(
            engine, keys, vantage_points, shards, jobs
        )
    if paths_by_key is None and jobs > 1 and len(keys) >= MIN_PARALLEL_GROUPS:
        paths_by_key = _parallel_paths(engine, keys, vantage_points, jobs)
    if paths_by_key is None:
        if kernels.use_numpy():
            paths_by_key = engine.paths_to_many(keys, vantage_points)
        else:
            paths_by_key = [
                engine.paths_to(origin, vantage_points, route_class)
                for origin, route_class in keys
            ]
    obs.add(
        "collect.routes_propagated",
        sum(len(paths) for paths in paths_by_key),
    )
    groups = [
        RouteGroup(
            origin=origin,
            route_class=route_class,
            prefixes=tuple(sorted(set(grouped[(origin, route_class)]))),
            paths=paths,
        )
        for (origin, route_class), paths in zip(keys, paths_by_key)
    ]
    return RibSnapshot(vantage_points=vantage_points, groups=groups)


# Worker-process state, installed once per worker by the pool initializer
# (cheaper than pickling the engine into every task).
_worker_engine: PropagationEngine | None = None
_worker_vantage_points: tuple[int, ...] = ()
_worker_keys: list[tuple[int, RouteClass]] = []


def _init_worker(
    engine: PropagationEngine, vantage_points: tuple[int, ...]
) -> None:
    global _worker_engine, _worker_vantage_points
    _worker_engine = engine
    _worker_vantage_points = vantage_points


def _propagate_chunk(
    keys: list[tuple[int, RouteClass]],
) -> list[dict[int, tuple[int, ...]]]:
    assert _worker_engine is not None
    return [
        _worker_engine.paths_to(origin, _worker_vantage_points, route_class)
        for origin, route_class in keys
    ]


def _init_shard_worker(
    engine: PropagationEngine, keys: list[tuple[int, RouteClass]]
) -> None:
    global _worker_engine, _worker_keys
    _worker_engine = engine
    _worker_keys = keys


def _propagate_vp_shard(task: tuple) -> tuple[dict, dict[str, np.ndarray]]:
    """Propagate every route group onto one vantage-point chunk.

    Emits a column shard: per-key selected vantage points plus their
    flattened AS paths, with offset arrays delimiting both levels.  The
    within-chunk entry order is the chunk's vantage-point order, exactly
    as ``paths_to`` iterates it.
    """
    index, total, vp_chunk = task
    assert _worker_engine is not None
    vp_ids: list[int] = []
    key_offsets = np.zeros(len(_worker_keys) + 1, dtype=np.int64)
    path_values: list[int] = []
    path_offsets: list[int] = [0]
    for slot, (origin, route_class) in enumerate(_worker_keys):
        paths = _worker_engine.paths_to(origin, vp_chunk, route_class)
        for vantage_point, path in paths.items():
            vp_ids.append(vantage_point)
            path_values.extend(path)
            path_offsets.append(len(path_values))
        key_offsets[slot + 1] = len(vp_ids)
    columns = {
        "vp": np.asarray(vp_ids, dtype=np.int64),
        "key_offsets": key_offsets,
        "path_values": np.asarray(path_values, dtype=np.int64),
        "path_offsets": np.asarray(path_offsets, dtype=np.int64),
    }
    return shard_manifest("collect_rib", index, total, len(vp_ids)), columns


def _sharded_paths(
    engine: PropagationEngine,
    keys: list[tuple[int, RouteClass]],
    vantage_points: tuple[int, ...],
    shards: int,
    jobs: int,
) -> list[dict[int, tuple[int, ...]]] | None:
    """Vantage-point-sharded collection; None falls back to other paths.

    Chunks are contiguous slices of the vantage-point tuple and shards
    merge in ascending index, so per-key path dicts are populated in the
    exact order the serial ``paths_to`` inserts them — bit-identical
    snapshots at any shard count.
    """
    chunks = split_evenly(vantage_points, shards)
    total = len(chunks)
    tasks = [(index, total, tuple(chunk)) for index, chunk in enumerate(chunks)]
    obs.add("collect.vp_shards", total)
    manifests: list[dict] = []
    rows_seen: list[int] = []
    try:
        with ColumnAccumulator(
            "collect_rib", budget_bytes=resolve_build_budget()
        ) as accumulator:

            def consume(result: tuple[dict, dict[str, np.ndarray]]) -> None:
                manifest, columns = result
                manifests.append(manifest)
                # Row accounting is captured on arrival, before the block
                # may spill, so validation never forces a read-back.
                rows_seen.append(int(columns["key_offsets"][-1]))
                accumulator.append(columns)

            ok = pool_map_consume(
                _propagate_vp_shard,
                tasks,
                workers=max(jobs, 1),
                consume=consume,
                initializer=_init_shard_worker,
                initargs=(engine, keys),
            )
            if not ok:
                return None
            problems = check_shard_manifests(manifests, "collect_rib", total)
            if not problems:
                for manifest, rows in zip(manifests, rows_seen):
                    if rows != manifest["rows"]:
                        problems.append(
                            f"shard {manifest['shard']}: "
                            "row accounting mismatch"
                        )
            if problems:
                log.warning(
                    "discarding sharded collection (%s); "
                    "recomputing unsharded",
                    "; ".join(problems),
                )
                obs.add("shard.discarded")
                return None
            paths_by_key: list[dict[int, tuple[int, ...]]] = [{} for _ in keys]
            # Ascending shard index == vp order; one block resident at a
            # time, so spilled shards never re-accumulate in memory.
            for columns in accumulator.blocks():
                vp_ids = columns["vp"].tolist()
                key_offsets = columns["key_offsets"].tolist()
                path_values = columns["path_values"].tolist()
                path_offsets = columns["path_offsets"].tolist()
                for slot in range(len(keys)):
                    merged = paths_by_key[slot]
                    for entry in range(key_offsets[slot], key_offsets[slot + 1]):
                        merged[vp_ids[entry]] = tuple(
                            path_values[
                                path_offsets[entry] : path_offsets[entry + 1]
                            ]
                        )
            return paths_by_key
    except SpillError as error:
        log.warning(
            "discarding sharded collection (%s); recomputing unsharded",
            error,
        )
        obs.add("shard.discarded")
        return None


def _parallel_paths(
    engine: PropagationEngine,
    keys: list[tuple[int, RouteClass]],
    vantage_points: tuple[int, ...],
    jobs: int,
) -> list[dict[int, tuple[int, ...]]] | None:
    """Fan ``paths_to`` across a process pool; None on pool failure.

    Chunks are mapped in order, so the flattened result lines up with
    ``keys`` and collection stays bit-identical to the serial path.
    """
    chunk_size = max(1, len(keys) // (jobs * 4))
    chunks = [
        keys[start : start + chunk_size]
        for start in range(0, len(keys), chunk_size)
    ]
    obs.add("collect.parallel_chunks", len(chunks))
    obs.gauge("collect.pool_workers", jobs)
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(engine, vantage_points),
        ) as pool:
            results: list[dict[int, tuple[int, ...]]] = []
            for chunk_paths in pool.map(_propagate_chunk, chunks):
                results.extend(chunk_paths)
        return results
    except OSError:
        # No usable process pool (e.g. sandboxed /dev/shm): fall back to
        # serial rather than failing collection.
        return None
