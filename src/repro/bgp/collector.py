"""Route collectors: the RouteViews / RIPE RIS substitute.

A collector has a set of *vantage points* (peer ASes exporting their full
tables).  :func:`collect_rib` runs propagation for every announcement and
records the AS path each vantage point selects, producing a
:class:`RibSnapshot` — the raw material for the prefix2as dataset and the
IHR pipeline.

Announcements sharing (origin AS, filter class) propagate identically, so
the snapshot stores one :class:`RouteGroup` per such pair — paths are kept
once per group rather than once per prefix, which keeps full-table
collection affordable in both time and memory.

Real collectors see the Internet through a limited, biased set of vantage
points (mostly large transit networks); §11 of the paper calls this out as
the main limitation.  :func:`select_vantage_points` reproduces that bias:
all large transits, a sample of mediums, and a few edge networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.bgp.announcement import Announcement, RibEntry
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.net.prefix import Prefix
from repro.topology.classify import SizeClass, classify_all
from repro.topology.model import ASTopology

__all__ = ["RouteGroup", "RibSnapshot", "collect_rib", "select_vantage_points"]


@dataclass(frozen=True)
class RouteGroup:
    """Routes for all prefixes of one (origin, filter-class) pair.

    ``paths`` maps each vantage point that selected a route to its AS path
    (vantage point first, origin last).  Vantage points missing from the
    mapping did not receive the announcement — typically because filters
    dropped it on every valley-free path.
    """

    origin: int
    route_class: RouteClass
    prefixes: tuple[Prefix, ...]
    paths: dict[int, tuple[int, ...]]


@dataclass
class RibSnapshot:
    """All routes observed by the collector's vantage points."""

    vantage_points: tuple[int, ...]
    groups: list[RouteGroup]

    def iter_entries(self) -> Iterator[RibEntry]:
        """Expand groups into per-(vantage point, prefix) RIB entries."""
        for group in self.groups:
            for prefix in group.prefixes:
                for vantage_point, path in group.paths.items():
                    yield RibEntry(
                        vantage_point=vantage_point,
                        prefix=prefix,
                        origin=group.origin,
                        path=path,
                    )

    @property
    def visible_announcements(self) -> set[Announcement]:
        """Announcements seen by at least one vantage point."""
        visible: set[Announcement] = set()
        for group in self.groups:
            if group.paths:
                visible.update(
                    Announcement(prefix, group.origin)
                    for prefix in group.prefixes
                )
        return visible

    def paths_for(self, announcement: Announcement) -> list[tuple[int, ...]]:
        """Every vantage-point path recorded for one announcement."""
        paths: list[tuple[int, ...]] = []
        for group in self.groups:
            if group.origin == announcement.origin and (
                announcement.prefix in group.prefixes
            ):
                paths.extend(group.paths.values())
        return paths


def select_vantage_points(
    topology: ASTopology,
    n_medium: int = 25,
    n_small: int = 5,
    seed: int = 0,
) -> tuple[int, ...]:
    """Choose a RouteViews-like vantage-point set.

    Every large AS peers with the collector (as the big transits do in
    reality), plus ``n_medium`` mediums and ``n_small`` edge networks.
    """
    rng = np.random.default_rng(seed)
    sizes = classify_all(topology)
    larges = [asn for asn, size in sizes.items() if size is SizeClass.LARGE]
    mediums = [asn for asn, size in sizes.items() if size is SizeClass.MEDIUM]
    smalls = [asn for asn, size in sizes.items() if size is SizeClass.SMALL]
    chosen = list(larges)
    if mediums:
        count = min(n_medium, len(mediums))
        chosen.extend(int(a) for a in rng.choice(mediums, size=count, replace=False))
    if smalls:
        count = min(n_small, len(smalls))
        chosen.extend(int(a) for a in rng.choice(smalls, size=count, replace=False))
    return tuple(sorted(set(chosen)))


def collect_rib(
    engine: PropagationEngine,
    announcements: Iterable[tuple[Announcement, RouteClass]],
    vantage_points: Sequence[int],
) -> RibSnapshot:
    """Propagate every announcement and record vantage-point routes."""
    grouped: dict[tuple[int, RouteClass], list[Prefix]] = {}
    for announcement, route_class in announcements:
        grouped.setdefault((announcement.origin, route_class), []).append(
            announcement.prefix
        )
    groups: list[RouteGroup] = []
    for (origin, route_class), prefixes in sorted(
        grouped.items(),
        key=lambda item: (item[0][0], item[0][1].rpki_invalid, item[0][1].irr_invalid),
    ):
        paths = engine.paths_to(origin, vantage_points, route_class)
        groups.append(
            RouteGroup(
                origin=origin,
                route_class=route_class,
                prefixes=tuple(sorted(set(prefixes))),
                paths=paths,
            )
        )
    return RibSnapshot(vantage_points=tuple(vantage_points), groups=groups)
