"""IXP route servers with IRR-based ingress filtering.

The paper focuses on the ISP and CDN programs and leaves the MANRS IXP
program to future work (§12); §2.2 notes that IXPs use ``as-set`` objects
to decide which announcements to accept.  This module implements that: a
route server builds, per member, a prefix filter from the member's own
route objects plus its customer ``as-set`` (via
:func:`repro.irr.filtergen.build_prefix_filter` semantics) and drops
everything else — the IXP program's equivalent of Action 1.

Route servers at large IXPs increasingly run ROV on top of (or instead
of) IRR filtering ("Keep Your Friends Close", PAPERS.md).  Passing a
``rov`` validator enables that: RPKI-invalid announcements are rejected
before the IRR checks, for every member at once — one deployment point
covering the whole fabric.  ``irr_filtering=False`` models a transparent
route server that reflects everything (the pre-filtering baseline the
routeserver-ROV scenario compares against).  Both knobs default to the
historical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.bgp.announcement import Announcement
from repro.irr.asset import expand_as_set
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.filtergen import FilterEntry, PrefixFilter

if TYPE_CHECKING:
    from repro.rpki.rov import ROVValidator

__all__ = ["RouteServerVerdict", "RouteServerReport", "RouteServer"]


@dataclass(frozen=True)
class RouteServerVerdict:
    """One announcement's fate at the route server."""

    member: int
    announcement: Announcement
    accepted: bool
    reason: str


@dataclass
class RouteServerReport:
    """Aggregate outcome of one evaluation batch."""

    verdicts: list[RouteServerVerdict] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        """Number of accepted announcements."""
        return sum(1 for v in self.verdicts if v.accepted)

    @property
    def rejected(self) -> int:
        """Number of rejected announcements."""
        return len(self.verdicts) - self.accepted

    @property
    def acceptance_rate(self) -> float:
        """Fraction accepted (1.0 for an empty batch)."""
        if not self.verdicts:
            return 1.0
        return self.accepted / len(self.verdicts)


class RouteServer:
    """A filtering route server for one IXP.

    Each member's import filter is the union of:

    * the member's own registered route objects, and
    * the route objects of every ASN in the member's customer ``as-set``
      (named ``AS-<asn>-CUSTOMERS`` by convention, as our scenario and
      many real operators do),

    with the usual ``upto`` de-aggregation allowance.
    """

    def __init__(
        self,
        irr: IRRCollection | IRRDatabase,
        members: tuple[int, ...],
        upto: int = 24,
        rov: "ROVValidator | None" = None,
        irr_filtering: bool = True,
    ):
        self._irr = irr
        self._members = tuple(sorted(set(members)))
        self._upto = upto
        self._rov = rov
        self._irr_filtering = irr_filtering
        self._filters: dict[int, PrefixFilter] = {}
        self._allowed_origins: dict[int, frozenset[int]] = {}
        self._routes_index: dict[int, list] | None = None

    @property
    def members(self) -> tuple[int, ...]:
        """The member ASNs peering with this route server."""
        return self._members

    def filter_for(self, member: int) -> PrefixFilter:
        """The (cached) import filter applied to one member's session."""
        cached = self._filters.get(member)
        if cached is not None:
            return cached
        origins = {member} | set(
            expand_as_set(self._irr, f"AS-{member}-CUSTOMERS")
        )
        entries: list[FilterEntry] = []
        seen: set[tuple[object, int]] = set()
        for origin in sorted(origins):
            for route_object in self._routes_by_origin().get(origin, ()):
                key = (route_object.prefix, origin)
                if key in seen:
                    continue
                seen.add(key)
                prefix = route_object.prefix
                if prefix.version == 4:
                    max_length = max(prefix.length, self._upto)
                else:
                    max_length = min(prefix.length + 8, 48)
                entries.append(
                    FilterEntry(
                        prefix=prefix, max_length=max_length, origin=origin
                    )
                )
        prefix_filter = PrefixFilter(entries)
        self._filters[member] = prefix_filter
        self._allowed_origins[member] = frozenset(origins)
        return prefix_filter

    def evaluate(
        self, member: int, announcement: Announcement
    ) -> RouteServerVerdict:
        """Apply the member's filter to one announcement."""
        if member not in self._members:
            return RouteServerVerdict(
                member, announcement, False, "not a member"
            )
        if self._rov is not None:
            status = self._rov.validate(
                announcement.prefix, announcement.origin
            )
            if status.is_invalid:
                return RouteServerVerdict(
                    member,
                    announcement,
                    False,
                    f"RPKI {status.value}",
                )
        if not self._irr_filtering:
            return RouteServerVerdict(
                member, announcement, True, "transparent"
            )
        prefix_filter = self.filter_for(member)
        if announcement.origin not in self._allowed_origins[member]:
            return RouteServerVerdict(
                member,
                announcement,
                False,
                f"origin AS{announcement.origin} not in AS-{member}-CUSTOMERS",
            )
        if not prefix_filter.admits(
            announcement.prefix, origin=announcement.origin
        ):
            return RouteServerVerdict(
                member,
                announcement,
                False,
                f"{announcement.prefix} not registered for "
                f"AS{announcement.origin}",
            )
        return RouteServerVerdict(member, announcement, True, "registered")

    def evaluate_batch(
        self, batch: list[tuple[int, Announcement]]
    ) -> RouteServerReport:
        """Evaluate many (member, announcement) pairs."""
        report = RouteServerReport()
        for member, announcement in batch:
            report.verdicts.append(self.evaluate(member, announcement))
        return report

    def _routes_by_origin(self):
        if self._routes_index is None:
            databases = (
                self._irr.databases
                if isinstance(self._irr, IRRCollection)
                else [self._irr]
            )
            index: dict[int, list] = {}
            for database in databases:
                for route_object in database.all_routes():
                    index.setdefault(route_object.origin, []).append(
                        route_object
                    )
            self._routes_index = index
        return self._routes_index
