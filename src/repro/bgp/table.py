"""Routing-table derivations: the prefix2as dataset (CAIDA substitute).

CAIDA's Routeviews prefix2as files map each routed prefix to the origin
AS(es) observed at the collectors.  The paper uses them for routed address
space accounting (Figures 4b and 6) and registration completeness
(Finding 7.0).  We derive the same mapping from a :class:`RibSnapshot` and
serialise it in the upstream tab-separated format
(``<network>\t<length>\t<asn[,asn...]>``).
"""

from __future__ import annotations

import numpy as np

from repro.bgp.collector import RibSnapshot
from repro.errors import DatasetError
from repro.net.prefix import Prefix, aggregate_address_count

__all__ = [
    "Prefix2AS",
    "V4Columns",
    "serialize_prefix2as",
    "parse_prefix2as",
]


class V4Columns:
    """Columnar view of the v4 ``(origin, prefix)`` rows of a mapping.

    Rows are presorted by ``(first address, length)`` — the order the
    interval sweep in :func:`repro.net.prefix.aggregate_address_count`
    needs — so any boolean population mask selects an already-ordered
    subset and per-population address counting never re-sorts.  The
    unique-prefix columns cover the distinct ``(value, length)`` pairs;
    ``unique_inverse`` maps each row to its distinct prefix, letting
    per-prefix coverage verdicts broadcast back onto rows.
    """

    __slots__ = (
        "origins",
        "firsts",
        "lasts",
        "unique_values",
        "unique_lengths",
        "unique_inverse",
    )

    def __init__(self, origins: list[int], prefixes: list[Prefix]):
        self.origins = np.array(origins, dtype=np.int64)
        firsts = np.array([p.first for p in prefixes], dtype=np.int64)
        lasts = np.array([p.last for p in prefixes], dtype=np.int64)
        values = np.array([p.value for p in prefixes], dtype=np.uint64)
        lengths = np.array([p.length for p in prefixes], dtype=np.int64)
        order = np.lexsort((lengths, firsts))
        self.origins = self.origins[order]
        self.firsts = firsts[order]
        self.lasts = lasts[order]
        values = values[order]
        lengths = lengths[order]
        packed = self.firsts * np.int64(64) + lengths
        _, first_at, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
        self.unique_values = values[first_at]
        self.unique_lengths = lengths[first_at]
        self.unique_inverse = inverse


class Prefix2AS:
    """An immutable prefix → origin-AS mapping snapshot.

    Built from a RIB the mapping is *lazy*: :meth:`from_rib` only keeps
    a reference to the snapshot and the prefix → origins dict
    materialises on first use.  Both world builds and checkpoint
    restores construct a Prefix2AS unconditionally, while many callers
    (unit experiments, cache warms) never query it.
    """

    def __init__(self, origins: dict[Prefix, frozenset[int]]):
        self._origins: dict[Prefix, frozenset[int]] | None = dict(origins)
        self._rib: RibSnapshot | None = None
        self._by_origin: dict[int, list[Prefix]] | None = None
        self._origin_asns: list[int] | None = None
        self._v4_columns: V4Columns | None = None

    @classmethod
    def from_rib(cls, snapshot: RibSnapshot) -> "Prefix2AS":
        """Build the mapping from everything visible at the collectors."""
        mapping = cls({})
        mapping._origins = None
        mapping._rib = snapshot
        return mapping

    def _origin_map(self) -> dict[Prefix, frozenset[int]]:
        if self._origins is None:
            origins: dict[Prefix, set[int]] = {}
            for group in self._rib.groups:
                if not group.paths:
                    continue
                for prefix in group.prefixes:
                    origins.setdefault(prefix, set()).add(group.origin)
            self._origins = {p: frozenset(o) for p, o in origins.items()}
            self._rib = None
        return self._origins

    def origins_of(self, prefix: Prefix) -> frozenset[int]:
        """Observed origin ASes for ``prefix`` (empty if unrouted)."""
        return self._origin_map().get(prefix, frozenset())

    @property
    def prefixes(self) -> list[Prefix]:
        """All routed prefixes in address order."""
        return sorted(self._origin_map())

    def _origin_index(self) -> dict[int, list[Prefix]]:
        if self._by_origin is None:
            index: dict[int, list[Prefix]] = {}
            for prefix, origins in self._origin_map().items():
                for origin in origins:
                    index.setdefault(origin, []).append(prefix)
            # Sort once at index build: the saturation sweeps query
            # prefixes_of for every origin per year, and the mapping is
            # immutable, so per-call sorting was pure rework.
            for prefixes in index.values():
                prefixes.sort()
            self._by_origin = index
        return self._by_origin

    def prefixes_of(self, asn: int) -> list[Prefix]:
        """Prefixes originated by ``asn``, in address order."""
        return list(self._origin_index().get(asn, ()))

    @property
    def origin_asns(self) -> list[int]:
        """All ASNs that originate at least one prefix."""
        if self._origin_asns is None:
            self._origin_asns = sorted(self._origin_index())
        return self._origin_asns

    def v4_columns(self) -> V4Columns:
        """The columnar (and cached) view of all v4 origination rows."""
        if self._v4_columns is None:
            index = self._origin_index()
            origins: list[int] = []
            prefixes: list[Prefix] = []
            for asn in sorted(index):
                for prefix in index[asn]:
                    if prefix.version == 4:
                        origins.append(asn)
                        prefixes.append(prefix)
            self._v4_columns = V4Columns(origins, prefixes)
        return self._v4_columns

    def address_space_of(self, asns: frozenset[int] | set[int]) -> int:
        """Distinct IPv4 addresses originated by the given ASes."""
        index = self._origin_index()
        prefixes = [
            prefix
            for asn in asns
            for prefix in index.get(asn, [])
            if prefix.version == 4
        ]
        return aggregate_address_count(prefixes)

    @property
    def total_address_space(self) -> int:
        """Distinct IPv4 addresses in the whole table."""
        return aggregate_address_count(
            prefix for prefix in self._origin_map() if prefix.version == 4
        )

    def __len__(self) -> int:
        return len(self._origin_map())


def serialize_prefix2as(mapping: Prefix2AS) -> str:
    """Render the CAIDA tab-separated prefix2as format."""
    lines = []
    for prefix in mapping.prefixes:
        origins = ",".join(str(asn) for asn in sorted(mapping.origins_of(prefix)))
        lines.append(f"{prefix.network_address}\t{prefix.length}\t{origins}")
    return "\n".join(lines) + "\n"


def parse_prefix2as(text: str) -> Prefix2AS:
    """Parse the format produced by :func:`serialize_prefix2as`."""
    origins: dict[Prefix, frozenset[int]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            raise DatasetError(f"bad prefix2as record at line {line_number}")
        network, length_text, asn_text = fields
        try:
            prefix = Prefix.parse(f"{network}/{int(length_text)}")
            asns = frozenset(int(a) for a in asn_text.split(","))
        except ValueError as exc:
            raise DatasetError(
                f"bad prefix2as record at line {line_number}: {line!r}"
            ) from exc
        origins[prefix] = asns
    return Prefix2AS(origins)
