"""BGP origin-hijack simulation.

§2.1 of the paper motivates MANRS with prefix-origin hijacks.  This module
injects a hijack against a victim announcement and measures, per vantage
point, whether the hijacker or the victim wins — with and without ROV
filtering deployed.  It backs the ``rov_impact`` example and the tests
demonstrating that registration + filtering actually blunts hijacks in our
model, closing the loop between the conformance metrics and the harm they
are meant to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.bgp.announcement import Announcement
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine, RouteKind
from repro.errors import ReproError
from repro.net.prefix import Prefix

__all__ = ["HijackKind", "HijackOutcome", "simulate_hijack"]


class HijackKind(str, Enum):
    """Taxonomy (after Sermpezis et al.) restricted to origin hijacks."""

    EXACT_PREFIX = "exact"        # attacker announces the same prefix
    SUB_PREFIX = "sub_prefix"     # attacker announces a more specific


@dataclass(frozen=True)
class HijackOutcome:
    """Result of a simulated hijack.

    ``captured`` maps each vantage point to True when its traffic toward
    the victim prefix would flow to the hijacker.
    """

    kind: HijackKind
    victim: Announcement
    attacker_announcement: Announcement
    captured: dict[int, bool]

    @property
    def capture_fraction(self) -> float:
        """Fraction of vantage points routed to the hijacker."""
        if not self.captured:
            return 0.0
        return sum(self.captured.values()) / len(self.captured)


def simulate_hijack(
    engine: PropagationEngine,
    victim: Announcement,
    attacker: int,
    vantage_points: tuple[int, ...],
    kind: HijackKind = HijackKind.EXACT_PREFIX,
    hijack_route_class: RouteClass = RouteClass(),
) -> HijackOutcome:
    """Simulate ``attacker`` hijacking the victim's prefix.

    ``hijack_route_class`` expresses what validators would say about the
    attacker's announcement: with the victim's prefix covered by a correct
    ROA, an exact or sub-prefix hijack is RPKI Invalid
    (``RouteClass(rpki_invalid=True)``) and ROV-deploying ASes drop it.
    """
    if attacker == victim.origin:
        raise ReproError("attacker and victim must be distinct ASes")
    if kind is HijackKind.SUB_PREFIX:
        bits = victim.prefix.bits
        if victim.prefix.length >= bits:
            raise ReproError("cannot de-aggregate a host prefix")
        hijack_prefix: Prefix = next(victim.prefix.subnets())
    else:
        hijack_prefix = victim.prefix
    attacker_announcement = Announcement(hijack_prefix, attacker)

    victim_routes = engine.propagate(
        victim.origin, RouteClass(), targets=vantage_points
    )
    attacker_routes = engine.propagate(
        attacker, hijack_route_class, targets=vantage_points
    )

    captured: dict[int, bool] = {}
    for vantage_point in vantage_points:
        victim_route = victim_routes.get(vantage_point)
        attacker_route = attacker_routes.get(vantage_point)
        if attacker_route is None:
            captured[vantage_point] = False
        elif kind is HijackKind.SUB_PREFIX:
            # Longest-prefix match: the more specific always wins where it
            # is visible at all.
            captured[vantage_point] = True
        elif victim_route is None:
            captured[vantage_point] = True
        else:
            # Same prefix: standard best-path selection between the two.
            victim_key = _selection_key(victim_route.kind, victim_route.length, victim_route.path)
            attacker_key = _selection_key(
                attacker_route.kind, attacker_route.length, attacker_route.path
            )
            captured[vantage_point] = attacker_key < victim_key
    return HijackOutcome(
        kind=kind,
        victim=victim,
        attacker_announcement=attacker_announcement,
        captured=captured,
    )


def _selection_key(
    kind: RouteKind, length: int, path: tuple[int, ...]
) -> tuple[int, int, tuple[int, ...]]:
    """BGP decision order: local pref (route kind), path length, tiebreak."""
    return (int(kind), length, path)
