"""Per-AS import policy: which routes an AS refuses to install.

The propagation engine classifies every prefix-origin into a
:class:`RouteClass` — whether it is RPKI Invalid (per RFC 6811) and whether
it is IRR Invalid — before propagation, because those two bits are all that
import filters act on:

* ROV (route origin validation) deployment drops RPKI-Invalid routes from
  *all* neighbours (RFC 6811 makes no distinction by neighbour type).
* MANRS Action 1 filtering checks *customer* announcements against the
  IRR/RPKI; the CDN program additionally recommends filtering peers.

Note the deliberate asymmetry with the paper's conformance definition: per
§3 the paper treats IRR *invalid-prefix-length* as conformant (traffic
engineering de-aggregation), so the ``irr_invalid`` bit here is true only
for genuine origin mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "NeighborKind",
    "RouteClass",
    "ASPolicy",
    "CONFORMANT_CLASS",
    "covers_session",
]


class NeighborKind(str, Enum):
    """Who a route was learned from, from the importing AS's viewpoint."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


@dataclass(frozen=True)
class RouteClass:
    """Filter-relevant classification of a prefix-origin pair."""

    rpki_invalid: bool = False
    irr_invalid: bool = False


#: Routes that no filter in the model ever drops.
CONFORMANT_CLASS = RouteClass()


def covers_session(provider: int, customer: int, coverage: float) -> bool:
    """Is the (provider, customer) BGP session subject to customer filters?

    Filter deployment is rarely complete: operators roll prefix-lists out
    session by session and legacy sessions linger (two operators told the
    authors exactly this, §10).  ``coverage`` is the fraction of customer
    sessions filtered; which sessions those are is a deterministic hash of
    the AS pair, so propagation stays reproducible without per-session
    state.
    """
    if coverage >= 1.0:
        return True
    if coverage <= 0.0:
        return False
    # Knuth-style multiplicative hash over the ordered pair.
    mixed = (provider * 2654435761 + customer * 40503 + 12345) & 0xFFFFFFFF
    mixed ^= mixed >> 16
    return (mixed % 10_000) < coverage * 10_000


@dataclass(frozen=True)
class ASPolicy:
    """Import-filtering behaviour of one AS.

    The default policy accepts everything, matching the long tail of
    networks that deploy no route filtering at all.
    """

    #: Full ROV: drop RPKI-Invalid routes from every neighbour.
    rov: bool = False
    #: MANRS Action 1 style filtering of customer announcements.
    filter_customers_rpki: bool = False
    filter_customers_irr: bool = False
    #: Fraction of customer sessions the Action 1 filters actually cover.
    customer_filter_coverage: float = 1.0
    #: Customer ASNs whose sessions bypass the Action 1 filters entirely —
    #: in practice, an organisation's own sibling ASes (internal sessions
    #: are rarely prefix-filtered, which is how ISP1's neglected stubs
    #: leak their stale announcements into BGP, §8.3/Table 1).
    unfiltered_customers: frozenset[int] = frozenset()
    #: CDN-program style ingress filtering on peers.
    filter_peers_rpki: bool = False
    filter_peers_irr: bool = False

    def accepts(
        self,
        route_class: RouteClass,
        learned_from: NeighborKind,
        neighbor: int | None = None,
        importer: int | None = None,
    ) -> bool:
        """Would this AS install a route of ``route_class`` from
        ``learned_from``?

        For customer-learned routes, pass ``importer`` (this AS) and
        ``neighbor`` (the customer) so partial filter coverage can decide
        whether this particular session is filtered; without them,
        coverage is treated as full.
        """
        if route_class.rpki_invalid and self.rov:
            return False
        if learned_from is NeighborKind.CUSTOMER and (
            route_class.rpki_invalid
            and self.filter_customers_rpki
            or route_class.irr_invalid
            and self.filter_customers_irr
        ):
            if neighbor is not None and neighbor in self.unfiltered_customers:
                return True
            if neighbor is None or importer is None:
                return False
            return not covers_session(
                importer, neighbor, self.customer_filter_coverage
            )
        if learned_from is NeighborKind.PEER:
            if route_class.rpki_invalid and self.filter_peers_rpki:
                return False
            if route_class.irr_invalid and self.filter_peers_irr:
                return False
        return True

    @property
    def filters_anything(self) -> bool:
        """True if any filter flag is set (used to fast-path propagation)."""
        return (
            self.rov
            or self.filter_customers_rpki
            or self.filter_customers_irr
            or self.filter_peers_rpki
            or self.filter_peers_irr
        )
