"""RIB dump serialisation in a `bgpdump -m`-style line format.

RouteViews and RIS publish MRT files usually consumed through
``bgpdump -m`` one-line records; we serialise :class:`RibSnapshot` in the
same spirit so collector output can be stored, diffed and re-loaded:

``TABLE_DUMP2|<unix-ts>|B|<peer-ip>|<peer-as>|<prefix>|<as-path>|IGP``

The peer IP is synthesised from the vantage-point ASN (the analyses key
on the peer AS, as the paper's do).
"""

from __future__ import annotations

from datetime import date, datetime, timezone

from repro.bgp.announcement import RibEntry
from repro.bgp.collector import RibSnapshot, RouteGroup
from repro.bgp.policy import RouteClass
from repro.errors import DatasetError
from repro.net.asn import format_as_path, parse_as_path
from repro.net.prefix import Prefix

__all__ = ["serialize_rib", "parse_rib"]

_PREFIX_FIELDS = 8


def _peer_ip(asn: int) -> str:
    """A stable fake peer address for a vantage-point ASN."""
    return f"10.{(asn >> 16) & 0xFF}.{(asn >> 8) & 0xFF}.{asn & 0xFF}"


def serialize_rib(snapshot: RibSnapshot, snapshot_date: date) -> str:
    """Render every RIB entry as one TABLE_DUMP2-style line."""
    timestamp = int(
        datetime(
            snapshot_date.year,
            snapshot_date.month,
            snapshot_date.day,
            tzinfo=timezone.utc,
        ).timestamp()
    )
    lines = []
    for entry in snapshot.iter_entries():
        lines.append(
            "TABLE_DUMP2|"
            f"{timestamp}|B|{_peer_ip(entry.vantage_point)}|"
            f"{entry.vantage_point}|{entry.prefix}|"
            f"{format_as_path(entry.path)}|IGP"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_rib(text: str) -> RibSnapshot:
    """Parse the format produced by :func:`serialize_rib`.

    Entries are regrouped by (origin, path-identity); the filter classes
    are unknown from a dump, so groups carry the default
    :class:`RouteClass` — statuses get recomputed downstream against the
    registries, exactly as the IHR does with real MRT data.
    """
    paths_by_announcement: dict[tuple[int, Prefix], dict[int, tuple[int, ...]]] = {}
    vantage_points: set[int] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        fields = line.split("|")
        if len(fields) != _PREFIX_FIELDS or fields[0] != "TABLE_DUMP2":
            raise DatasetError(f"bad RIB record at line {line_number}")
        try:
            vantage_point = int(fields[4])
            prefix = Prefix.parse(fields[5])
            path = parse_as_path(fields[6])
        except ValueError as exc:
            raise DatasetError(
                f"bad RIB record at line {line_number}: {line!r}"
            ) from exc
        if not path or path[0] != vantage_point:
            raise DatasetError(
                f"AS path does not start at peer AS at line {line_number}"
            )
        origin = path[-1]
        vantage_points.add(vantage_point)
        paths_by_announcement.setdefault((origin, prefix), {})[
            vantage_point
        ] = path
    # Prefixes of one origin with identical path maps share one group
    # (the same batching the live collector produces).
    by_signature: dict[
        tuple[int, tuple[tuple[int, tuple[int, ...]], ...]], list[Prefix]
    ] = {}
    for (origin, prefix), paths in paths_by_announcement.items():
        signature = (origin, tuple(sorted(paths.items())))
        by_signature.setdefault(signature, []).append(prefix)
    groups = [
        RouteGroup(
            origin=origin,
            route_class=RouteClass(),
            prefixes=tuple(sorted(prefixes)),
            paths=dict(path_items),
        )
        for (origin, path_items), prefixes in sorted(
            by_signature.items(), key=lambda item: (item[0][0], item[1][0])
        )
    ]
    return RibSnapshot(
        vantage_points=tuple(sorted(vantage_points)), groups=groups
    )
