"""BGP substrate: announcements, policy, propagation, collectors, hijacks."""

from repro.bgp.announcement import Announcement, RibEntry
from repro.bgp.collector import (
    RibSnapshot,
    RouteGroup,
    collect_rib,
    select_vantage_points,
)
from repro.bgp.leak import LeakOutcome, simulate_leak
from repro.bgp.mrt import parse_rib, serialize_rib
from repro.bgp.hijack import HijackKind, HijackOutcome, simulate_hijack
from repro.bgp.policy import CONFORMANT_CLASS, ASPolicy, NeighborKind, RouteClass
from repro.bgp.propagation import PropagationEngine, Route, RouteKind
from repro.bgp.routeserver import RouteServer, RouteServerReport, RouteServerVerdict
from repro.bgp.table import Prefix2AS, parse_prefix2as, serialize_prefix2as

__all__ = [
    "Announcement",
    "ASPolicy",
    "CONFORMANT_CLASS",
    "HijackKind",
    "HijackOutcome",
    "LeakOutcome",
    "NeighborKind",
    "Prefix2AS",
    "PropagationEngine",
    "RibEntry",
    "RibSnapshot",
    "Route",
    "RouteClass",
    "RouteGroup",
    "RouteServer",
    "RouteServerReport",
    "RouteServerVerdict",
    "RouteKind",
    "collect_rib",
    "parse_prefix2as",
    "parse_rib",
    "select_vantage_points",
    "serialize_prefix2as",
    "serialize_rib",
    "simulate_hijack",
    "simulate_leak",
]
