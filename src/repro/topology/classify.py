"""Network size classification (§6.2 of the paper).

ASes are grouped into *small* / *medium* / *large* by their number of
AS-level customers, using the thresholds of Dhamdhere & Dovrolis that the
paper adopts: small ≤ 2, medium ≤ 180, large > 180.
"""

from __future__ import annotations

from enum import Enum

from repro.topology.model import ASTopology

__all__ = ["SizeClass", "classify_size", "classify_all"]

#: Customer-degree thresholds from Dhamdhere et al. (2011), as used in §6.2.
SMALL_MAX_CUSTOMERS = 2
MEDIUM_MAX_CUSTOMERS = 180


class SizeClass(str, Enum):
    """Customer-degree size class of an AS."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"


def classify_size(customer_degree: int) -> SizeClass:
    """Map a customer degree to its size class."""
    if customer_degree < 0:
        raise ValueError(f"negative customer degree {customer_degree}")
    if customer_degree <= SMALL_MAX_CUSTOMERS:
        return SizeClass.SMALL
    if customer_degree <= MEDIUM_MAX_CUSTOMERS:
        return SizeClass.MEDIUM
    return SizeClass.LARGE


def classify_all(topology: ASTopology) -> dict[int, SizeClass]:
    """Size class for every AS in the topology."""
    return {
        asn: classify_size(topology.customer_degree(asn))
        for asn in topology.asns
    }
