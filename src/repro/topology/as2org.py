"""as2org dataset: AS-to-organisation mapping (CAIDA substitute).

The paper uses CAIDA's inferred as2org dataset to find sibling ASes of
MANRS members (Finding 7.0, Table 1).  Here the mapping is exported from
the ground-truth topology, with the same two-record text format CAIDA
publishes (organisation records and AS records), so the loader is a real
parser rather than a pass-through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError
from repro.topology.model import ASTopology

__all__ = ["As2Org", "serialize_as2org", "parse_as2org"]


@dataclass(frozen=True)
class As2Org:
    """An immutable as2org snapshot: asn -> org_id and org_id -> asns."""

    org_of: dict[int, str]
    asns_of: dict[str, tuple[int, ...]]
    org_names: dict[str, str]
    org_countries: dict[str, str]

    def siblings(self, asn: int) -> frozenset[int]:
        """Other ASNs under the same organisation as ``asn``."""
        org_id = self.org_of.get(asn)
        if org_id is None:
            return frozenset()
        return frozenset(a for a in self.asns_of[org_id] if a != asn)

    def same_org(self, a: int, b: int) -> bool:
        """True if both ASNs map to the same organisation."""
        org_a = self.org_of.get(a)
        return org_a is not None and org_a == self.org_of.get(b)

    @classmethod
    def from_topology(cls, topology: ASTopology) -> "As2Org":
        """Snapshot the ground-truth ownership from a topology."""
        org_of: dict[int, str] = {}
        asns_of: dict[str, tuple[int, ...]] = {}
        org_names: dict[str, str] = {}
        org_countries: dict[str, str] = {}
        for org in topology.organizations:
            asns_of[org.org_id] = tuple(sorted(org.asns))
            org_names[org.org_id] = org.name
            org_countries[org.org_id] = org.country
            for asn in org.asns:
                org_of[asn] = org.org_id
        return cls(org_of, asns_of, org_names, org_countries)


def serialize_as2org(snapshot: As2Org) -> str:
    """Render the CAIDA-style two-section text format.

    Organisation records: ``org_id|name|country``; AS records:
    ``asn|org_id``.  Section markers mirror CAIDA's ``# format`` comments.
    """
    lines = ["# format:org_id|name|country"]
    for org_id in sorted(snapshot.asns_of):
        name = snapshot.org_names[org_id]
        country = snapshot.org_countries[org_id]
        lines.append(f"{org_id}|{name}|{country}")
    lines.append("# format:aut|org_id")
    for asn in sorted(snapshot.org_of):
        lines.append(f"{asn}|{snapshot.org_of[asn]}")
    return "\n".join(lines) + "\n"


def parse_as2org(text: str) -> As2Org:
    """Parse the format produced by :func:`serialize_as2org`."""
    org_of: dict[int, str] = {}
    asns_of: dict[str, list[int]] = {}
    org_names: dict[str, str] = {}
    org_countries: dict[str, str] = {}
    section = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "org_id|name" in line:
                section = "org"
            elif "aut|org_id" in line:
                section = "as"
            continue
        fields = line.split("|")
        if section == "org":
            if len(fields) != 3:
                raise DatasetError(f"bad org record at line {line_number}")
            org_id, name, country = fields
            org_names[org_id] = name
            org_countries[org_id] = country
            asns_of.setdefault(org_id, [])
        elif section == "as":
            if len(fields) != 2:
                raise DatasetError(f"bad AS record at line {line_number}")
            try:
                asn = int(fields[0])
            except ValueError as exc:
                raise DatasetError(
                    f"bad ASN at line {line_number}: {fields[0]!r}"
                ) from exc
            org_id = fields[1]
            if org_id not in asns_of:
                raise DatasetError(
                    f"AS record references unknown org at line {line_number}"
                )
            org_of[asn] = org_id
            asns_of[org_id].append(asn)
        else:
            raise DatasetError(f"record before section header, line {line_number}")
    return As2Org(
        org_of,
        {org_id: tuple(sorted(asns)) for org_id, asns in asns_of.items()},
        org_names,
        org_countries,
    )
