"""AS Rank dataset (CAIDA substitute).

The paper's §5.1 lists CAIDA's AS Rank among its inputs; §6.2 uses the
customer degree it reports to build the size classes.  This module
exports the topology's ground truth in an AS-Rank-like pipe-separated
format (rank, ASN, customer degree, cone size) and parses it back, so the
size classification can run off files exactly as it would off the real
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError
from repro.topology.classify import SizeClass, classify_size
from repro.topology.model import ASTopology

__all__ = ["ASRankRecord", "build_asrank", "serialize_asrank", "parse_asrank"]

_HEADER = "# rank|asn|customer_degree|cone_size"


@dataclass(frozen=True)
class ASRankRecord:
    """One AS's row in the AS Rank dataset."""

    rank: int
    asn: int
    customer_degree: int
    cone_size: int

    @property
    def size_class(self) -> SizeClass:
        """The §6.2 size class implied by the customer degree."""
        return classify_size(self.customer_degree)


def build_asrank(topology: ASTopology) -> list[ASRankRecord]:
    """Compute the dataset from a topology, ordered by rank."""
    records = [
        ASRankRecord(
            rank=topology.as_rank(asn),
            asn=asn,
            customer_degree=topology.customer_degree(asn),
            cone_size=len(topology.customer_cone(asn)),
        )
        for asn in topology.asns
    ]
    records.sort(key=lambda record: record.rank)
    return records


def serialize_asrank(records: list[ASRankRecord]) -> str:
    """Render the pipe-separated AS Rank format."""
    lines = [_HEADER]
    for record in records:
        lines.append(
            f"{record.rank}|{record.asn}|{record.customer_degree}|"
            f"{record.cone_size}"
        )
    return "\n".join(lines) + "\n"


def parse_asrank(text: str) -> list[ASRankRecord]:
    """Parse the format produced by :func:`serialize_asrank`."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) != 4:
            raise DatasetError(f"bad AS Rank record at line {line_number}")
        try:
            rank, asn, degree, cone = (int(field) for field in fields)
        except ValueError as exc:
            raise DatasetError(
                f"bad AS Rank record at line {line_number}: {line!r}"
            ) from exc
        if degree < 0 or cone < 1 or rank < 1:
            raise DatasetError(
                f"out-of-range AS Rank record at line {line_number}"
            )
        records.append(
            ASRankRecord(
                rank=rank, asn=asn, customer_degree=degree, cone_size=cone
            )
        )
    return records
