"""AS-level topology: model, generator, size classes, as2org dataset."""

from repro.topology.as2org import As2Org, parse_as2org, serialize_as2org
from repro.topology.asrank import (
    ASRankRecord,
    build_asrank,
    parse_asrank,
    serialize_asrank,
)
from repro.topology.classify import SizeClass, classify_all, classify_size
from repro.topology.generator import (
    GeneratedTopology,
    TopologyConfig,
    generate_topology,
)
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)
from repro.topology.relationships import (
    customers_by_provider,
    parse_relationships,
    serialize_relationships,
)

__all__ = [
    "ASCategory",
    "ASRankRecord",
    "ASTopology",
    "As2Org",
    "AutonomousSystem",
    "GeneratedTopology",
    "Organization",
    "Relationship",
    "SizeClass",
    "TopologyConfig",
    "build_asrank",
    "classify_all",
    "classify_size",
    "customers_by_provider",
    "generate_topology",
    "parse_as2org",
    "parse_asrank",
    "parse_relationships",
    "serialize_as2org",
    "serialize_asrank",
    "serialize_relationships",
]
