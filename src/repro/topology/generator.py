"""Synthetic AS-level Internet topology generator.

Builds a Gao–Rexford-consistent hierarchy:

* a clique of *large transit* providers (tier-1 style) peering with each
  other;
* *medium ISPs* buying transit from large providers (preferentially, so a
  few large ASes accumulate the >180-customer degree of the paper's
  "large" class) and peering among themselves;
* *small ISPs* buying transit from medium/large providers;
* *stub* ASes (the bulk of the Internet) homing to 1–3 providers;
* *CDNs* with a couple of transit providers and a wide peering mesh.

Organisations may own several ASes — the extra ("sibling") ASes are stubs
attached below the organisation's main AS, which is what produces the
partial-registration behaviour of Finding 7.0 and the Sibling column of
Table 1.

Everything is driven by a seeded ``numpy`` generator, so a (config, seed)
pair always yields the same topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError
from repro.registry.rir import RIR, rir_for_country
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
    Relationship,
)

__all__ = ["TopologyConfig", "GeneratedTopology", "generate_topology"]

#: Country weights per category: large networks concentrate in ARIN/RIPE
#: (as §7 observes), small networks are spread worldwide with a strong
#: LACNIC (Brazil) contingent.
_COUNTRY_POOL = {
    "core": (("US", 0.42), ("DE", 0.13), ("GB", 0.11), ("JP", 0.09),
             ("CN", 0.09), ("FR", 0.06), ("NL", 0.05), ("BR", 0.05)),
    "edge": (("US", 0.17), ("BR", 0.16), ("DE", 0.09), ("RU", 0.08),
             ("IN", 0.08), ("GB", 0.07), ("ID", 0.07), ("CN", 0.06),
             ("AR", 0.06), ("ZA", 0.05), ("NG", 0.04), ("AU", 0.04),
             ("MX", 0.03)),
}


@dataclass
class TopologyConfig:
    """Knobs controlling topology size and shape.

    The defaults produce a ~10,000-AS Internet: large enough for the paper's
    size classes to be populated (including >180-customer "large" ASes) and
    small enough for full route propagation in pure Python.
    """

    n_large_transit: int = 18
    n_cdn: int = 30
    n_medium_isp: int = 260
    n_small_isp: int = 700
    n_stub: int = 5200
    #: Virtual head-start degree for large transit ASes in preferential
    #: attachment; keeps the degree distribution top-heavy enough that the
    #: >180-customer "large" size class (§6.2) is well populated.
    large_weight_bias: float = 60.0
    #: Fraction of organisations that own more than one AS.
    multi_as_org_fraction: float = 0.35
    #: Mean number of extra sibling ASes for a multi-AS org (geometric).
    sibling_mean: float = 2.0
    #: Large transit orgs always own several ASes (like the paper's ISP1
    #: whose 24 ASes appear in Finding 8.4).
    large_sibling_mean: float = 5.0
    #: Probability that a sibling AS is quiescent (announces nothing).
    quiescent_sibling_fraction: float = 0.35
    #: Preferential-attachment strength for provider selection: weight of a
    #: candidate provider is (customer_degree + 1) ** alpha.
    alpha: float = 1.35
    first_asn: int = 100

    def scaled(self, factor: float) -> "TopologyConfig":
        """A copy with all population counts multiplied by ``factor``."""
        return TopologyConfig(
            n_large_transit=max(3, round(self.n_large_transit * factor)),
            n_cdn=max(2, round(self.n_cdn * factor)),
            n_medium_isp=max(5, round(self.n_medium_isp * factor)),
            n_small_isp=max(5, round(self.n_small_isp * factor)),
            n_stub=max(10, round(self.n_stub * factor)),
            large_weight_bias=self.large_weight_bias,
            multi_as_org_fraction=self.multi_as_org_fraction,
            sibling_mean=self.sibling_mean,
            large_sibling_mean=self.large_sibling_mean,
            quiescent_sibling_fraction=self.quiescent_sibling_fraction,
            alpha=self.alpha,
            first_asn=self.first_asn,
        )


@dataclass
class _Builder:
    config: TopologyConfig
    rng: np.random.Generator
    topology: ASTopology = field(default_factory=ASTopology)
    next_asn: int = 0
    next_org: int = 0
    #: ASNs per category for provider selection.
    by_category: dict[ASCategory, list[int]] = field(default_factory=dict)
    #: Running customer degree for preferential attachment.
    degree: dict[int, int] = field(default_factory=dict)
    #: Memoised attachment weight per AS — recomputed only on a degree
    #: bump (~one per edge) instead of per candidate scan (~one per
    #: candidate per choose_providers call).  Each cached value comes
    #: from the same scalar expression the scan used, so the sampling
    #: probabilities (and hence every rng draw) are bit-identical.
    weight_of: dict[int, float] = field(default_factory=dict)
    #: The same weights as parallel per-category lists (aligned with
    #: ``by_category``), so sampling from a whole category pool skips
    #: the per-candidate dict walk.
    weight_lists: dict[ASCategory, list[float]] = field(default_factory=dict)
    #: AS → (category, index into its ``by_category`` list).
    _cat_pos: dict[int, tuple[ASCategory, int]] = field(default_factory=dict)
    #: ASNs that exist only as quiescent siblings.
    quiescent: set[int] = field(default_factory=set)
    _country_cache: dict[str, tuple[list[str], np.ndarray]] = field(
        default_factory=dict
    )

    def pick_country(self, pool: str) -> str:
        cached = self._country_cache.get(pool)
        if cached is None:
            names = [c for c, _ in _COUNTRY_POOL[pool]]
            weights = np.array([w for _, w in _COUNTRY_POOL[pool]])
            p = weights / weights.sum()
            # rng.choice(names, p=p) draws one uniform double and inverts
            # it through p's cdf; doing that directly skips choice's
            # per-call validation while consuming the same bit-stream.
            cdf = p.cumsum()
            cdf /= cdf[-1]
            cached = (names, cdf)
            self._country_cache[pool] = cached
        names, cdf = cached
        return names[int(cdf.searchsorted(self.rng.random(), side="right"))]

    def new_org(self, name_prefix: str, country: str) -> Organization:
        org = Organization(f"ORG-{self.next_org:05d}", f"{name_prefix}-{self.next_org}", country)
        self.next_org += 1
        self.topology.add_org(org)
        return org

    def new_as(self, org: Organization, category: ASCategory) -> int:
        asn = self.config.first_asn + self.next_asn
        self.next_asn += 1
        record = AutonomousSystem(
            asn=asn,
            org_id=org.org_id,
            country=org.country,
            rir=rir_for_country(org.country),
            category=category,
        )
        self.topology.add_as(record)
        pool = self.by_category.setdefault(category, [])
        self._cat_pos[asn] = (category, len(pool))
        pool.append(asn)
        self.degree[asn] = 0
        weight = self._weight(asn)
        self.weight_of[asn] = weight
        self.weight_lists.setdefault(category, []).append(weight)
        return asn

    def add_provider(self, provider: int, customer: int) -> None:
        self.topology.add_link(provider, customer, Relationship.PROVIDER_CUSTOMER)
        self.degree[provider] += 1
        weight = self._weight(provider)
        self.weight_of[provider] = weight
        category, position = self._cat_pos[provider]
        self.weight_lists[category][position] = weight

    def _weight(self, asn: int) -> float:
        bias = 1.0
        if self.topology.get_as(asn).category is ASCategory.LARGE_TRANSIT:
            bias = self.config.large_weight_bias
        return (self.degree[asn] + bias) ** self.config.alpha

    def choose_providers(self, candidates: list[int], count: int) -> list[int]:
        """Preferentially sample ``count`` distinct providers."""
        if not candidates:
            raise TopologyError("no provider candidates available")
        count = min(count, len(candidates))
        for category, pool in self.by_category.items():
            if candidates is pool:
                weights = np.array(self.weight_lists[category])
                break
        else:
            weight_of = self.weight_of
            weights = np.array([weight_of[c] for c in candidates])
        picks = self.rng.choice(
            len(candidates), size=count, replace=False, p=weights / weights.sum()
        )
        return [candidates[int(i)] for i in picks]


def _geometric_extra(rng: np.random.Generator, mean: float) -> int:
    """Sample a non-negative count with the given mean (geometric)."""
    if mean <= 0:
        return 0
    p = 1.0 / (1.0 + mean)
    return int(rng.geometric(p)) - 1


@dataclass(frozen=True)
class GeneratedTopology:
    """A generated topology plus generation metadata.

    ``quiescent`` lists sibling ASNs that are registered to an organisation
    but never announce anything — the paper's "quiescent ASes" (§7).
    """

    topology: ASTopology
    quiescent: frozenset[int]


def generate_topology(
    config: TopologyConfig | None = None, seed: int = 0
) -> GeneratedTopology:
    """Generate a full topology from ``config`` with deterministic ``seed``."""
    config = config or TopologyConfig()
    builder = _Builder(config=config, rng=np.random.default_rng(seed))

    _make_large_transit(builder)
    _make_cdns(builder)
    _make_medium_isps(builder)
    _make_small_isps(builder)
    _make_stubs(builder)
    _attach_siblings(builder)

    builder.topology.validate()
    return GeneratedTopology(builder.topology, frozenset(builder.quiescent))


def _make_large_transit(builder: _Builder) -> None:
    """Tier-1 clique: every large transit peers with every other."""
    for _ in range(builder.config.n_large_transit):
        org = builder.new_org("Transit", builder.pick_country("core"))
        builder.new_as(org, ASCategory.LARGE_TRANSIT)
    larges = builder.by_category[ASCategory.LARGE_TRANSIT]
    for i, a in enumerate(larges):
        for b in larges[i + 1:]:
            builder.topology.add_link(a, b, Relationship.PEER)


def _make_cdns(builder: _Builder) -> None:
    """CDNs: 1–2 transit providers plus a wide peering mesh."""
    larges = builder.by_category[ASCategory.LARGE_TRANSIT]
    for _ in range(builder.config.n_cdn):
        org = builder.new_org("CDN", builder.pick_country("core"))
        asn = builder.new_as(org, ASCategory.CDN)
        for provider in builder.choose_providers(larges, int(builder.rng.integers(1, 3))):
            builder.add_provider(provider, asn)
        n_peerings = int(builder.rng.integers(3, min(10, len(larges)) + 1))
        peer_pool = [p for p in larges if p not in builder.topology.providers_of(asn)]
        for peer in builder.rng.choice(peer_pool, size=min(n_peerings, len(peer_pool)), replace=False):
            builder.topology.add_link(asn, int(peer), Relationship.PEER)


def _make_medium_isps(builder: _Builder) -> None:
    larges = builder.by_category[ASCategory.LARGE_TRANSIT]
    mediums: list[int] = []
    for _ in range(builder.config.n_medium_isp):
        org = builder.new_org("ISP", builder.pick_country("edge"))
        asn = builder.new_as(org, ASCategory.MEDIUM_ISP)
        n_providers = int(builder.rng.integers(1, 4))
        for provider in builder.choose_providers(larges, n_providers):
            builder.add_provider(provider, asn)
        # Sparse peering among mediums (regional IXP-style meshes).
        if mediums and builder.rng.random() < 0.45:
            peer = mediums[int(builder.rng.integers(0, len(mediums)))]
            if peer not in builder.topology.neighbors(asn) and peer != asn:
                builder.topology.add_link(asn, peer, Relationship.PEER)
        mediums.append(asn)


def _make_small_isps(builder: _Builder) -> None:
    larges = builder.by_category[ASCategory.LARGE_TRANSIT]
    mediums = builder.by_category[ASCategory.MEDIUM_ISP]
    for _ in range(builder.config.n_small_isp):
        org = builder.new_org("Access", builder.pick_country("edge"))
        asn = builder.new_as(org, ASCategory.SMALL_ISP)
        n_providers = int(builder.rng.integers(1, 3))
        # Small ISPs mostly buy from mediums, sometimes straight from a
        # large transit (keeps large-AS degrees growing).
        pool = mediums if builder.rng.random() < 0.6 else larges
        for provider in builder.choose_providers(pool, n_providers):
            builder.add_provider(provider, asn)


def _make_stubs(builder: _Builder) -> None:
    larges = builder.by_category[ASCategory.LARGE_TRANSIT]
    mediums = builder.by_category[ASCategory.MEDIUM_ISP]
    smalls = builder.by_category[ASCategory.SMALL_ISP]
    for _ in range(builder.config.n_stub):
        org = builder.new_org("Net", builder.pick_country("edge"))
        asn = builder.new_as(org, ASCategory.STUB)
        n_providers = 1 + (builder.rng.random() < 0.35) + (builder.rng.random() < 0.1)
        roll = builder.rng.random()
        if roll < 0.45:
            pool = larges
        elif roll < 0.90:
            pool = mediums
        else:
            pool = smalls
        for provider in builder.choose_providers(pool, n_providers):
            builder.add_provider(provider, asn)


def _attach_siblings(builder: _Builder) -> None:
    """Give some organisations extra sibling ASes.

    Siblings are stubs homed under the org's primary AS (if it can carry
    customers) or under the primary AS's first provider.  A fraction are
    quiescent — registered but never announcing — which drives the
    registration-completeness statistics of Finding 7.0.
    """
    config = builder.config
    primaries = [
        (org, org.asns[0])
        for org in builder.topology.organizations
        if org.asns
    ]
    for org, primary in primaries:
        category = builder.topology.get_as(primary).category
        if category is ASCategory.LARGE_TRANSIT:
            extra = _geometric_extra(builder.rng, config.large_sibling_mean)
        elif builder.rng.random() < config.multi_as_org_fraction:
            extra = 1 + _geometric_extra(builder.rng, config.sibling_mean - 1.0)
        else:
            extra = 0
        for _ in range(extra):
            asn = builder.new_as(org, ASCategory.STUB)
            if category is ASCategory.STUB:
                providers = builder.topology.providers_of(primary)
                parent = min(providers) if providers else primary
            else:
                parent = primary
            if parent != asn:
                builder.add_provider(parent, asn)
            if builder.rng.random() < config.quiescent_sibling_fraction:
                builder.quiescent.add(asn)
