"""AS-level topology model: ASes, organisations, and business relationships.

The model follows the standard Gao–Rexford abstraction used by CAIDA's
AS-relationship dataset: every inter-AS link is either *customer-provider*
(the customer pays the provider for transit) or *peer-peer* (settlement-free
exchange of customer routes).  The paper's analyses consume exactly the
artefacts this module computes: customer degree (size classes, §6.2),
customer cone (AS rank), direct-customer sets (Action 1, §6.4), and the
as2org sibling structure (§7, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

import numpy as np

from repro.errors import TopologyError
from repro.net.asn import validate_asn
from repro.registry.rir import RIR

__all__ = [
    "ASCategory",
    "AutonomousSystem",
    "Organization",
    "Relationship",
    "ASTopology",
    "TopologyCSR",
]


class TopologyCSR:
    """The AS graph frozen into compressed-sparse-row edge arrays.

    One row per AS in ascending-ASN order; per relationship kind an
    ``(indptr, indices)`` pair where ``indices[indptr[i]:indptr[i+1]]``
    are the row numbers of AS ``asns[i]``'s neighbours, themselves in
    ascending-ASN order (matching the sorted-neighbour iteration the
    propagation engine uses).  Built once per topology state and reused
    by every columnar kernel that walks adjacency.
    """

    __slots__ = (
        "asns",
        "index_of",
        "provider_indptr",
        "provider_indices",
        "customer_indptr",
        "customer_indices",
        "peer_indptr",
        "peer_indices",
        "_customer_edge_keys",
    )

    def __init__(
        self,
        ases: dict[int, set[int]] | list[int],
        providers: dict[int, set[int]],
        customers: dict[int, set[int]],
        peers: dict[int, set[int]],
    ):
        asns = sorted(ases)
        self.asns = np.array(asns, dtype=np.int64)
        self.index_of = {asn: i for i, asn in enumerate(asns)}
        for name, adjacency in (
            ("provider", providers),
            ("customer", customers),
            ("peer", peers),
        ):
            indptr = np.zeros(len(asns) + 1, dtype=np.int32)
            flat: list[int] = []
            for i, asn in enumerate(asns):
                flat.extend(self.index_of[n] for n in sorted(adjacency[asn]))
                indptr[i + 1] = len(flat)
            setattr(self, f"{name}_indptr", indptr)
            setattr(
                self, f"{name}_indices", np.array(flat, dtype=np.int32)
            )
        self._customer_edge_keys: np.ndarray | None = None

    def customer_edge_keys(self) -> np.ndarray:
        """Sorted packed ``provider<<32 | customer`` ASN keys, one per
        provider→customer edge — the membership table the hegemony
        kernel probes for learned-from-customer flags.  Built once per
        CSR and shared by every consumer (including IHR shard workers,
        which each hold their own CSR copy)."""
        keys = self._customer_edge_keys
        if keys is None:
            provider_rows = np.repeat(
                np.arange(len(self.asns), dtype=np.int64),
                np.diff(self.customer_indptr),
            )
            keys = (
                self.asns[provider_rows].astype(np.uint64) << np.uint64(32)
            ) | self.asns[self.customer_indices].astype(np.uint64)
            keys.sort()
            self._customer_edge_keys = keys
        return keys

    def neighbors(self, kind: str, row: int) -> np.ndarray:
        """Neighbour rows of ``row`` for ``kind`` in {provider, customer,
        peer} (ascending-ASN order)."""
        indptr = getattr(self, f"{kind}_indptr")
        indices = getattr(self, f"{kind}_indices")
        return indices[indptr[row] : indptr[row + 1]]


class ASCategory(str, Enum):
    """Coarse business type of an AS, used by the behaviour model."""

    STUB = "stub"              # enterprise / edge network, no customers
    SMALL_ISP = "small_isp"    # access ISP with a handful of customers
    MEDIUM_ISP = "medium_isp"  # regional ISP
    LARGE_TRANSIT = "large_transit"  # tier-1 style transit provider
    CDN = "cdn"                # content/cloud provider (MANRS CDN program)
    IXP = "ixp"                # route-server AS at an exchange point


@dataclass(frozen=True)
class AutonomousSystem:
    """A single AS: the unit of routing policy and MANRS membership."""

    asn: int
    org_id: str
    country: str
    rir: RIR
    category: ASCategory

    def __post_init__(self) -> None:
        validate_asn(self.asn)


@dataclass
class Organization:
    """An organisation owning one or more ASes (as2org granularity)."""

    org_id: str
    name: str
    country: str
    asns: list[int] = field(default_factory=list)


class Relationship(int, Enum):
    """CAIDA AS-relationship encoding: -1 = provider-to-customer, 0 = peer."""

    PROVIDER_CUSTOMER = -1
    PEER = 0


class ASTopology:
    """The AS graph with typed edges and derived metrics.

    Edges are stored per AS in adjacency sets so the propagation engine can
    iterate neighbours without allocating.  The topology is append-only;
    derived data (customer cones, AS rank) is computed lazily and cached,
    and the cache is invalidated on mutation.
    """

    def __init__(self) -> None:
        self._ases: dict[int, AutonomousSystem] = {}
        self._orgs: dict[str, Organization] = {}
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._cone_cache: dict[int, frozenset[int]] | None = None
        self._rank_cache: dict[int, int] | None = None
        self._csr_cache: TopologyCSR | None = None

    # -- construction ------------------------------------------------------

    def add_org(self, org: Organization) -> None:
        """Register an organisation (before adding its ASes)."""
        if org.org_id in self._orgs:
            raise TopologyError(f"duplicate org {org.org_id}")
        self._orgs[org.org_id] = org

    def add_as(self, asys: AutonomousSystem) -> None:
        """Register an AS under an already-registered organisation."""
        if asys.asn in self._ases:
            raise TopologyError(f"duplicate AS{asys.asn}")
        if asys.org_id not in self._orgs:
            raise TopologyError(f"unknown org {asys.org_id} for AS{asys.asn}")
        self._ases[asys.asn] = asys
        self._orgs[asys.org_id].asns.append(asys.asn)
        self._providers[asys.asn] = set()
        self._customers[asys.asn] = set()
        self._peers[asys.asn] = set()
        self._invalidate()

    def add_link(self, a: int, b: int, relationship: Relationship) -> None:
        """Add a typed edge; for PROVIDER_CUSTOMER, ``a`` is the provider."""
        if a not in self._ases or b not in self._ases:
            raise TopologyError(f"link references unknown AS ({a}, {b})")
        if a == b:
            raise TopologyError(f"self-link on AS{a}")
        if self._linked(a, b):
            raise TopologyError(f"duplicate link AS{a}-AS{b}")
        if relationship is Relationship.PROVIDER_CUSTOMER:
            self._customers[a].add(b)
            self._providers[b].add(a)
        else:
            self._peers[a].add(b)
            self._peers[b].add(a)
        self._invalidate()

    def _linked(self, a: int, b: int) -> bool:
        return (
            b in self._customers[a]
            or b in self._providers[a]
            or b in self._peers[a]
        )

    def linked(self, a: int, b: int) -> bool:
        """True if any relationship already exists between ``a`` and ``b``."""
        if a not in self._ases or b not in self._ases:
            raise TopologyError(f"link query references unknown AS ({a}, {b})")
        return self._linked(a, b)

    def copy(self) -> "ASTopology":
        """An independent topology sharing the immutable AS/org records.

        Adjacency sets are copied so mutations (``add_link``) on the copy
        never leak into the original; :class:`AutonomousSystem` and
        :class:`Organization` records are shared (append-only worlds never
        replace them).  Derived caches start cold on the copy.
        """
        clone = ASTopology()
        clone._ases = dict(self._ases)
        clone._orgs = dict(self._orgs)
        clone._providers = {asn: set(s) for asn, s in self._providers.items()}
        clone._customers = {asn: set(s) for asn, s in self._customers.items()}
        clone._peers = {asn: set(s) for asn, s in self._peers.items()}
        return clone

    def _invalidate(self) -> None:
        self._cone_cache = None
        self._rank_cache = None
        self._csr_cache = None

    def csr(self) -> TopologyCSR:
        """The topology's edge arrays (cached; rebuilt after mutation)."""
        if self._csr_cache is None:
            self._csr_cache = TopologyCSR(
                self._ases, self._providers, self._customers, self._peers
            )
        return self._csr_cache

    # -- lookups -----------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    @property
    def asns(self) -> list[int]:
        """All ASNs, sorted."""
        return sorted(self._ases)

    @property
    def organizations(self) -> list[Organization]:
        """All organisations, in insertion order."""
        return list(self._orgs.values())

    def get_as(self, asn: int) -> AutonomousSystem:
        """The AS record for ``asn`` (raises if unknown)."""
        try:
            return self._ases[asn]
        except KeyError as exc:
            raise TopologyError(f"unknown AS{asn}") from exc

    def get_org(self, org_id: str) -> Organization:
        """The organisation record for ``org_id`` (raises if unknown)."""
        try:
            return self._orgs[org_id]
        except KeyError as exc:
            raise TopologyError(f"unknown org {org_id}") from exc

    def org_of(self, asn: int) -> Organization:
        """The organisation owning ``asn``."""
        return self.get_org(self.get_as(asn).org_id)

    def siblings(self, asn: int) -> set[int]:
        """Other ASNs owned by the same organisation."""
        org = self.org_of(asn)
        return {sibling for sibling in org.asns if sibling != asn}

    def providers_of(self, asn: int) -> frozenset[int]:
        """Direct transit providers of ``asn``."""
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> frozenset[int]:
        """Direct customers of ``asn``."""
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> frozenset[int]:
        """Settlement-free peers of ``asn``."""
        return frozenset(self._peers[asn])

    def customer_degree(self, asn: int) -> int:
        """Number of direct AS-level customers (the §6.2 size metric)."""
        return len(self._customers[asn])

    def neighbors(self, asn: int) -> Iterator[int]:
        """All neighbours regardless of relationship type."""
        yield from self._providers[asn]
        yield from self._customers[asn]
        yield from self._peers[asn]

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """Every edge once: (provider, customer, -1) or (a, b, 0) with a<b."""
        for asn in sorted(self._customers):
            for customer in sorted(self._customers[asn]):
                yield asn, customer, Relationship.PROVIDER_CUSTOMER
        for asn in sorted(self._peers):
            for peer in sorted(self._peers[asn]):
                if asn < peer:
                    yield asn, peer, Relationship.PEER

    # -- derived metrics ----------------------------------------------------

    def customer_cone(self, asn: int) -> frozenset[int]:
        """The AS's customer cone: itself plus everything reachable by
        repeatedly following customer links (CAIDA's AS-rank metric)."""
        if self._cone_cache is None:
            self._compute_cones()
        assert self._cone_cache is not None
        return self._cone_cache[asn]

    def _compute_cones(self) -> None:
        """Compute all customer cones bottom-up.

        The provider-customer digraph may contain cycles in pathological
        inputs; we tolerate them with an iterative fixed point (cones only
        grow, so it terminates).
        """
        cones: dict[int, set[int]] = {asn: {asn} for asn in self._ases}
        changed = True
        while changed:
            changed = False
            for asn in self._ases:
                cone = cones[asn]
                before = len(cone)
                for customer in self._customers[asn]:
                    cone |= cones[customer]
                if len(cone) != before:
                    changed = True
        self._cone_cache = {asn: frozenset(cone) for asn, cone in cones.items()}

    def as_rank(self, asn: int) -> int:
        """CAIDA-style AS rank: 1 = largest customer cone."""
        if self._rank_cache is None:
            if self._cone_cache is None:
                self._compute_cones()
            assert self._cone_cache is not None
            ordered = sorted(
                self._ases,
                key=lambda a: (-len(self._cone_cache[a]), a),
            )
            self._rank_cache = {a: i + 1 for i, a in enumerate(ordered)}
        return self._rank_cache[asn]

    def validate(self) -> None:
        """Check structural invariants; raises TopologyError on violation."""
        for asn in self._ases:
            if self._providers[asn] & self._customers[asn]:
                raise TopologyError(f"AS{asn} is both provider and customer")
            if self._peers[asn] & (self._providers[asn] | self._customers[asn]):
                raise TopologyError(f"AS{asn} has conflicting peer link")
        for org_id, org in self._orgs.items():
            for asn in org.asns:
                if self._ases[asn].org_id != org_id:
                    raise TopologyError(
                        f"AS{asn} listed under org {org_id} but records "
                        f"{self._ases[asn].org_id}"
                    )
