"""AS-relationship dataset serialisation (CAIDA format substitute).

CAIDA's serial-1 AS-relationship files are pipe-separated triples
``<a>|<b>|<rel>`` where rel is -1 (a is b's provider) or 0 (peers).  The
paper uses this dataset to find each AS's direct customers for the Action 1
analysis (§6.4); we emit and parse the same format so downstream code can
run off files exactly as it would off the real dataset.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import DatasetError
from repro.topology.model import ASTopology, Relationship

__all__ = ["serialize_relationships", "parse_relationships"]


def serialize_relationships(
    topology: ASTopology | Iterable[tuple[int, int, Relationship]],
) -> str:
    """Render all edges in CAIDA serial-1 format (with a header comment).

    Accepts either a topology (edges emitted in its canonical sorted
    order) or an already-ordered edge list, so a parsed file re-serialises
    byte-identically — the bundle round-trip property relies on this.
    """
    edges = (
        topology.edges() if isinstance(topology, ASTopology) else topology
    )
    lines = ["# <provider-as>|<customer-as>|-1  or  <peer-as>|<peer-as>|0"]
    for a, b, relationship in edges:
        lines.append(f"{a}|{b}|{relationship.value}")
    return "\n".join(lines) + "\n"


def parse_relationships(text: str) -> list[tuple[int, int, Relationship]]:
    """Parse serial-1 relationship records into edge triples."""
    edges: list[tuple[int, int, Relationship]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) != 3:
            raise DatasetError(f"bad relationship record at line {line_number}")
        try:
            a, b, rel_value = int(fields[0]), int(fields[1]), int(fields[2])
        except ValueError as exc:
            raise DatasetError(
                f"non-numeric relationship record at line {line_number}"
            ) from exc
        try:
            relationship = Relationship(rel_value)
        except ValueError as exc:
            raise DatasetError(
                f"unknown relationship {rel_value} at line {line_number}"
            ) from exc
        edges.append((a, b, relationship))
    return edges


def customers_by_provider(
    edges: list[tuple[int, int, Relationship]],
) -> dict[int, frozenset[int]]:
    """Direct-customer sets from parsed relationship records."""
    customers: dict[int, set[int]] = {}
    for a, b, relationship in edges:
        if relationship is Relationship.PROVIDER_CUSTOMER:
            customers.setdefault(a, set()).add(b)
    return {asn: frozenset(custs) for asn, custs in customers.items()}
