"""Content-addressed on-disk checkpoints of built worlds.

Every CLI run, experiment and benchmark consumes a built
:class:`~repro.scenario.world.World`; building one from scratch costs
seconds at full scale.  This module persists finished worlds as
integrity-checked directory entries so later processes warm-start
instead of rebuilding — the measurement analogue of pinning input
snapshots (Reuter et al. stress exactly this for reproducible RPKI
measurement).

An entry is keyed by ``sha256(canonical(config), scale, seed, schema)``
and contains:

* the :func:`~repro.datasets.store.export_world` dataset bundle
  (prefix2as, as2org, as-rel, VRPs, MANRS participants, AS rank, IRR
  route dumps) — the files a downstream user could feed to any tool;
* the behavioural/scenario state the bundle cannot reconstruct:
  ``topology.json`` (org/AS records), ``scenario.json`` (behaviours,
  originations, delegations, quiescent set, vantage points, ROV VRPs,
  IRR database order + non-route objects), ``rpki.json`` (certificates
  and ROAs), ``rib.json`` and ``ihr.json`` (exact collector snapshot
  and IHR tables, order-preserving);
* ``MANIFEST.json`` with the schema version, the canonical key inputs
  and a SHA-256 digest per file.

Loading is safe by default: any digest mismatch, schema-version skew or
parse error logs a warning, discards the entry and reports a miss so the
caller falls back to a cold build.  A warm-started world is
digest-identical to a cold build (asserted by ``tests/test_checkpoint``)
— :func:`dataset_digests` / :func:`world_digest` define that identity.

Hit/miss/corrupt/save counts land in the :mod:`repro.obs` metrics
registry under ``checkpoint.*``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import shutil
import time
from array import array as _packed_array
from itertools import chain
from dataclasses import dataclass
from datetime import date
from enum import Enum
from pathlib import Path

import numpy as np

from repro import config as _config
from repro import obs
from repro.bgp.collector import RibSnapshot, RouteGroup
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS
from repro.datasets.arraystore import ColumnWriter
from repro.datasets.store import (
    PARTICIPANTS_FILE,
    RELATIONSHIPS_FILE,
    export_world,
)
from repro.ihr.records import (
    IHRDataset,
    PrefixOriginRecord,
    TransitGroup,
    TransitInfo,
)
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.objects import AsSetObject, AutNumObject, RouteObject
from repro.irr.rpsl import serialize_database
from repro.irr.validation import IRRStatus
from repro.manrs.actions import Program
from repro.manrs.registry import parse_participants, serialize_participants
from repro.net.prefix import Prefix
from repro.registry.allocation import AddressSpace, Delegation
from repro.registry.rir import RIR
from repro.rpki.archive import parse_vrps, serialize_vrps
from repro.rpki.ca import ResourceCertificate, RPKIRepository
from repro.rpki.roa import ROA, VRP
from repro.rpki.rov import ROVValidator, RPKIStatus
from repro.scenario.config import ScenarioConfig
from repro.scenario.world import ASBehavior, Origination, World, derive_policies
from repro.topology.as2org import As2Org, serialize_as2org
from repro.topology.asrank import build_asrank, serialize_asrank
from repro.topology.classify import classify_all
from repro.topology.model import (
    ASCategory,
    ASTopology,
    AutonomousSystem,
    Organization,
)
from repro.topology.relationships import (
    parse_relationships,
    serialize_relationships,
)

__all__ = [
    "SCHEMA_VERSION",
    "CACHE_DIR_ENV",
    "RESERVED_DIRS",
    "WORLD_LOAD_ENV",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointStore",
    "canonical_config",
    "checkpoint_key",
    "content_key",
    "dataset_digests",
    "default_store",
    "world_digest",
    "world_load_mode",
]

log = logging.getLogger(__name__)

#: Bumped whenever the entry layout or any serialisation format changes;
#: entries written under another version are discarded on load.
SCHEMA_VERSION = 1

#: Environment variable naming the on-disk store root (unset = disabled).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Load strategy for warm starts: ``columnar`` (default) maps the entry's
#: columns and materialises object views lazily; ``eager`` decodes the
#: full object graph up front (the pre-PR-6 behaviour).
WORLD_LOAD_ENV = "REPRO_WORLD_LOAD"

#: Store subdirectories that are not world entries: the sweep ledgers,
#: the serve layer's rendered-result cache and the bench ledger live
#: beside the content-addressed entries and are skipped by
#: :meth:`CheckpointStore.entries`/``verify``/``prune``.
RESERVED_DIRS = ("sweeps", "results", "bench")

MANIFEST_FILE = "MANIFEST.json"
TOPOLOGY_FILE = "topology.json"
SCENARIO_FILE = "scenario.json"
RPKI_FILE = "rpki.json"
RIB_FILE = "rib.json"
IHR_FILE = "ihr.json"
ARRAYS_FILE = "arrays.npz"
YEARS_DIR = "years"

_JSON_COMPACT = {"sort_keys": False, "separators": (",", ":")}


def world_load_mode() -> str:
    """The warm-start strategy from the active runtime config.

    Resolved through :func:`repro.config.current` (falling back to
    ``REPRO_WORLD_LOAD``; default columnar).
    """
    return _config.current().world_load


class CheckpointError(Exception):
    """A checkpoint entry failed verification or reconstruction."""


# -- canonical config form and the content key ------------------------------


def _canonical(value):
    """Recursively convert config values into a canonical JSON shape."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, date):
        return value.isoformat()
    if isinstance(value, dict):
        return {_canonical_key(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(item) for item in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    return value


def _canonical_key(key) -> str:
    """Flatten a (possibly tuple) dict key into one string."""
    if isinstance(key, tuple):
        return "|".join(str(_canonical(part)) for part in key)
    part = _canonical(key)
    return part if isinstance(part, str) else str(part)


def canonical_config(config: ScenarioConfig) -> dict:
    """The scenario config as a canonical, JSON-serialisable mapping.

    Two configs with equal parameters canonicalise identically regardless
    of dict insertion order, so the content key is stable across
    processes and hash seeds.
    """
    return _canonical(config)


def checkpoint_key(config: ScenarioConfig, scale: float, seed: int) -> str:
    """Content key of one (config, scale, seed, schema) build input."""
    payload = json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "scale": scale,
            "seed": seed,
            "config": canonical_config(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def content_key(payload: object, kind: str = "") -> str:
    """Content digest of any canonicalisable payload.

    The generic form of :func:`checkpoint_key`: dataclasses, enums,
    dates, sets and tuple-keyed dicts are reduced to one canonical JSON
    shape and hashed, so equal values produce equal keys across
    processes and hash seeds.  ``kind`` namespaces unrelated users (a
    sweep job id and a checkpoint entry built from the same mapping must
    not collide); callers version their own payloads.
    """
    body = json.dumps(
        {"kind": kind, "payload": _canonical(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode()).hexdigest()


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _sha256_bytes(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _sha256_chunks(chunks) -> str:
    """Digest a stream of text pieces: identical to hashing the joined
    string (UTF-8 encoding concatenates chunk-wise) without holding it."""
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk.encode())
    return digest.hexdigest()


def _sha256_file(path: Path, chunk_bytes: int = 1 << 20) -> str:
    """Chunked file digest: identical to ``_sha256_bytes(read_bytes())``
    without ever buffering the whole file (arrays.npz is the world)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


# -- exact (order-preserving) payloads for the derived structures -----------


def _rib_payload(rib: RibSnapshot) -> dict:
    # Paths repeat massively across groups (every group from the same
    # origin propagates along the same vantage-point paths), so the
    # payload stores each distinct path once and references it by index
    # — the RIB file shrinks severalfold and so does its decode time.
    path_table: list[list[int]] = []
    path_index: dict[tuple[int, ...], int] = {}
    groups = []
    for group in rib.groups:
        paths = []
        for vantage_point, path in group.paths.items():
            index = path_index.get(path)
            if index is None:
                index = len(path_table)
                path_index[path] = index
                path_table.append(list(path))
            paths.append([vantage_point, index])
        groups.append(
            {
                "origin": group.origin,
                "rpki_invalid": group.route_class.rpki_invalid,
                "irr_invalid": group.route_class.irr_invalid,
                "prefixes": [str(prefix) for prefix in group.prefixes],
                "paths": paths,
            }
        )
    return {
        "vantage_points": list(rib.vantage_points),
        "path_table": path_table,
        "groups": groups,
    }


def _json_array_chunks(batches):
    """Render a JSON array from batches of items, one chunk per batch.

    Each batch is dumped in one C-speed ``json.dumps`` call and the
    outer brackets stripped, so the emitted text is byte-identical to
    dumping the whole array at once while only one batch of rendered
    text is ever resident.  Empty batches are skipped (an all-empty
    stream renders ``[]``).
    """
    yield "["
    first = True
    for items in batches:
        if not items:
            continue
        text = json.dumps(items, **_JSON_COMPACT)[1:-1]
        yield text if first else "," + text
        first = False
    yield "]"


def _repeated_path_hashes(rib: RibSnapshot) -> set[int]:
    """Hash values shared by more than one path reference in the RIB.

    One sorted int64 array over every reference finds them; the array is
    transient.  The set is a superset of the *duplicated paths* (it also
    catches the astronomically rare accidental 64-bit collision between
    distinct paths, which is harmless: flagged paths merely take the
    exact dict route in :func:`_rib_payload_chunks`).
    """
    total = sum(len(group.paths) for group in rib.groups)
    hashes = np.fromiter(
        (
            hash(path)
            for group in rib.groups
            for path in group.paths.values()
        ),
        dtype=np.int64,
        count=total,
    )
    hashes.sort()
    repeats = hashes[1:][hashes[1:] == hashes[:-1]]
    return set(np.unique(repeats).tolist())


def _rib_payload_chunks(rib: RibSnapshot, batch: int = 16384):
    """Yield ``json.dumps(_rib_payload(rib), **_JSON_COMPACT)`` in pieces.

    The RIB payload text is the largest digest input (tens of MB at
    scale), and materialising the payload object graph plus its full
    JSON rendering doubled the digest-time working set.  This generator
    emits the byte-identical text in bounded batches of path-table
    entries / groups so the hash can stream.

    The payload numbers distinct paths in first-occurrence order, which
    naively needs a tuple-keyed dict spanning every distinct path — at
    scale that dict alone rivals the save-time savings.  But ~96% of
    paths occur exactly once, so their table index is just a running
    counter: only paths whose hash occurs more than once (found up
    front by :func:`_repeated_path_hashes`) go through an exact dict,
    and the per-reference indices are carried to the second pass in a
    packed int array.  Identity with :func:`_rib_payload` is pinned by
    tests (including a forced-duplicate one).
    """
    repeated = _repeated_path_hashes(rib)
    ref_index = _packed_array("q")
    shared_index: dict[tuple[int, ...], int] = {}

    def path_batches():
        pending = []
        next_index = 0
        for group in rib.groups:
            for path in group.paths.values():
                if hash(path) in repeated:
                    index = shared_index.get(path)
                    if index is None:
                        index = next_index
                        next_index += 1
                        shared_index[path] = index
                        pending.append(list(path))
                else:
                    index = next_index
                    next_index += 1
                    pending.append(list(path))
                ref_index.append(index)
                if len(pending) >= batch:
                    yield pending
                    pending = []
        yield pending

    def group_batches():
        pending = []
        pos = 0
        for group in rib.groups:
            k = len(group.paths)
            pending.append(
                {
                    "origin": group.origin,
                    "rpki_invalid": group.route_class.rpki_invalid,
                    "irr_invalid": group.route_class.irr_invalid,
                    "prefixes": [str(prefix) for prefix in group.prefixes],
                    "paths": [
                        list(pair)
                        for pair in zip(
                            group.paths.keys(),
                            ref_index[pos:pos + k],
                        )
                    ],
                }
            )
            pos += k
            if len(pending) >= max(1, batch // 16):
                yield pending
                pending = []
        yield pending

    yield '{"vantage_points":'
    yield json.dumps(list(rib.vantage_points), **_JSON_COMPACT)
    yield ',"path_table":'
    yield from _json_array_chunks(path_batches())
    shared_index.clear()
    yield ',"groups":'
    yield from _json_array_chunks(group_batches())
    yield "}"


# The four possible route classes, shared across every rebuilt group.
_ROUTE_CLASSES = {
    (rpki, irr): RouteClass(rpki_invalid=rpki, irr_invalid=irr)
    for rpki in (False, True)
    for irr in (False, True)
}


def _int_array(values: list) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


_U64_MASK = (1 << 64) - 1


def _prefix_arrays(name: str, prefixes: list[Prefix]) -> dict[str, np.ndarray]:
    """Four parallel columns storing prefixes as integers.

    A prefix is ``(value, length, version)``; the value is up to 128
    bits, split into two unsigned-64 halves.  Integer columns decode
    with :meth:`Prefix._from_trusted` in a fraction of the time text
    columns take to parse (and at a quarter of the bytes of ``U18``
    unicode storage).
    """
    values = [p.value for p in prefixes]
    return {
        f"{name}_hi": np.asarray(
            [v >> 64 for v in values], dtype=np.uint64
        ),
        f"{name}_lo": np.asarray(
            [v & _U64_MASK for v in values], dtype=np.uint64
        ),
        f"{name}_len": np.asarray(
            [p.length for p in prefixes], dtype=np.uint8
        ),
        f"{name}_ver": np.asarray(
            [p.version for p in prefixes], dtype=np.uint8
        ),
    }


def _prefix_list(arrays, name: str) -> list[Prefix]:
    """Decode one :func:`_prefix_arrays` column set back to prefixes."""
    make = Prefix._from_trusted  # noqa: SLF001 - digest-verified replay
    return [
        make((hi << 64) | lo if hi else lo, length, version)
        for hi, lo, length, version in zip(
            arrays[f"{name}_hi"].tolist(),
            arrays[f"{name}_lo"].tolist(),
            arrays[f"{name}_len"].tolist(),
            arrays[f"{name}_ver"].tolist(),
        )
    ]


def _replay(cls, fields: dict):
    """Construct a frozen dataclass instance from digest-verified fields.

    Frozen-dataclass ``__init__`` routes every assignment through
    ``object.__setattr__`` and re-runs ``__post_init__`` validation; at
    checkpoint-load row counts (hundreds of thousands) that overhead
    dominated reconstruction.  The rows replayed here were produced by
    live instances of the same classes and digest-verified on disk, so
    the instance dict is installed directly.  ``fields`` must name every
    dataclass field (defaults included) and is owned by the new instance
    afterwards.
    """
    obj = object.__new__(cls)
    # Plain attribute assignment would hit the frozen __setattr__ (which
    # also rejects __dict__ itself); updating the instance dict in place
    # bypasses it.
    obj.__dict__.update(fields)
    return obj


def _rib_arrays(rib: RibSnapshot) -> tuple[dict, dict[str, np.ndarray]]:
    """The stored form of a RIB: a small JSON meta + flat numpy columns.

    Ragged structure (per-group prefix lists, the path table, per-group
    path references) is flattened into value + offset arrays.  Binary
    columns decode orders of magnitude faster than the equivalent JSON
    — the RIB is by far the largest derived structure, and its decode
    dominated warm-start time as JSON.

    The path table stores one entry per reference (``rib_ref_path`` is
    the identity): deduplicating repeated paths only removes ~4% of the
    rows on real worlds but needs a tuple-keyed hash table spanning the
    whole RIB, which at large scales cost hundreds of MB of save-time
    RSS.  Rows stream straight into preallocated columns instead.
    :func:`_rebuild_rib` indexes through ``rib_ref_path`` either way, so
    entries written with the old deduplicated layout still load.
    """
    groups = rib.groups
    n = len(groups)
    origins = np.empty(n, dtype=np.int64)
    rpki_flags = np.empty(n, dtype=np.bool_)
    irr_flags = np.empty(n, dtype=np.bool_)
    ref_offsets = np.zeros(n + 1, dtype=np.int64)
    prefix_offsets = np.zeros(n + 1, dtype=np.int64)
    for i, group in enumerate(groups):
        origins[i] = group.origin
        rpki_flags[i] = group.route_class.rpki_invalid
        irr_flags[i] = group.route_class.irr_invalid
        ref_offsets[i + 1] = len(group.paths)
        prefix_offsets[i + 1] = len(group.prefixes)
    np.cumsum(ref_offsets, out=ref_offsets)
    np.cumsum(prefix_offsets, out=prefix_offsets)
    total_refs = int(ref_offsets[-1])
    ref_vp = np.empty(total_refs, dtype=np.int64)
    # Inclusive cumsum over per-path lengths shifted one slot right
    # turns the length buffer into the offsets column in place.
    path_offsets = np.zeros(total_refs + 1, dtype=np.int64)
    prefixes: list[Prefix] = []
    pos = 0
    for group in groups:
        k = len(group.paths)
        if k:
            ref_vp[pos:pos + k] = list(group.paths.keys())
            path_offsets[pos + 1:pos + 1 + k] = [
                len(path) for path in group.paths.values()
            ]
            pos += k
        prefixes.extend(group.prefixes)
    np.cumsum(path_offsets, out=path_offsets)
    path_values = np.fromiter(
        chain.from_iterable(
            chain.from_iterable(
                group.paths.values() for group in groups
            )
        ),
        dtype=np.int64,
        count=int(path_offsets[-1]),
    )
    meta = {"vantage_points": list(rib.vantage_points)}
    arrays = {
        "rib_origin": origins,
        "rib_rpki_invalid": rpki_flags,
        "rib_irr_invalid": irr_flags,
        **_prefix_arrays("rib_prefix", prefixes),
        "rib_prefix_offsets": prefix_offsets,
        "rib_path_values": path_values,
        "rib_path_offsets": path_offsets,
        "rib_ref_vp": ref_vp,
        "rib_ref_path": np.arange(total_refs, dtype=np.int64),
        "rib_ref_offsets": ref_offsets,
    }
    return meta, arrays


def _rebuild_rib(meta: dict, arrays) -> RibSnapshot:
    path_values = arrays["rib_path_values"].tolist()
    path_offsets = arrays["rib_path_offsets"].tolist()
    # The path table is large (one entry per (vantage point, group)
    # reference — a million-plus at full scale), so it is rebuilt with
    # map() over slice objects rather than an index-arithmetic loop.
    path_table = list(
        map(
            tuple,
            map(
                path_values.__getitem__,
                map(slice, path_offsets, path_offsets[1:]),
            ),
        )
    )
    origins = arrays["rib_origin"].tolist()
    rpki_flags = arrays["rib_rpki_invalid"].tolist()
    irr_flags = arrays["rib_irr_invalid"].tolist()
    prefixes = _prefix_list(arrays, "rib_prefix")
    prefix_offsets = arrays["rib_prefix_offsets"].tolist()
    ref_vp = arrays["rib_ref_vp"].tolist()
    ref_path = arrays["rib_ref_path"].tolist()
    ref_offsets = arrays["rib_ref_offsets"].tolist()
    get_path = path_table.__getitem__
    groups = [
        _replay(
            RouteGroup,
            {
                "origin": origins[g],
                "route_class": _ROUTE_CLASSES[(rpki_flags[g], irr_flags[g])],
                "prefixes": tuple(
                    prefixes[prefix_offsets[g]:prefix_offsets[g + 1]]
                ),
                "paths": dict(
                    zip(
                        ref_vp[ref_offsets[g]:ref_offsets[g + 1]],
                        map(
                            get_path,
                            ref_path[ref_offsets[g]:ref_offsets[g + 1]],
                        ),
                    )
                ),
            },
        )
        for g in range(len(origins))
    ]
    return RibSnapshot(
        vantage_points=tuple(meta["vantage_points"]), groups=groups
    )


def _ihr_payload(ihr: IHRDataset) -> dict:
    return {
        "prefix_origins": [
            [
                str(record.prefix),
                record.origin,
                record.rpki.value,
                record.irr.value,
                record.visibility,
            ]
            for record in ihr.prefix_origins
        ],
        "transit_groups": [
            {
                "origin": group.origin,
                "prefixes": [str(prefix) for prefix in group.prefixes],
                "statuses": [
                    [rpki.value, irr.value] for rpki, irr in group.statuses
                ],
                "transits": [
                    [transit, info.hegemony, info.from_customer]
                    for transit, info in group.transits.items()
                ],
                "visibility": group.visibility,
            }
            for group in ihr.transit_groups
        ],
    }


#: Enum ``__call__`` is surprisingly expensive at checkpoint-load call
#: counts (hundreds of thousands of status lookups); plain dicts are ~5x
#: cheaper and raise KeyError on unknown values just as safely.
_RPKI_BY_VALUE = {status.value: status for status in RPKIStatus}
_IRR_BY_VALUE = {status.value: status for status in IRRStatus}


def _ihr_arrays(ihr: IHRDataset) -> tuple[dict, dict[str, np.ndarray]]:
    """The stored form of the IHR tables: JSON meta + flat numpy columns.

    Statuses are stored as indexes into per-enum legends recorded in the
    meta, so an entry written under a different enum definition fails the
    legend lookup loudly (→ corrupt fallback) instead of silently
    reinterpreting codes.  Prefix/status columns of the transit groups
    are parallel (aligned with ``prefixes``) and share one offsets array.
    """
    rpki_index = {status: i for i, status in enumerate(RPKIStatus)}
    irr_index = {status: i for i, status in enumerate(IRRStatus)}
    po = ihr.prefix_origins
    tg_prefix: list[Prefix] = []
    tg_rpki: list[int] = []
    tg_irr: list[int] = []
    tg_offsets = [0]
    tr_asn: list[int] = []
    tr_hegemony: list[float] = []
    tr_from_customer: list[bool] = []
    tr_offsets = [0]
    for group in ihr.transit_groups:
        tg_prefix.extend(group.prefixes)
        tg_rpki.extend(rpki_index[rpki] for rpki, _ in group.statuses)
        tg_irr.extend(irr_index[irr] for _, irr in group.statuses)
        tg_offsets.append(len(tg_prefix))
        for transit, info in group.transits.items():
            tr_asn.append(transit)
            tr_hegemony.append(info.hegemony)
            tr_from_customer.append(info.from_customer)
        tr_offsets.append(len(tr_asn))
    meta = {
        "rpki_values": [status.value for status in RPKIStatus],
        "irr_values": [status.value for status in IRRStatus],
    }
    arrays = {
        **_prefix_arrays("po_prefix", [r.prefix for r in po]),
        "po_origin": _int_array([r.origin for r in po]),
        "po_rpki": _int_array([rpki_index[r.rpki] for r in po]),
        "po_irr": _int_array([irr_index[r.irr] for r in po]),
        "po_visibility": _int_array([r.visibility for r in po]),
        "tg_origin": _int_array([g.origin for g in ihr.transit_groups]),
        "tg_visibility": _int_array(
            [g.visibility for g in ihr.transit_groups]
        ),
        **_prefix_arrays("tg_prefix", tg_prefix),
        "tg_rpki": _int_array(tg_rpki),
        "tg_irr": _int_array(tg_irr),
        "tg_offsets": _int_array(tg_offsets),
        "tr_asn": _int_array(tr_asn),
        "tr_hegemony": np.asarray(tr_hegemony, dtype=np.float64),
        "tr_from_customer": np.asarray(tr_from_customer, dtype=np.bool_),
        "tr_offsets": _int_array(tr_offsets),
    }
    return meta, arrays


def _rebuild_ihr(meta: dict, arrays) -> IHRDataset:
    rpki_legend = [_RPKI_BY_VALUE[value] for value in meta["rpki_values"]]
    irr_legend = [_IRR_BY_VALUE[value] for value in meta["irr_values"]]
    prefix_origins = [
        _replay(
            PrefixOriginRecord,
            {
                "prefix": prefix,
                "origin": origin,
                "rpki": rpki_legend[rpki],
                "irr": irr_legend[irr],
                "visibility": visibility,
            },
        )
        for prefix, origin, rpki, irr, visibility in zip(
            _prefix_list(arrays, "po_prefix"),
            arrays["po_origin"].tolist(),
            arrays["po_rpki"].tolist(),
            arrays["po_irr"].tolist(),
            arrays["po_visibility"].tolist(),
        )
    ]
    tg_prefix = _prefix_list(arrays, "tg_prefix")
    tg_rpki = arrays["tg_rpki"].tolist()
    tg_irr = arrays["tg_irr"].tolist()
    tg_offsets = arrays["tg_offsets"].tolist()
    tr_asn = arrays["tr_asn"].tolist()
    tr_hegemony = arrays["tr_hegemony"].tolist()
    tr_from_customer = arrays["tr_from_customer"].tolist()
    tr_offsets = arrays["tr_offsets"].tolist()
    transit_groups = [
        _replay(
            TransitGroup,
            {
                "origin": origin,
                "prefixes": tuple(tg_prefix[tg_offsets[g]:tg_offsets[g + 1]]),
                "statuses": tuple(
                    (rpki_legend[tg_rpki[j]], irr_legend[tg_irr[j]])
                    for j in range(tg_offsets[g], tg_offsets[g + 1])
                ),
                "transits": {
                    tr_asn[j]: _replay(
                        TransitInfo,
                        {
                            "hegemony": tr_hegemony[j],
                            "from_customer": tr_from_customer[j],
                        },
                    )
                    for j in range(tr_offsets[g], tr_offsets[g + 1])
                },
                "visibility": visibility,
            },
        )
        for g, (origin, visibility) in enumerate(
            zip(arrays["tg_origin"].tolist(), arrays["tg_visibility"].tolist())
        )
    ]
    return IHRDataset(prefix_origins=prefix_origins, transit_groups=transit_groups)


def _topology_payload(topology: ASTopology) -> dict:
    return {
        "orgs": [
            [org.org_id, org.name, org.country]
            for org in topology.organizations
        ],
        "ases": [
            [
                record.asn,
                record.org_id,
                record.country,
                record.rir.value,
                record.category.value,
            ]
            # _ases preserves generator insertion order; org.asns append
            # order depends on it, so replay must follow the same order.
            for record in (
                topology.get_as(asn) for asn in topology._ases  # noqa: SLF001
            )
        ],
    }


def _rebuild_topology(payload: dict, relationships_text: str) -> ASTopology:
    topology = ASTopology()
    for org_id, name, country in payload["orgs"]:
        topology.add_org(Organization(org_id=org_id, name=name, country=country))
    for asn, org_id, country, rir, category in payload["ases"]:
        topology.add_as(
            AutonomousSystem(
                asn=asn,
                org_id=org_id,
                country=country,
                rir=RIR(rir),
                category=ASCategory(category),
            )
        )
    for a, b, relationship in parse_relationships(relationships_text):
        topology.add_link(a, b, relationship)
    return topology


def _rpki_payload(
    repository: RPKIRepository,
) -> tuple[dict, dict[str, np.ndarray]]:
    """The stored RPKI repository: JSON meta + flat numpy columns.

    Certificate resources and ROA rows are the prefix/date-heavy parts;
    they live in the shared ``arrays.npz`` like the RIB and scenario
    rows.  RIRs are stored as legend indexes (see ``rir_values``).
    """
    rir_index = {rir: i for i, rir in enumerate(RIR)}
    certs = list(repository.certificates.values())
    resources: list[Prefix] = []
    res_offsets = [0]
    for cert in certs:
        resources.extend(cert.resources)
        res_offsets.append(len(resources))
    roas = repository.roas
    meta = {
        "next_cert": repository._next_cert,  # noqa: SLF001
        "rir_values": [rir.value for rir in RIR],
        "certificates": [
            [
                cert.certificate_id,
                cert.subject,
                cert.issuer_id,
                rir_index[cert.trust_anchor],
                cert.not_before.toordinal(),
                cert.not_after.toordinal(),
                cert.revoked,
            ]
            for cert in certs
        ],
        "roa_cert_ids": [roa.certificate_id for roa in roas],
    }
    arrays = {
        **_prefix_arrays("cert_res", resources),
        "cert_res_offsets": _int_array(res_offsets),
        **_prefix_arrays("roa_prefix", [r.prefix for r in roas]),
        "roa_asn": _int_array([r.asn for r in roas]),
        "roa_maxlen": np.asarray(
            [r.max_length for r in roas], dtype=np.uint8
        ),
        "roa_not_before": _int_array(
            [r.not_before.toordinal() for r in roas]
        ),
        "roa_not_after": _int_array([r.not_after.toordinal() for r in roas]),
    }
    return meta, arrays


def _rebuild_rpki(payload: dict, arrays) -> RPKIRepository:
    rir_legend = [_RIR_BY_VALUE[value] for value in payload["rir_values"]]
    resources = _prefix_list(arrays, "cert_res")
    res_offsets = arrays["cert_res_offsets"].tolist()
    from_ordinal = date.fromordinal
    certificates = {
        cert_id: _replay(
            ResourceCertificate,
            {
                "certificate_id": cert_id,
                "subject": subject,
                "resources": tuple(
                    resources[res_offsets[i]:res_offsets[i + 1]]
                ),
                "issuer_id": issuer_id,
                "trust_anchor": rir_legend[trust_anchor],
                "not_before": from_ordinal(not_before),
                "not_after": from_ordinal(not_after),
                "revoked": revoked,
            },
        )
        for i, (
            cert_id,
            subject,
            issuer_id,
            trust_anchor,
            not_before,
            not_after,
            revoked,
        ) in enumerate(payload["certificates"])
    }
    roas = [
        _replay(
            ROA,
            {
                "prefix": prefix,
                "asn": asn,
                "max_length": max_length,
                "certificate_id": certificate_id,
                "not_before": from_ordinal(not_before),
                "not_after": from_ordinal(not_after),
            },
        )
        for prefix, asn, max_length, certificate_id, not_before, not_after in zip(
            _prefix_list(arrays, "roa_prefix"),
            arrays["roa_asn"].tolist(),
            arrays["roa_maxlen"].tolist(),
            payload["roa_cert_ids"],
            arrays["roa_not_before"].tolist(),
            arrays["roa_not_after"].tolist(),
        )
    ]
    return RPKIRepository(
        certificates=certificates, roas=roas, _next_cert=payload["next_cert"]
    )


def _behavior_payload(behavior: ASBehavior) -> list:
    return [
        behavior.member,
        behavior.program.value if behavior.program is not None else None,
        behavior.rpki_fraction,
        behavior.rpki_misconfig_count,
        behavior.irr_fraction,
        behavior.irr_stale_fraction,
        behavior.rov,
        behavior.filter_customers,
        behavior.filter_coverage,
        behavior.rpki_adoption_year,
    ]


def _rebuild_behavior(fields: list) -> ASBehavior:
    (
        member,
        program,
        rpki_fraction,
        rpki_misconfig_count,
        irr_fraction,
        irr_stale_fraction,
        rov,
        filter_customers,
        filter_coverage,
        rpki_adoption_year,
    ) = fields
    return ASBehavior(
        member=member,
        program=Program(program) if program is not None else None,
        rpki_fraction=rpki_fraction,
        rpki_misconfig_count=rpki_misconfig_count,
        irr_fraction=irr_fraction,
        irr_stale_fraction=irr_stale_fraction,
        rov=rov,
        filter_customers=filter_customers,
        filter_coverage=filter_coverage,
        rpki_adoption_year=rpki_adoption_year,
    )


#: RIR values are stored as indexes into this legend (recorded in the
#: scenario meta), mirroring the status legends of the IHR arrays.
_RIR_BY_VALUE = {rir.value: rir for rir in RIR}


def _date_ordinal(value: date | None) -> int:
    """Dates as proleptic-Gregorian ordinals; 0 encodes ``None``."""
    return value.toordinal() if value is not None else 0


def _scenario_payload(world: World) -> tuple[dict, dict[str, np.ndarray]]:
    """The stored scenario state: JSON meta + flat numpy columns.

    Everything prefix- or date-heavy (originations, delegations, VRPs,
    IRR route rows) lives in integer columns of the shared ``arrays.npz``;
    the JSON side keeps the strings and small structures.  Row order is
    the respective source iteration order, which the rebuilds replay
    exactly (IRR rows in particular must re-insert in ``all_routes()``
    order to reproduce within-node trie ordering).
    """
    rir_index = {rir: i for i, rir in enumerate(RIR)}
    originations = [
        o for rows in world.originations.values() for o in rows
    ]
    orig_offsets = [0]
    for rows in world.originations.values():
        orig_offsets.append(orig_offsets[-1] + len(rows))
    delegations = world.address_space.delegations
    vrps = world.rov.all_vrps()
    irr_routes: list[RouteObject] = []
    irr_offsets = [0]
    for database in world.irr.databases:
        irr_routes.extend(database.all_routes())
        irr_offsets.append(len(irr_routes))
    meta = {
        "seed": world.seed,
        "scale": world.scale,
        "quiescent": sorted(world.quiescent),
        "vantage_points": list(world.vantage_points),
        "rir_values": [rir.value for rir in RIR],
        "behaviors": {
            str(asn): _behavior_payload(behavior)
            for asn, behavior in world.behaviors.items()
        },
        "delegation_orgs": [d.org_id for d in delegations],
        "irr_databases": [
            {
                "name": database.name,
                "authoritative_for": (
                    database.authoritative_for.value
                    if database.authoritative_for is not None
                    else None
                ),
                # Per-row string fields, parallel to the route columns
                # in the arrays (route rows duplicate the RPSL dumps in
                # the bundle; reloading them skips the RPSL parser).
                "route_strings": [
                    [route.mnt_by, route.descr]
                    for route in irr_routes[
                        irr_offsets[i]:irr_offsets[i + 1]
                    ]
                ],
                # aut-num and as-set objects, structured (the route
                # dumps in the dataset bundle carry route objects only,
                # and re-parsing RPSL text was measurably slow).
                "aut_nums": [
                    [
                        a.asn,
                        a.as_name,
                        a.source,
                        a.mnt_by,
                        a.admin_c,
                        a.tech_c,
                        list(a.import_lines),
                        list(a.export_lines),
                        (
                            a.last_modified.isoformat()
                            if a.last_modified
                            else None
                        ),
                    ]
                    for a in database._aut_nums.values()  # noqa: SLF001
                ],
                "as_sets": [
                    [s.name, list(s.members), s.source, s.mnt_by]
                    for s in database._as_sets.values()  # noqa: SLF001
                ],
            }
            for i, database in enumerate(world.irr.databases)
        ],
    }
    arrays = {
        "orig_asn": _int_array(list(world.originations)),
        "orig_offsets": _int_array(orig_offsets),
        **_prefix_arrays("orig_prefix", [o.prefix for o in originations]),
        **_prefix_arrays("orig_block", [o.block for o in originations]),
        "orig_legacy": np.asarray(
            [o.legacy for o in originations], dtype=np.bool_
        ),
        "orig_deagg": np.asarray(
            [o.deaggregated for o in originations], dtype=np.bool_
        ),
        **_prefix_arrays("del_prefix", [d.prefix for d in delegations]),
        "del_rir": np.asarray(
            [rir_index[d.rir] for d in delegations], dtype=np.uint8
        ),
        "del_date": _int_array(
            [_date_ordinal(d.allocated_on) for d in delegations]
        ),
        "del_legacy": np.asarray(
            [d.legacy for d in delegations], dtype=np.bool_
        ),
        **_prefix_arrays("vrp_prefix", [v.prefix for v in vrps]),
        "vrp_asn": _int_array([v.asn for v in vrps]),
        "vrp_maxlen": np.asarray(
            [v.max_length for v in vrps], dtype=np.uint8
        ),
        "vrp_ta": np.asarray(
            [rir_index[v.trust_anchor] for v in vrps], dtype=np.uint8
        ),
        **_prefix_arrays("irr_prefix", [r.prefix for r in irr_routes]),
        "irr_origin": _int_array([r.origin for r in irr_routes]),
        "irr_created": _int_array(
            [_date_ordinal(r.created) for r in irr_routes]
        ),
        "irr_modified": _int_array(
            [_date_ordinal(r.last_modified) for r in irr_routes]
        ),
        "irr_offsets": _int_array(irr_offsets),
    }
    return meta, arrays


def _rebuild_originations(arrays) -> dict[int, tuple[Origination, ...]]:
    prefixes = _prefix_list(arrays, "orig_prefix")
    blocks = _prefix_list(arrays, "orig_block")
    legacy = arrays["orig_legacy"].tolist()
    deagg = arrays["orig_deagg"].tolist()
    offsets = arrays["orig_offsets"].tolist()
    return {
        asn: tuple(
            _replay(
                Origination,
                {
                    "asn": asn,
                    "prefix": prefixes[j],
                    "block": blocks[j],
                    "legacy": legacy[j],
                    "deaggregated": deagg[j],
                },
            )
            for j in range(offsets[i], offsets[i + 1])
        )
        for i, asn in enumerate(arrays["orig_asn"].tolist())
    }


def _rebuild_delegations(meta: dict, arrays) -> list[Delegation]:
    rir_legend = [_RIR_BY_VALUE[value] for value in meta["rir_values"]]
    from_ordinal = date.fromordinal
    return [
        _replay(
            Delegation,
            {
                "prefix": prefix,
                "rir": rir_legend[rir],
                "org_id": org_id,
                "allocated_on": from_ordinal(ordinal),
                "legacy": legacy,
            },
        )
        for prefix, rir, org_id, ordinal, legacy in zip(
            _prefix_list(arrays, "del_prefix"),
            arrays["del_rir"].tolist(),
            meta["delegation_orgs"],
            arrays["del_date"].tolist(),
            arrays["del_legacy"].tolist(),
        )
    ]


def _rebuild_vrps(meta: dict, arrays) -> list[VRP]:
    rir_legend = [_RIR_BY_VALUE[value] for value in meta["rir_values"]]
    return [
        _replay(
            VRP,
            {
                "prefix": prefix,
                "asn": asn,
                "max_length": max_length,
                "trust_anchor": rir_legend[ta],
            },
        )
        for prefix, asn, max_length, ta in zip(
            _prefix_list(arrays, "vrp_prefix"),
            arrays["vrp_asn"].tolist(),
            arrays["vrp_maxlen"].tolist(),
            arrays["vrp_ta"].tolist(),
        )
    ]


def _rebuild_irr(meta: dict, arrays) -> IRRCollection:
    prefixes = _prefix_list(arrays, "irr_prefix")
    origins = arrays["irr_origin"].tolist()
    created = arrays["irr_created"].tolist()
    modified = arrays["irr_modified"].tolist()
    offsets = arrays["irr_offsets"].tolist()
    from_ordinal = date.fromordinal
    irr = IRRCollection()
    for i, db_meta in enumerate(meta["irr_databases"]):
        authoritative = db_meta["authoritative_for"]
        name = db_meta["name"]
        database = IRRDatabase(
            name,
            authoritative_for=RIR(authoritative) if authoritative else None,
        )
        # Rows are stored in all_routes() (address) order; re-inserting
        # in that order reproduces the within-node value ordering, so a
        # re-export of the warm database is byte-identical to the dump.
        # Inserts go straight into the trie: add_route's source and
        # authoritative-space checks were already enforced when the cold
        # build registered these exact routes, and re-running them
        # dominated warm-start time.  The address ordering also makes
        # the rows a valid insert_sorted stream.
        start, end = offsets[i], offsets[i + 1]
        route_objects = [
            _replay(
                RouteObject,
                {
                    "prefix": prefixes[j],
                    "origin": origins[j],
                    "source": name,
                    "mnt_by": mnt_by,
                    "descr": descr,
                    "created": (
                        from_ordinal(created[j]) if created[j] else None
                    ),
                    "last_modified": (
                        from_ordinal(modified[j]) if modified[j] else None
                    ),
                },
            )
            for j, (mnt_by, descr) in zip(
                range(start, end), db_meta["route_strings"]
            )
        ]
        database._routes.insert_sorted(  # noqa: SLF001
            (route.prefix, route) for route in route_objects
        )
        database._version = end - start  # noqa: SLF001
        for row in db_meta["aut_nums"]:
            (
                asn,
                as_name,
                source,
                mnt_by,
                admin_c,
                tech_c,
                import_lines,
                export_lines,
                last_modified,
            ) = row
            database.add_aut_num(
                AutNumObject(
                    asn=asn,
                    as_name=as_name,
                    source=source,
                    mnt_by=mnt_by,
                    admin_c=admin_c,
                    tech_c=tech_c,
                    import_lines=tuple(import_lines),
                    export_lines=tuple(export_lines),
                    last_modified=(
                        date.fromisoformat(last_modified)
                        if last_modified
                        else None
                    ),
                )
            )
        for s_name, members, source, mnt_by in db_meta["as_sets"]:
            database.add_as_set(
                AsSetObject(
                    name=s_name,
                    members=tuple(members),
                    source=source,
                    mnt_by=mnt_by,
                )
            )
        irr.add_database(database)
    return irr


# -- world identity digests -------------------------------------------------


def dataset_digests(world: World) -> dict[str, str]:
    """Per-artifact SHA-256 digests of a world's canonical serialisations.

    Every artifact is rendered through the same serialisers the dataset
    bundle and checkpoint entries use, so two worlds with equal digests
    export byte-identical files.  This is the identity the golden-digest
    suite pins and the warm-equals-cold tests assert.
    """
    # Each artifact is hashed as soon as it is rendered (the largest —
    # the RIB — streams through _rib_payload_chunks without ever being
    # rendered whole), so digesting never holds more than one
    # serialisation resident at a time.
    return {
        "prefix2as": _sha256_text(serialize_prefix2as_text(world)),
        "as2org": _sha256_text(serialize_as2org(world.as2org)),
        "relationships": _sha256_text(
            serialize_relationships(world.topology)
        ),
        "vrps": _sha256_text(
            serialize_vrps(world.rov.all_vrps(), world.snapshot_date)
        ),
        "participants": _sha256_text(
            serialize_participants(world.manrs)
        ),
        "asrank": _sha256_text(
            serialize_asrank(build_asrank(world.topology))
        ),
        "irr": _sha256_chunks(
            f"% {database.name}\n"
            + serialize_database(list(database.all_routes()))
            for database in world.irr.databases
        ),
        "rib": _sha256_chunks(_rib_payload_chunks(world.rib)),
        "ihr": _sha256_text(
            json.dumps(_ihr_payload(world.ihr), **_JSON_COMPACT)
        ),
    }


def serialize_prefix2as_text(world: World) -> str:
    from repro.bgp.table import serialize_prefix2as

    return serialize_prefix2as(world.prefix2as)


def world_digest(world: World) -> str:
    """One digest over all of :func:`dataset_digests` (sorted by name)."""
    payload = json.dumps(dataset_digests(world), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


# -- the store ---------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one stored entry (as listed by ``repro cache list``)."""

    key: str
    path: Path
    scale: float | None
    seed: int | None
    created: float | None
    n_files: int
    n_bytes: int
    complete: bool


class CheckpointStore:
    """A content-addressed directory of world checkpoints."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- paths --------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key

    def _manifest_path(self, key: str) -> Path:
        return self.path_for(key) / MANIFEST_FILE

    def has(self, config: ScenarioConfig, scale: float, seed: int) -> bool:
        """True if an entry exists for these build inputs (unverified)."""
        return self._manifest_path(checkpoint_key(config, scale, seed)).is_file()

    # -- save ---------------------------------------------------------------

    def save(self, world: World) -> Path:
        """Persist ``world`` under its content key; returns the entry path.

        Writing is atomic-ish: the entry is assembled in a temporary
        sibling directory and renamed into place, so a crashed writer
        never leaves a half-entry under a valid key.  An existing entry
        for the same key is left untouched (content-addressed entries
        for equal inputs hold equal bytes).
        """
        key = checkpoint_key(world.config, world.scale, world.seed)
        entry = self.path_for(key)
        if (entry / MANIFEST_FILE).is_file():
            return entry
        self.root.mkdir(parents=True, exist_ok=True)
        staging = self.root / f".staging-{key[:16]}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        with obs.span("checkpoint.save", key=key[:12]):
            export_world(world, staging)
            # One stage's columns are alive at a time: each stage's
            # arrays stream into the archive (same member order np.savez
            # produced) and are released before the next stage is even
            # built, so save-time RSS no longer doubles the world.
            with ColumnWriter(staging / ARRAYS_FILE) as writer:
                rib_meta, stage_arrays = _rib_arrays(world.rib)
                writer.write_all(stage_arrays)
                ihr_meta, stage_arrays = _ihr_arrays(world.ihr)
                writer.write_all(stage_arrays)
                scenario_meta, stage_arrays = _scenario_payload(world)
                writer.write_all(stage_arrays)
                rpki_meta, stage_arrays = _rpki_payload(world.rpki_repository)
                writer.write_all(stage_arrays)
                del stage_arrays
            payloads = {
                TOPOLOGY_FILE: _topology_payload(world.topology),
                SCENARIO_FILE: scenario_meta,
                RPKI_FILE: rpki_meta,
                RIB_FILE: rib_meta,
                IHR_FILE: ihr_meta,
            }
            for name, payload in payloads.items():
                (staging / name).write_text(
                    json.dumps(payload, **_JSON_COMPACT)
                )
            files = {
                path.name: _sha256_file(path)
                for path in sorted(staging.iterdir())
            }
            manifest = {
                "schema_version": SCHEMA_VERSION,
                "key": key,
                "scale": world.scale,
                "seed": world.seed,
                "config": canonical_config(world.config),
                "created": time.time(),
                "files": files,
            }
            (staging / MANIFEST_FILE).write_text(
                json.dumps(manifest, indent=1, sort_keys=True)
            )
            try:
                os.replace(staging, entry)
            except OSError:
                # Raced with another writer: keep theirs, drop ours.
                shutil.rmtree(staging, ignore_errors=True)
        obs.add("checkpoint.saved")
        return entry

    # -- rendered-result payloads (the serve layer's cache) -----------------

    def result_path(self, key: str) -> Path:
        """Where the rendered-result payload for ``key`` lives on disk."""
        return self.root / "results" / f"{key}.json"

    def save_result(self, key: str, payload: dict) -> Path:
        """Persist one rendered-result payload under its content key.

        Results live under ``<root>/results/<key>.json`` beside the world
        entries, wrapped with a digest over the canonical record so a
        truncated or hand-edited file is detected on load.  Writing is
        atomic (temp file + rename), and an existing entry for the same
        key is left untouched — content-addressed keys for equal inputs
        hold equal payloads.
        """
        path = self.result_path(key)
        if path.is_file():
            return path
        record = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "created": time.time(),
            "payload": payload,
        }
        record["sha256"] = _sha256_text(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / f".staging-{key[:16]}-{os.getpid()}.json"
        staging.write_text(json.dumps(record, sort_keys=True, indent=1))
        try:
            os.replace(staging, path)
        except OSError:
            staging.unlink(missing_ok=True)
        obs.add("checkpoint.result_saved")
        return path

    def load_result(self, key: str) -> dict | None:
        """The stored rendered-result payload for ``key``, or None.

        Mirrors :meth:`load`'s corrupt-entry contract: digest mismatches,
        schema skew and parse errors log a warning, discard the file,
        count ``checkpoint.result_corrupt`` and fall back to a miss —
        callers never see a tampered payload.
        """
        path = self.result_path(key)
        if not path.is_file():
            obs.add("checkpoint.result_miss")
            return None
        try:
            record = json.loads(path.read_text())
            stated = record.pop("sha256")
            computed = _sha256_text(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
            if stated != computed:
                raise CheckpointError("result digest mismatch")
            if record.get("schema_version") != SCHEMA_VERSION:
                raise CheckpointError("result schema skew")
            if record.get("key") != key:
                raise CheckpointError("result key mismatch")
            payload = record["payload"]
        except Exception as error:  # noqa: BLE001 - corrupt entry = miss
            log.warning("discarding corrupt result %s: %s", key[:16], error)
            path.unlink(missing_ok=True)
            obs.add("checkpoint.result_corrupt")
            return None
        obs.add("checkpoint.result_hit")
        return payload

    def result_keys(self) -> list[str]:
        """Keys of every stored result payload (unverified)."""
        results_dir = self.root / "results"
        if not results_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in results_dir.glob("*.json")
            if not path.name.startswith(".")
        )

    # -- load ---------------------------------------------------------------

    def load(
        self,
        config: ScenarioConfig,
        scale: float,
        seed: int,
        mode: str | None = None,
    ) -> World | None:
        """Reconstruct the world for these inputs, or None on any problem.

        Never raises for a bad entry: digest mismatches, schema skew and
        parse errors log a warning, discard the entry, count
        ``checkpoint.corrupt`` and fall back to a miss.

        ``mode`` selects the reconstruction strategy and defaults to
        ``REPRO_WORLD_LOAD`` (``columnar`` unless overridden): the
        columnar path memory-maps the verified columns and materialises
        dataclass views lazily; ``eager`` decodes the whole object graph
        up front as earlier releases did.  Both yield digest-identical
        worlds.
        """
        key = checkpoint_key(config, scale, seed)
        entry = self.path_for(key)
        if not (entry / MANIFEST_FILE).is_file():
            obs.add("checkpoint.miss")
            return None
        if mode is None:
            mode = world_load_mode()
        try:
            # Eager reconstruction allocates the same millions of
            # long-lived, acyclic objects a cold build does; pause the
            # cyclic GC for the batch exactly like build_world does
            # (symmetry matters: mid-load generation-2 collections
            # re-scan every world held by the process and dwarf the load
            # itself).  The columnar path defers that pause to each
            # field's materialisation.
            with obs.span("checkpoint.load", key=key[:12]), obs.gc_paused(
                freeze=True
            ):
                manifest = self._read_manifest(entry)
                problems = self._verify_files(entry, manifest)
                if problems:
                    raise CheckpointError("; ".join(problems))
                if mode == "columnar":
                    world = self._open_columnar(entry, config)
                else:
                    world = self._reconstruct(entry, manifest, config)
        except Exception as error:  # noqa: BLE001 - fall back to cold build
            log.warning(
                "discarding corrupt checkpoint %s (%s); falling back to a "
                "cold build",
                key[:12],
                error,
            )
            obs.add("checkpoint.corrupt")
            shutil.rmtree(entry, ignore_errors=True)
            return None
        obs.add("checkpoint.hit")
        return world

    def _read_manifest(self, entry: Path) -> dict:
        manifest = json.loads((entry / MANIFEST_FILE).read_text())
        version = manifest.get("schema_version")
        if version != SCHEMA_VERSION:
            raise CheckpointError(
                f"schema version skew: entry has {version!r}, "
                f"loader expects {SCHEMA_VERSION}"
            )
        return manifest

    def _verify_files(self, entry: Path, manifest: dict) -> list[str]:
        problems = []
        for name, expected in sorted(manifest.get("files", {}).items()):
            path = entry / name
            if not path.is_file():
                problems.append(f"{name}: missing")
                continue
            if _sha256_file(path) != expected:
                problems.append(f"{name}: digest mismatch")
        years = entry / YEARS_DIR
        if years.is_dir():
            for path in sorted(years.glob("*.csv")):
                sidecar = path.with_suffix(".csv.sha256")
                if not sidecar.is_file():
                    problems.append(f"{YEARS_DIR}/{path.name}: no digest")
                elif _sha256_text(path.read_text()) != sidecar.read_text().strip():
                    problems.append(f"{YEARS_DIR}/{path.name}: digest mismatch")
        return problems

    def _open_columnar(self, entry: Path, config: ScenarioConfig) -> World:
        """The columnar-first load: map columns, materialise views lazily."""
        from repro.datasets.columnar import LazyWorld, WorldColumns

        return LazyWorld.from_columns(WorldColumns.open(entry), config)

    def _reconstruct(
        self, entry: Path, manifest: dict, config: ScenarioConfig
    ) -> World:
        scenario = json.loads((entry / SCENARIO_FILE).read_text())
        topology = _rebuild_topology(
            json.loads((entry / TOPOLOGY_FILE).read_text()),
            (entry / RELATIONSHIPS_FILE).read_text(),
        )
        behaviors = {
            int(asn): _rebuild_behavior(fields)
            for asn, fields in scenario["behaviors"].items()
        }
        policies = derive_policies(topology, behaviors)
        with np.load(entry / ARRAYS_FILE, allow_pickle=False) as arrays:
            rib = _rebuild_rib(
                json.loads((entry / RIB_FILE).read_text()), arrays
            )
            ihr = _rebuild_ihr(
                json.loads((entry / IHR_FILE).read_text()), arrays
            )
            originations = _rebuild_originations(arrays)
            delegations = _rebuild_delegations(scenario, arrays)
            vrps = _rebuild_vrps(scenario, arrays)
            irr = _rebuild_irr(scenario, arrays)
            rpki_repository = _rebuild_rpki(
                json.loads((entry / RPKI_FILE).read_text()), arrays
            )
        return World(
            config=config,
            seed=scenario["seed"],
            topology=topology,
            quiescent=frozenset(scenario["quiescent"]),
            as2org=As2Org.from_topology(topology),
            size_of=classify_all(topology),
            manrs=parse_participants((entry / PARTICIPANTS_FILE).read_text()),
            address_space=AddressSpace.restore(delegations),
            originations=originations,
            behaviors=behaviors,
            policies=policies,
            rpki_repository=rpki_repository,
            irr=irr,
            engine=PropagationEngine(topology, policies),
            vantage_points=tuple(scenario["vantage_points"]),
            rov=ROVValidator(vrps),
            rib=rib,
            ihr=ihr,
            prefix2as=Prefix2AS.from_rib(rib),
            scale=scenario["scale"],
        )

    # -- timeline year side-cars --------------------------------------------

    def year_path(self, key: str, year: int) -> Path:
        return self.path_for(key) / YEARS_DIR / f"vrps-{year}.csv"

    def save_year_vrps(
        self, key: str, year: int, vrps: list[VRP], as_of: date
    ) -> Path:
        """Persist one year-end VRP snapshot next to its world entry."""
        path = self.year_path(key, year)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = serialize_vrps(vrps, as_of)
        path.write_text(text)
        path.with_suffix(".csv.sha256").write_text(_sha256_text(text) + "\n")
        obs.add("checkpoint.year_saved")
        return path

    def load_year_vrps(
        self, key: str, year: int, strict: bool = False
    ) -> list[VRP] | None:
        """One stored year-end VRP snapshot, or None when absent.

        A snapshot that is present but fails its sidecar digest (or does
        not parse) is discarded either way; with ``strict=False`` that is
        silently folded into the absent case, with ``strict=True`` a
        :class:`CheckpointError` is raised after cleanup so callers can
        tell "never saved" apart from "saved but corrupt" (the timeline
        counts the latter separately).
        """
        path = self.year_path(key, year)
        sidecar = path.with_suffix(".csv.sha256")
        if not path.is_file() or not sidecar.is_file():
            return None
        try:
            text = path.read_text()
            if _sha256_text(text) != sidecar.read_text().strip():
                raise CheckpointError("digest mismatch")
            return parse_vrps(text)
        except Exception as error:  # noqa: BLE001 - recompute instead
            log.warning(
                "discarding corrupt year snapshot %s (%s)", path, error
            )
            obs.add("checkpoint.corrupt")
            path.unlink(missing_ok=True)
            sidecar.unlink(missing_ok=True)
            if strict:
                raise CheckpointError(
                    f"corrupt year snapshot for {key} year {year}: {error}"
                ) from error
            return None

    # -- maintenance (the `repro cache` subcommand) -------------------------

    def entries(self) -> list[CheckpointInfo]:
        """All entries, most recently created first."""
        infos = []
        if not self.root.is_dir():
            return infos
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or path.name.startswith("."):
                continue
            if path.name in RESERVED_DIRS:
                continue
            manifest_path = path / MANIFEST_FILE
            scale = seed = created = None
            complete = False
            if manifest_path.is_file():
                try:
                    manifest = json.loads(manifest_path.read_text())
                    scale = manifest.get("scale")
                    seed = manifest.get("seed")
                    created = manifest.get("created")
                    complete = manifest.get("schema_version") == SCHEMA_VERSION
                except (OSError, ValueError):
                    pass
            files = [p for p in path.rglob("*") if p.is_file()]
            infos.append(
                CheckpointInfo(
                    key=path.name,
                    path=path,
                    scale=scale,
                    seed=seed,
                    created=created,
                    n_files=len(files),
                    n_bytes=sum(p.stat().st_size for p in files),
                    complete=complete,
                )
            )
        infos.sort(key=lambda info: (info.created or 0.0), reverse=True)
        return infos

    def verify(self) -> dict[str, list[str]]:
        """Per-entry verification problems (empty list = entry is sound)."""
        report: dict[str, list[str]] = {}
        for info in self.entries():
            if not info.complete:
                report[info.key] = ["manifest missing or schema skew"]
                continue
            try:
                manifest = self._read_manifest(info.path)
                report[info.key] = self._verify_files(info.path, manifest)
            except Exception as error:  # noqa: BLE001 - report, don't raise
                report[info.key] = [str(error)]
        return report

    def prune(self, keep: int = 0) -> list[str]:
        """Delete entries beyond the ``keep`` most recent; returns keys."""
        removed = []
        for info in self.entries()[max(0, keep):]:
            shutil.rmtree(info.path, ignore_errors=True)
            removed.append(info.key)
        return removed


def default_store() -> CheckpointStore | None:
    """The store named by the active runtime config, or None when unset.

    Resolved through :func:`repro.config.current` (falling back to
    ``REPRO_CACHE_DIR``).
    """
    root = _config.current().cache_dir
    return CheckpointStore(root) if root else None
