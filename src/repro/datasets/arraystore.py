"""Memory-mapped access to the checkpoint ``arrays.npz`` column store.

``np.savez`` writes an *uncompressed* zip archive whose members are
plain ``.npy`` blobs stored contiguously, so every column can be mapped
straight out of the file instead of decoded into fresh allocations:
:func:`open_columns` locates each member's data offset through the zip
local-file headers and hands back ``np.memmap`` views.  A warm start
then pays one page-cache walk for the columns an experiment actually
touches, not an eager parse of the whole entry — the load-side half of
the columnar-first world representation (DESIGN §13).

Safety mirrors the checkpoint contract: anything unexpected — a
truncated archive, a compressed member, a malformed npy header, a
foreign dtype — logs a warning and falls back to the eager
``np.load`` decode (and if *that* fails too, the caller's corrupt-entry
handling discards the entry).  Mapped and eagerly loaded columns are
bit-identical by construction; ``tests/test_columnar.py`` pins it.

``REPRO_MMAP=0`` disables mapping process-wide (eager loads only), for
filesystems where ``mmap`` is unavailable or regresses.
"""

from __future__ import annotations

import logging
import mmap as _mmap
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro import config as _config
from repro import obs

__all__ = ["ColumnSet", "ColumnWriter", "mmap_enabled", "open_columns"]

log = logging.getLogger(__name__)

MMAP_ENV = "REPRO_MMAP"

#: Zip local-file-header layout (PKZIP appnote 4.3.7): signature,
#: version, flags, method, time, date, crc, csize, usize, namelen, extralen.
_LOCAL_HEADER = struct.Struct("<4s5H3L2H")
_LOCAL_MAGIC = b"PK\x03\x04"


def mmap_enabled() -> bool:
    """True unless the active runtime config disables mapping.

    Resolved through :func:`repro.config.current` (falling back to
    ``REPRO_MMAP``; 0/false/off/no disables).
    """
    return _config.current().mmap


class ColumnSet:
    """A read-only mapping of column name → ndarray.

    Backed either by ``np.memmap`` views over one shared map of the
    archive (``mapped=True``) or by an eagerly decoded ``np.load``
    result.  Views materialise lazily: a consumer that only touches the
    RIB columns never reads the ROA pages.
    """

    def __init__(self, path: Path, members: dict, handle, buffer, mapped: bool):
        self._path = Path(path)
        self._members = members  # name -> (dtype, shape, order, offset) | ndarray
        self._handle = handle
        self._buffer = buffer
        self.mapped = mapped
        self._views: dict[str, np.ndarray] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __iter__(self):
        return iter(self._members)

    def keys(self):
        return self._members.keys()

    def __getitem__(self, name: str) -> np.ndarray:
        view = self._views.get(name)
        if view is None:
            member = self._members[name]
            if isinstance(member, np.ndarray):
                view = member
            else:
                dtype, shape, fortran, offset = member
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                view = np.frombuffer(
                    self._buffer, dtype=dtype, count=count, offset=offset
                )
                view = view.reshape(shape, order="F" if fortran else "C")
                obs.add("columns.mapped")
            self._views[name] = view
        return view

    def close(self) -> None:
        """Drop views and release the underlying map/handle."""
        self._views.clear()
        self._members = {}
        if self._buffer is not None:
            try:
                self._buffer.close()
            except (BufferError, ValueError):
                pass  # live views still reference the map; the GC reaps it
            self._buffer = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ColumnWriter:
    """Streaming writer for the uncompressed ``arrays.npz`` layout.

    Appends one named column at a time to a ``ZIP_STORED`` archive using
    the same member layout ``np.savez`` produces (``.npy`` members with
    v1/v2 headers, no compression, local headers patched in place on a
    seekable file — no data descriptors), so the finished archive is
    byte-for-byte the shape :func:`_member_layout` maps.  The point is
    save-side memory: the checkpoint writer streams each stage's columns
    into the archive and releases them before the next stage's arrays
    are even built, instead of holding every stage alive for one big
    ``np.savez`` call at the end.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._archive = zipfile.ZipFile(
            self._path, mode="w", compression=zipfile.ZIP_STORED
        )
        self._names: set[str] = set()

    def __enter__(self) -> "ColumnWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def write(self, name: str, array: np.ndarray) -> None:
        """Append one column; the array can be released by the caller
        as soon as this returns."""
        if self._archive is None:
            raise ValueError(f"{self._path}: writer is closed")
        array = np.asarray(array)
        if array.dtype.hasobject:
            raise ValueError(f"{name}: object dtype cannot be stored")
        if name in self._names:
            raise ValueError(f"{name}: duplicate column")
        self._names.add(name)
        with self._archive.open(
            name + ".npy", "w", force_zip64=True
        ) as member:
            np.lib.format.write_array(member, array, allow_pickle=False)
        obs.add("columns.streamed")

    def write_all(self, arrays: dict[str, np.ndarray]) -> None:
        """Append every column of one stage, in dict order."""
        for name, array in arrays.items():
            self.write(name, array)

    def close(self) -> None:
        if self._archive is not None:
            self._archive.close()
            self._archive = None


def _member_layout(path: Path) -> dict[str, tuple]:
    """Per-column (dtype, shape, fortran, data offset) from the archive.

    Raises on anything that cannot be mapped verbatim: compressed
    members, truncated headers, pickled/object dtypes.
    """
    members: dict[str, tuple] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"{info.filename}: compressed member")
            raw.seek(info.header_offset)
            header = raw.read(_LOCAL_HEADER.size)
            fields = _LOCAL_HEADER.unpack(header)
            if fields[0] != _LOCAL_MAGIC:
                raise ValueError(f"{info.filename}: bad local header")
            name_len, extra_len = fields[9], fields[10]
            data_offset = (
                info.header_offset + _LOCAL_HEADER.size + name_len + extra_len
            )
            raw.seek(data_offset)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                read_header = np.lib.format.read_array_header_1_0
            elif version == (2, 0):
                read_header = np.lib.format.read_array_header_2_0
            else:
                raise ValueError(f"{info.filename}: npy format {version}")
            shape, fortran, dtype = read_header(raw)
            if dtype.hasobject:
                raise ValueError(f"{info.filename}: object dtype")
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            members[name] = (dtype, shape, fortran, raw.tell())
        expected_end = max(
            (
                offset + dtype.itemsize * int(np.prod(shape, dtype=np.int64))
                for dtype, shape, _, offset in members.values()
            ),
            default=0,
        )
    if path.stat().st_size < expected_end:
        raise ValueError("archive truncated below member data")
    return members


def open_columns(path: str | Path, mmap: bool | None = None) -> ColumnSet:
    """Open one ``arrays.npz`` as a :class:`ColumnSet`.

    ``mmap=None`` defers to ``REPRO_MMAP`` (mapped by default).  Any
    problem establishing the map logs a warning and decodes eagerly
    instead; eager decode errors propagate to the caller's corrupt-entry
    handling.
    """
    path = Path(path)
    if mmap is None:
        mmap = mmap_enabled()
    if mmap:
        try:
            members = _member_layout(path)
            handle = open(path, "rb")
            buffer = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            obs.add("columns.open.mapped")
            return ColumnSet(path, members, handle, buffer, mapped=True)
        except Exception as error:  # noqa: BLE001 - map is an optimisation
            log.warning(
                "cannot memory-map %s (%s); falling back to eager load",
                path,
                error,
            )
            obs.add("columns.open.map_failed")
    with np.load(path, allow_pickle=False) as eager:
        members = {name: eager[name] for name in eager.files}
    obs.add("columns.open.eager")
    return ColumnSet(path, members, None, None, mapped=False)
