"""Dataset export/import: write a built world out as its source datasets.

The paper works from files — prefix2as dumps, as2org, AS relationships,
VRP CSVs, IRR database dumps, the MANRS participant list.  This module
round-trips a :class:`~repro.scenario.world.World` through exactly those
file formats, so downstream users can run the analyses off disk (or feed
in their own real datasets in the same formats).
"""

from __future__ import annotations

from pathlib import Path

from repro.bgp.table import Prefix2AS, parse_prefix2as, serialize_prefix2as
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.rpsl import parse_database, serialize_database
from repro.manrs.registry import (
    MANRSRegistry,
    parse_participants,
    serialize_participants,
)
from repro.rpki.archive import parse_vrps, serialize_vrps
from repro.rpki.roa import VRP
from repro.scenario.world import World
from repro.topology.as2org import As2Org, parse_as2org, serialize_as2org
from repro.topology.asrank import build_asrank, parse_asrank, serialize_asrank
from repro.topology.model import Relationship
from repro.topology.relationships import (
    parse_relationships,
    serialize_relationships,
)

__all__ = [
    "export_world",
    "DatasetBundle",
    "load_bundle",
    "PREFIX2AS_FILE",
    "AS2ORG_FILE",
    "RELATIONSHIPS_FILE",
    "VRPS_FILE",
    "PARTICIPANTS_FILE",
    "ASRANK_FILE",
    "IRR_SUFFIX",
]

PREFIX2AS_FILE = "prefix2as.txt"
AS2ORG_FILE = "as2org.txt"
RELATIONSHIPS_FILE = "as-rel.txt"
VRPS_FILE = "vrps.csv"
PARTICIPANTS_FILE = "manrs-participants.csv"
ASRANK_FILE = "as-rank.txt"
IRR_SUFFIX = ".irr.txt"

# Backwards-compatible private aliases (pre-checkpoint callers).
_PREFIX2AS = PREFIX2AS_FILE
_AS2ORG = AS2ORG_FILE
_RELATIONSHIPS = RELATIONSHIPS_FILE
_VRPS = VRPS_FILE
_PARTICIPANTS = PARTICIPANTS_FILE
_ASRANK = ASRANK_FILE
_IRR_SUFFIX = IRR_SUFFIX


def export_world(world: World, directory: str | Path) -> Path:
    """Write every dataset of ``world`` into ``directory``.

    Returns the directory path.  Files use the upstream-inspired formats
    of each module's serializer.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / _PREFIX2AS).write_text(serialize_prefix2as(world.prefix2as))
    (directory / _AS2ORG).write_text(serialize_as2org(world.as2org))
    (directory / _RELATIONSHIPS).write_text(
        serialize_relationships(world.topology)
    )
    (directory / _VRPS).write_text(
        serialize_vrps(world.rov.all_vrps(), world.snapshot_date)
    )
    (directory / _PARTICIPANTS).write_text(serialize_participants(world.manrs))
    (directory / _ASRANK).write_text(serialize_asrank(build_asrank(world.topology)))
    for database in world.irr.databases:
        objects = list(database.all_routes())
        (directory / f"{database.name.lower()}{_IRR_SUFFIX}").write_text(
            serialize_database(objects)
        )
    return directory


class DatasetBundle:
    """The datasets of one snapshot, loaded back from disk."""

    def __init__(
        self,
        prefix2as: Prefix2AS,
        as2org: As2Org,
        relationships: list[tuple[int, int, Relationship]],
        vrps: list[VRP],
        manrs: MANRSRegistry,
        irr: IRRCollection,
        asrank: list,
    ):
        self.prefix2as = prefix2as
        self.as2org = as2org
        self.relationships = relationships
        self.vrps = vrps
        self.manrs = manrs
        self.irr = irr
        self.asrank = asrank


def load_bundle(directory: str | Path) -> DatasetBundle:
    """Load a directory written by :func:`export_world`."""
    directory = Path(directory)
    irr = IRRCollection()
    for dump in sorted(directory.glob(f"*{_IRR_SUFFIX}")):
        name = dump.name[: -len(_IRR_SUFFIX)].upper()
        database = IRRDatabase(name)
        for obj in parse_database(dump.read_text()):
            if hasattr(obj, "prefix"):
                database.add_route(obj)
        irr.add_database(database)
    return DatasetBundle(
        prefix2as=parse_prefix2as((directory / _PREFIX2AS).read_text()),
        as2org=parse_as2org((directory / _AS2ORG).read_text()),
        relationships=parse_relationships(
            (directory / _RELATIONSHIPS).read_text()
        ),
        vrps=parse_vrps((directory / _VRPS).read_text()),
        manrs=parse_participants((directory / _PARTICIPANTS).read_text()),
        irr=irr,
        asrank=parse_asrank((directory / _ASRANK).read_text()),
    )
