"""The columnar-first world: checkpoint columns as the primary store.

PR 5 put numpy kernels *behind* the object APIs; this module inverts the
relationship for warm starts.  A verified checkpoint entry's integer
columns (``arrays.npz``, memory-mapped via
:mod:`repro.datasets.arraystore`) plus its small JSON metas *are* the
world — the dict-of-dataclass object graph a cold build produces is
materialised lazily, field by field, only where an experiment actually
touches it.  A consumer that reads nothing but the RIB never allocates a
single ROA object; one that only checks membership never decodes the
RIB's half-million paths.

Materialisation is exact: every field goes through the same
digest-verified ``_rebuild_*`` replay functions the eager loader uses,
so a :class:`LazyWorld` is byte-identical to an eager load and to a cold
build (``tests/test_columnar.py`` pins all three pairings).

All JSON metas and text files are parsed up front at open time — they
are small, and reading them eagerly (plus holding the column map's file
descriptor open) means a :class:`LazyWorld` survives its entry being
pruned from the store mid-lifetime, exactly like an eager world does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS
from repro.datasets.arraystore import ColumnSet, open_columns
from repro.datasets.store import PARTICIPANTS_FILE, RELATIONSHIPS_FILE
from repro.manrs.registry import parse_participants
from repro.registry.allocation import AddressSpace
from repro.rpki.rov import ROVValidator
from repro.scenario.config import ScenarioConfig
from repro.scenario.world import World, derive_policies
from repro.topology.as2org import As2Org
from repro.topology.classify import classify_all

__all__ = ["WorldColumns", "LazyWorld"]


class WorldColumns:
    """One checkpoint entry held in its stored, columnar form.

    ``arrays`` is the (usually memory-mapped) integer column set;
    ``meta`` the parsed JSON payloads and auxiliary texts.  Instances
    are what the sharded build's driver concatenates into and what
    :class:`LazyWorld` materialises object views from.
    """

    def __init__(self, arrays: ColumnSet, meta: dict[str, object]):
        self.arrays = arrays
        self.meta = meta

    @classmethod
    def open(cls, entry: str | Path, mmap: bool | None = None) -> "WorldColumns":
        """Open a verified checkpoint entry directory columnar-first.

        The caller is responsible for having verified the entry against
        its manifest (the checkpoint store does this before handing the
        path over); this just maps the columns and parses the metas.
        """
        from repro.datasets.checkpoint import (
            ARRAYS_FILE,
            IHR_FILE,
            RIB_FILE,
            RPKI_FILE,
            SCENARIO_FILE,
            TOPOLOGY_FILE,
        )

        entry = Path(entry)
        arrays = open_columns(entry / ARRAYS_FILE, mmap=mmap)
        meta: dict[str, object] = {
            name: json.loads((entry / name).read_text())
            for name in (
                TOPOLOGY_FILE,
                SCENARIO_FILE,
                RPKI_FILE,
                RIB_FILE,
                IHR_FILE,
            )
        }
        for name in (RELATIONSHIPS_FILE, PARTICIPANTS_FILE):
            meta[name] = (entry / name).read_text()
        obs.add("columnar.opened")
        return cls(arrays, meta)

    def scenario(self) -> dict:
        from repro.datasets.checkpoint import SCENARIO_FILE

        return self.meta[SCENARIO_FILE]  # type: ignore[return-value]


def _materializers() -> dict:
    """Field name → builder over (columns, world).

    Builders reference other world fields through plain attribute access,
    which re-enters :meth:`LazyWorld.__getattr__` and materialises the
    dependency first — the dependency graph is acyclic (it mirrors the
    cold build's construction order).
    """
    from repro.datasets import checkpoint as ckpt

    scenario = WorldColumns.scenario

    return {
        "seed": lambda c, w: scenario(c)["seed"],
        "quiescent": lambda c, w: frozenset(scenario(c)["quiescent"]),
        "vantage_points": lambda c, w: tuple(scenario(c)["vantage_points"]),
        "topology": lambda c, w: ckpt._rebuild_topology(
            c.meta[ckpt.TOPOLOGY_FILE], c.meta[RELATIONSHIPS_FILE]
        ),
        "as2org": lambda c, w: As2Org.from_topology(w.topology),
        "size_of": lambda c, w: classify_all(w.topology),
        "manrs": lambda c, w: parse_participants(c.meta[PARTICIPANTS_FILE]),
        "behaviors": lambda c, w: {
            int(asn): ckpt._rebuild_behavior(fields)
            for asn, fields in scenario(c)["behaviors"].items()
        },
        "policies": lambda c, w: derive_policies(w.topology, w.behaviors),
        "engine": lambda c, w: PropagationEngine(w.topology, w.policies),
        "address_space": lambda c, w: AddressSpace.restore(
            ckpt._rebuild_delegations(scenario(c), c.arrays)
        ),
        "originations": lambda c, w: ckpt._rebuild_originations(c.arrays),
        "rpki_repository": lambda c, w: ckpt._rebuild_rpki(
            c.meta[ckpt.RPKI_FILE], c.arrays
        ),
        "irr": lambda c, w: ckpt._rebuild_irr(scenario(c), c.arrays),
        "rov": lambda c, w: ROVValidator(
            ckpt._rebuild_vrps(scenario(c), c.arrays)
        ),
        "rib": lambda c, w: ckpt._rebuild_rib(c.meta[ckpt.RIB_FILE], c.arrays),
        "ihr": lambda c, w: ckpt._rebuild_ihr(c.meta[ckpt.IHR_FILE], c.arrays),
        "prefix2as": lambda c, w: Prefix2AS.from_rib(w.rib),
    }


_MATERIALIZERS: dict | None = None


class LazyWorld(World):
    """A :class:`~repro.scenario.world.World` whose fields are columnar views.

    Constructed without running the dataclass ``__init__``: only
    ``config`` and the backing :class:`WorldColumns` are installed up
    front, and every other field materialises on first attribute access
    through the same replay path the eager loader uses.  Downstream code
    cannot tell the difference (it is an instance of ``World`` holding
    the exact same objects once touched) — it simply pays only for what
    it reads.
    """

    @classmethod
    def from_columns(
        cls, columns: WorldColumns, config: ScenarioConfig
    ) -> "LazyWorld":
        world = object.__new__(cls)
        world.__dict__["config"] = config
        world.__dict__["_columns"] = columns
        # ``scale`` is the one dataclass field with a default, which
        # lives as a *class* attribute — plain attribute access would
        # find that 1.0 and never reach __getattr__.  Install the real
        # value eagerly (the scenario meta is already parsed).
        world.__dict__["scale"] = columns.scenario()["scale"]
        return world

    def __getattr__(self, name: str):
        # Only dataclass fields materialise; anything else (including the
        # backing _columns when absent) is a genuine miss.  Guarding the
        # underscore space also keeps pickling/copying protocols sane.
        if name.startswith("_"):
            raise AttributeError(name)
        global _MATERIALIZERS
        if _MATERIALIZERS is None:
            _MATERIALIZERS = _materializers()
        build = _MATERIALIZERS.get(name)
        columns = self.__dict__.get("_columns")
        if build is None or columns is None:
            raise AttributeError(name)
        # The replay allocates the same long-lived acyclic objects a cold
        # build does; pause the cyclic GC for the burst like the builder
        # and the eager loader both do.
        with obs.span(f"columnar.materialize.{name}"), obs.gc_paused():
            value = build(columns, self)
        self.__dict__[name] = value
        obs.add(f"columnar.materialized.{name}")
        return value

    def materialized_fields(self) -> frozenset[str]:
        """Fields already decoded into objects (for tests/diagnostics)."""
        return frozenset(
            name for name in self.__dict__ if not name.startswith("_")
        )

    def materialize(self) -> "LazyWorld":
        """Force every field; afterwards the columns are no longer needed."""
        global _MATERIALIZERS
        if _MATERIALIZERS is None:
            _MATERIALIZERS = _materializers()
        for name in _MATERIALIZERS:
            getattr(self, name)
        return self

    def __getstate__(self):
        # A pickled lazy world must not drag the mmap across process
        # boundaries: force full materialisation and ship plain fields.
        self.materialize()
        return {
            name: value
            for name, value in self.__dict__.items()
            if not name.startswith("_")
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
