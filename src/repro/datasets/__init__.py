"""Dataset export/import (file-format round-trips for every input)."""

from repro.datasets.store import DatasetBundle, export_world, load_bundle

__all__ = ["DatasetBundle", "export_world", "load_bundle"]
