"""Dataset export/import (file-format round-trips for every input)."""

from repro.datasets.checkpoint import (
    CheckpointStore,
    checkpoint_key,
    dataset_digests,
    default_store,
    world_digest,
)
from repro.datasets.store import DatasetBundle, export_world, load_bundle

__all__ = [
    "DatasetBundle",
    "export_world",
    "load_bundle",
    "CheckpointStore",
    "checkpoint_key",
    "dataset_digests",
    "default_store",
    "world_digest",
]
