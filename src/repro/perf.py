"""Back-compat shim over :mod:`repro.obs`.

``repro.perf`` was the original flat instrumentation layer (one
``perf_counter`` pair per stage plus a name→seconds dict).  The
structured observability package subsumed it: spans nest, carry counters
and attributes, and export to JSON — see :mod:`repro.obs`.  Every public
name this module ever had keeps working:

* :func:`stage` is :func:`repro.obs.span` (same ``REPRO_PERF=1`` stderr
  lines, same nesting/indentation);
* :func:`timings` / :func:`reset` read and clear the flat per-name
  aggregate the obs layer still maintains;
* :func:`resolve_jobs`, :func:`gc_paused`, :func:`enabled` and the env
  var names are straight re-exports.

.. deprecated::
   Importing this module emits a :class:`DeprecationWarning`.  Every
   name maps 1:1 onto :mod:`repro.obs` (``perf.stage`` → ``obs.span``,
   ``perf.reset`` → ``obs.reset_trace``; the rest keep their names) —
   update imports accordingly.  The shim is scheduled for removal two
   PRs after the serve API lands (see DESIGN.md §"repro.perf removal
   window"); no in-tree caller uses it any more.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.perf is deprecated; import repro.obs instead "
    "(perf.stage -> obs.span, perf.reset -> obs.reset_trace, other "
    "names unchanged)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.obs import (  # noqa: E402
    JOBS_ENV,
    PERF_ENV,
    enabled,
    gc_paused,
    reset_trace,
    resolve_jobs,
    span,
    timings,
)

__all__ = [
    "PERF_ENV",
    "JOBS_ENV",
    "enabled",
    "gc_paused",
    "resolve_jobs",
    "stage",
    "timings",
    "reset",
]

#: Alias: a perf "stage" is an obs span (attributes allowed but unused
#: by legacy call sites).
stage = span

#: Alias: legacy reset cleared stage timings; spans and the aggregate
#: clear together (process metrics are left alone — the old module had
#: none).
reset = reset_trace
