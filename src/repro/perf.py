"""Opt-in performance instrumentation and worker-count resolution.

Two environment knobs steer the fast paths introduced for full-scale
world builds:

* ``REPRO_PERF=1`` — print a per-stage wall-clock breakdown to stderr as
  the pipeline runs (stages are always *recorded*; the env var only
  controls printing, so tooling can read :func:`timings` without noise).
* ``REPRO_JOBS=N`` — worker processes for parallel route collection.
  Unset or ``1`` means serial; ``0`` means one worker per CPU core.

The instrumentation is deliberately lightweight: a stage is one
``perf_counter`` pair plus a dict update, so leaving the hooks in the
production path costs nothing measurable.
"""

from __future__ import annotations

import gc
import os
import sys
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "PERF_ENV",
    "JOBS_ENV",
    "enabled",
    "gc_paused",
    "resolve_jobs",
    "stage",
    "timings",
    "reset",
]

PERF_ENV = "REPRO_PERF"
JOBS_ENV = "REPRO_JOBS"

#: Accumulated seconds per stage name (insertion-ordered).
_timings: dict[str, float] = {}
#: Current nesting depth, for indented printing.
_depth = 0


def enabled() -> bool:
    """True when ``REPRO_PERF`` asks for a printed breakdown."""
    return os.environ.get(PERF_ENV, "") not in ("", "0")


def resolve_jobs(jobs: int | None = None) -> int:
    """Number of worker processes to use.

    An explicit ``jobs`` argument wins; otherwise ``REPRO_JOBS`` is
    consulted.  ``0`` (either way) means "all cores"; anything else is
    clamped to at least 1.  The default with no argument and no env var
    is 1 (serial), which keeps single-shot builds free of process-pool
    overhead and bit-reproducible under the simplest configuration.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a pipeline stage.

    Nested stages are recorded independently and printed indented.
    Seconds accumulate across repeated runs of the same stage name
    (e.g. per-year relying-party validation in a timeline sweep).
    """
    global _depth
    depth = _depth
    _depth += 1
    start = time.perf_counter()
    try:
        yield
    finally:
        _depth = depth
        elapsed = time.perf_counter() - start
        _timings[name] = _timings.get(name, 0.0) + elapsed
        if enabled():
            indent = "  " * depth
            print(f"[perf] {indent}{name}: {elapsed:.3f}s", file=sys.stderr)


@contextmanager
def gc_paused(freeze: bool = False) -> Iterator[None]:
    """Suspend the cyclic garbage collector for a batch construction.

    The world builders allocate millions of long-lived, acyclic objects
    (radix nodes, routes, path tuples); every generation-0 collection
    triggered mid-build re-scans that growing graph for cycles it cannot
    contain, which at full scale costs more than the allocations
    themselves.  Pausing collection around the batch and restoring it on
    exit (collection state is re-enabled even on exceptions) removes that
    overhead without changing any result.  Nested pauses are free: only
    the outermost one toggles the collector.

    With ``freeze=True`` the batch's survivors are moved to the
    permanent generation on success (``gc.freeze()``, a constant-time
    list splice).  Without it, the first full collections after a large
    paused batch re-scan the whole surviving graph looking for cycles a
    builder never creates — measured here at ~0.8s per scan at full
    scale, recurring until the collector's long-lived quota catches up.
    Frozen objects are simply exempt from future scans; they are still
    freed by reference counting as usual.  Only pass ``freeze=True``
    from top-level builders whose output lives for the rest of the
    process (anything else alive at that moment is frozen too).
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
        if freeze and was_enabled:
            gc.freeze()
    finally:
        if was_enabled:
            gc.enable()


def timings() -> dict[str, float]:
    """Accumulated seconds per stage since the last :func:`reset`."""
    return dict(_timings)


def reset() -> None:
    """Clear accumulated stage timings."""
    _timings.clear()
