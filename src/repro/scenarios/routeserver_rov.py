"""Scenario family (a): routeserver-side ROV at an IXP.

"Keep Your Friends Close, but Your Routeservers Closer" (PAPERS.md)
measures RPKI validation *at IXP route servers* — one deployment point
that cleans the fabric for every member at once, versus each member
deploying ROV on its own sessions.  This family stages that comparison
on the built world: a deterministic member set peers with one route
server, every member announces its own routes plus one hijack of the
next member's prefix, and the same batch is evaluated under three
server configurations:

* ``transparent`` — the server reflects everything (the no-filtering
  baseline; only members' *own* ROV drops anything);
* ``irr`` — the pre-existing IRR/as-set filtering (Action 1 at the IXP);
* ``irr+rov`` — IRR filtering plus origin validation on the server.

The per-config metrics count RPKI-invalid announcements accepted, the
resulting invalid *deliveries* (accepted invalid × receiving sessions),
how many of those deliveries member-side ROV would still have caught,
and how many members end up exposed — the "members toggling their own
filtering" axis of the related work.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bgp.announcement import Announcement
from repro.bgp.routeserver import RouteServer
from repro.scenario.world import World
from repro.scenarios.base import ScenarioFamily

__all__ = ["FAMILY"]


def _member_panel(world: World, max_members: int) -> list[int]:
    """Deterministic IXP member set: origin ASes, evenly strided."""
    candidates = sorted(
        asn for asn, origs in world.originations.items() if origs
    )
    if len(candidates) <= max_members:
        return candidates
    stride = len(candidates) / max_members
    return [candidates[int(i * stride)] for i in range(max_members)]


def _batch(world: World, members: list[int]) -> list[tuple[int, Announcement]]:
    """Each member announces its own first prefix plus one hijack of the
    next member's prefix (origin forged to the announcer)."""
    batch: list[tuple[int, Announcement]] = []
    for index, member in enumerate(members):
        own = world.originations[member][0]
        batch.append((member, Announcement(prefix=own.prefix, origin=member)))
        victim = members[(index + 1) % len(members)]
        if victim != member:
            stolen = world.originations[victim][0]
            batch.append(
                (member, Announcement(prefix=stolen.prefix, origin=member))
            )
    return batch


def _evaluate_config(
    world: World,
    server: RouteServer,
    members: list[int],
    batch: list[tuple[int, Announcement]],
) -> dict:
    receivers = len(members) - 1
    rov_receivers = {
        member: sum(
            1
            for other in members
            if other != member and not world.policies[other].rov
        )
        for member in members
    }
    accepted = invalid_accepted = 0
    invalid_deliveries = invalid_after_member_rov = 0
    exposed: set[int] = set()
    for announcer, announcement in batch:
        verdict = server.evaluate(announcer, announcement)
        if not verdict.accepted:
            continue
        accepted += 1
        status = world.rov.validate(announcement.prefix, announcement.origin)
        if not status.is_invalid:
            continue
        invalid_accepted += 1
        invalid_deliveries += receivers
        invalid_after_member_rov += rov_receivers[announcer]
        exposed.update(
            other
            for other in members
            if other != announcer and not world.policies[other].rov
        )
    return {
        "accepted": accepted,
        "invalid_accepted": invalid_accepted,
        "invalid_deliveries": invalid_deliveries,
        "invalid_after_member_rov": invalid_after_member_rov,
        "members_exposed": len(exposed),
    }


def _run(world: World, params: Mapping[str, Any]) -> dict:
    members = _member_panel(world, int(params["max_members"]))
    batch = _batch(world, members)
    servers = {
        "transparent": RouteServer(
            world.irr, tuple(members), irr_filtering=False
        ),
        "irr": RouteServer(world.irr, tuple(members)),
        "irr+rov": RouteServer(world.irr, tuple(members), rov=world.rov),
    }
    configs = {
        label: _evaluate_config(world, server, members, batch)
        for label, server in servers.items()
    }
    member_rov = sum(1 for m in members if world.policies[m].rov)
    return {
        "members": len(members),
        "member_rov_share": member_rov / len(members) if members else 0.0,
        "announcements": len(batch),
        "invalid_announcements": sum(
            1
            for _, a in batch
            if world.rov.validate(a.prefix, a.origin).is_invalid
        ),
        "configs": configs,
    }


def _render(result: dict) -> str:
    lines = [
        "Scenario rsrov — routeserver ROV at the IXP",
        f"members: {result['members']}  "
        f"(own ROV: {result['member_rov_share'] * 100:.0f}%)  "
        f"announcements: {result['announcements']}  "
        f"rpki-invalid: {result['invalid_announcements']}",
        f"{'config':>12}  {'accepted':>8}  {'inv.accept':>10}  "
        f"{'inv.deliver':>11}  {'after mbr ROV':>13}  {'exposed':>7}",
    ]
    for label in ("transparent", "irr", "irr+rov"):
        stats = result["configs"][label]
        lines.append(
            f"{label:>12}  {stats['accepted']:8d}  "
            f"{stats['invalid_accepted']:10d}  "
            f"{stats['invalid_deliveries']:11d}  "
            f"{stats['invalid_after_member_rov']:13d}  "
            f"{stats['members_exposed']:7d}"
        )
    return "\n".join(lines)


FAMILY = ScenarioFamily(
    name="rsrov",
    title="Scenario — routeserver ROV at IXPs",
    paper_ref="Keep Your Friends Close (PAPERS.md)",
    compute=_run,
    format=_render,
    params={"max_members": 16},
)
