"""Scenario family (c): ROA mis-issuance storms and AS0 campaigns.

"SoK: An Introspective Analysis of RPKI Security" (PAPERS.md)
catalogues what happens when the RPKI itself misbehaves: mis-issued
ROAs that point a victim's space at the wrong origin, AS0 ROAs that
declare whole blocks unroutable, and stale objects expiring out from
under still-announced routes.  This family drives all three as bursts
through the PR-8 delta event layer — each wave is a list of
:class:`~repro.delta.events.RoaIssued`/``RoaExpired`` events applied to
a :class:`~repro.delta.live.LiveWorld`, so the storm exercises exactly
the incremental re-validation path a live relying party would take and
the base world is never touched.

After every wave the live world is materialised and each announced
route is re-classified: the wave's *blast radius* is the number of
(prefix, origin) verdict flips, and MANRS-member exposure counts the
members left originating RPKI-invalid space.
"""

from __future__ import annotations

from datetime import date
from typing import Any, Mapping

from repro.delta.live import LiveWorld
from repro.rpki.roa import ROA
from repro.scenario.world import World
from repro.scenarios.base import ScenarioFamily

__all__ = ["FAMILY"]

#: Validity window used for storm-issued ROAs (same convention as the
#: delta event synthesizer: comfortably spans every snapshot date).
_NOT_BEFORE = date(2015, 1, 1)
_NOT_AFTER = date(2032, 1, 1)


def _trust_anchor_for(world: World, block) -> str:
    """The trust-anchor certificate covering ``block`` (issuance point)."""
    for _, certificate in sorted(world.rpki_repository.certificates.items()):
        if certificate.issuer_id is None and certificate.covers(block):
            return certificate.certificate_id
    raise ValueError(f"no trust anchor covers {block}")


def _storm_waves(world: World, per_wave: int) -> list[tuple[str, list]]:
    """Three deterministic waves of applicable-by-construction events."""
    from repro.delta.events import RoaExpired, RoaIssued

    origins = sorted(
        asn for asn, origs in world.originations.items() if origs
    )
    count = min(per_wave, len(origins))

    misissued = []
    for index in range(count):
        victim = origins[index]
        wrong_origin = origins[(index + 1) % len(origins)]
        block = world.originations[victim][0].block
        misissued.append(
            RoaIssued(
                roa=ROA(
                    prefix=block,
                    asn=wrong_origin,
                    max_length=block.length,
                    certificate_id=_trust_anchor_for(world, block),
                    not_before=_NOT_BEFORE,
                    not_after=_NOT_AFTER,
                )
            )
        )

    as0 = []
    for index in range(count):
        victim = origins[(index + count) % len(origins)]
        block = world.originations[victim][0].block
        as0.append(
            RoaIssued(
                roa=ROA(
                    prefix=block,
                    asn=0,
                    max_length=block.length,
                    certificate_id=_trust_anchor_for(world, block),
                    not_before=_NOT_BEFORE,
                    not_after=_NOT_AFTER,
                )
            )
        )

    published = sorted(
        world.rpki_repository.roas,
        key=lambda roa: (str(roa.prefix), roa.asn, roa.max_length),
    )
    expiry = [RoaExpired(roa=roa) for roa in published[:count]]

    return [
        ("mis-issued", misissued),
        ("as0-campaign", as0),
        ("expiry-storm", expiry),
    ]


def _classify_routes(world: World, source: World) -> dict:
    """RPKI verdict of every announced route of ``source`` under
    ``world``'s validator."""
    return {
        (origination.prefix, asn): world.rov.validate(
            origination.prefix, asn
        )
        for asn, originations in source.originations.items()
        for origination in originations
    }


def _wave_row(
    label: str,
    events: int,
    verdicts: dict,
    previous: dict,
    members: frozenset[int],
) -> dict:
    invalid = {key for key, status in verdicts.items() if status.is_invalid}
    flips = sum(
        1 for key, status in verdicts.items() if previous[key] is not status
    )
    member_invalid = [key for key in invalid if key[1] in members]
    return {
        "label": label,
        "events": events,
        "invalid": len(invalid),
        "flips": flips,
        "invalid_member_routes": len(member_invalid),
        "members_exposed": len({asn for _, asn in member_invalid}),
    }


def _run(world: World, params: Mapping[str, Any]) -> dict:
    waves = _storm_waves(world, int(params["per_wave"]))
    live = LiveWorld(world)
    members = world.members()
    verdicts = _classify_routes(world, world)
    rows = [_wave_row("baseline", 0, verdicts, verdicts, members)]
    for label, events in waves:
        for event in events:
            live.apply(event)
        current = _classify_routes(live.world(), world)
        rows.append(
            _wave_row(label, len(events), current, verdicts, members)
        )
        verdicts = current
    return {
        "routes": len(verdicts),
        "events_total": sum(len(events) for _, events in waves),
        "waves": rows,
    }


def _render(result: dict) -> str:
    lines = [
        "Scenario roastorm — ROA storms through the delta layer",
        f"routes tracked: {result['routes']}  "
        f"events applied: {result['events_total']}",
        f"{'wave':>14}  {'events':>6}  {'invalid':>7}  {'flips':>5}  "
        f"{'mbr routes':>10}  {'mbr exposed':>11}",
    ]
    for row in result["waves"]:
        lines.append(
            f"{row['label']:>14}  {row['events']:6d}  {row['invalid']:7d}  "
            f"{row['flips']:5d}  {row['invalid_member_routes']:10d}  "
            f"{row['members_exposed']:11d}"
        )
    return "\n".join(lines)


FAMILY = ScenarioFamily(
    name="roastorm",
    title="Scenario — ROA storms and AS0 campaigns",
    paper_ref="SoK: RPKI Security (PAPERS.md)",
    compute=_run,
    format=_render,
    params={"per_wave": 6},
)
