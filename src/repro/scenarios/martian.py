"""Scenario family (d): martian origination and SAV conformance.

"Martians Among Us" (PAPERS.md) observes reserved/private address space
leaking onto the public Internet.  In the simulator a martian is a
route with no covering registration anywhere — no ROA (NOT_FOUND, so
ROV lets it pass) and no IRR object (so any strict Action-1 prefix
filter drops it).  That is exactly the
``RouteClass(irr_invalid=True)`` propagation class, so martian *reach*
— the fraction of collector vantage points that receive the leak — is
measured with one extra propagation per originator, against the
unchanged world.

The second half is MANRS Action 2: a Spoofer-style campaign
(:mod:`repro.manrs.sav`) measures source-address-validation deployment
and the family reports the member/non-member split — reproducing the
Luckie et al. null result the paper cites (§4.4) — plus the per-member
Action 2 conformance verdicts now wired into the readiness check.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bgp.policy import RouteClass
from repro.manrs.sav import (
    assign_sav_deployment,
    is_action2_conformant,
    run_spoofer_campaign,
)
from repro.scenario.world import World
from repro.scenarios.base import ScenarioFamily

__all__ = ["FAMILY", "MARTIAN_PREFIXES"]

#: Classic martian/bogon space (RFC 1918, loopback, link-local, CGN,
#: documentation, class E) — what leaks look like in the related work.
MARTIAN_PREFIXES: tuple[str, ...] = (
    "10.0.0.0/8",
    "172.16.0.0/12",
    "192.168.0.0/16",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "100.64.0.0/10",
    "192.0.2.0/24",
    "198.51.100.0/24",
    "240.0.0.0/4",
)


def _originator_panel(world: World, per_group: int) -> dict[str, list[int]]:
    """Deterministic leaker panels: members and non-members separately."""
    members = world.members()
    member_pool = sorted(asn for asn in world.topology.asns if asn in members)
    other_pool = sorted(
        asn for asn in world.topology.asns if asn not in members
    )

    def stride(pool: list[int]) -> list[int]:
        if len(pool) <= per_group:
            return pool
        step = len(pool) / per_group
        return [pool[int(i * step)] for i in range(per_group)]

    return {"members": stride(member_pool), "non_members": stride(other_pool)}


def _reach_stats(world: World, originators: list[int]) -> dict:
    vantage_points = world.vantage_points
    martian_class = RouteClass(irr_invalid=True)
    reaches = []
    for origin in originators:
        routes = world.engine.propagate(
            origin, martian_class, targets=vantage_points
        )
        # Targeted propagation may materialise routes beyond the targets
        # (the influence zone); reach counts vantage points only.
        seen = sum(1 for vp in vantage_points if vp in routes)
        reaches.append(seen / len(vantage_points))
    if not reaches:
        return {"n": 0, "mean": 0.0, "max": 0.0}
    return {
        "n": len(reaches),
        "mean": sum(reaches) / len(reaches),
        "max": max(reaches),
    }


def _run(world: World, params: Mapping[str, Any]) -> dict:
    panels = _originator_panel(world, int(params["originators"]))
    reach = {
        group: _reach_stats(world, originators)
        for group, originators in panels.items()
    }

    members = world.members()
    sav_truth = assign_sav_deployment(
        world, seed=world.seed, rate=float(params["sav_rate"])
    )
    campaign = run_spoofer_campaign(
        world,
        sav_truth,
        test_probability=float(params["test_probability"]),
        seed=world.seed,
    )
    member_verdicts = [
        verdict
        for verdict in (
            is_action2_conformant(asn, campaign) for asn in sorted(members)
        )
        if verdict is not None
    ]
    return {
        "martian_prefixes": len(MARTIAN_PREFIXES),
        "originators": panels,
        "reach": reach,
        "sav": {
            "tested": campaign.tested_count(),
            "overall": campaign.deployment_rate(),
            "members": campaign.deployment_rate(members),
            "members_tested": campaign.tested_count(members),
            "non_members": campaign.deployment_rate(
                frozenset(world.topology.asns) - members
            ),
        },
        "action2": {
            "members_with_evidence": len(member_verdicts),
            "members_conformant": sum(member_verdicts),
        },
    }


def _render(result: dict) -> str:
    reach = result["reach"]
    sav = result["sav"]
    action2 = result["action2"]
    lines = [
        "Scenario martian — bogon origination reach and SAV conformance",
        f"martian prefixes: {result['martian_prefixes']}  "
        f"leakers: {reach['members']['n']} member / "
        f"{reach['non_members']['n']} non-member",
        f"{'population':>12}  {'mean reach':>10}  {'max reach':>9}",
    ]
    for group, label in (("members", "members"), ("non_members", "others")):
        stats = reach[group]
        lines.append(
            f"{label:>12}  {stats['mean'] * 100:9.1f}%  "
            f"{stats['max'] * 100:8.1f}%"
        )
    lines.append(
        f"SAV (Spoofer, {sav['tested']} tested): "
        f"overall {sav['overall'] * 100:.1f}%  "
        f"members {sav['members'] * 100:.1f}% "
        f"({sav['members_tested']} tested)  "
        f"non-members {sav['non_members'] * 100:.1f}%"
    )
    lines.append(
        f"Action 2: {action2['members_conformant']}/"
        f"{action2['members_with_evidence']} members with Spoofer evidence "
        "conformant"
    )
    return "\n".join(lines)


FAMILY = ScenarioFamily(
    name="martian",
    title="Scenario — martian origination and SAV",
    paper_ref="Martians Among Us (PAPERS.md); paper §4.4",
    compute=_run,
    format=_render,
    params={
        "originators": 8,
        "sav_rate": 0.3,
        "test_probability": 0.25,
    },
)
