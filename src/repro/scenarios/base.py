"""The ``ScenarioFamily`` contract (DESIGN.md §17).

A scenario family is an *adversarial or ecosystem what-if* composed onto
an already-built :class:`~repro.scenario.world.World`: declarative
parameters in, a metrics dict out, plus a rendered text figure.  The
crucial discipline is that a family never mutates the world it is given
— perturbations go through private clones (a
:class:`~repro.delta.live.LiveWorld`, a fresh
:class:`~repro.bgp.routeserver.RouteServer`, an extra propagation with
an explicit :class:`~repro.bgp.policy.RouteClass`) — so the (config,
scale, seed) checkpoint identity of the input world, and every golden
digest pinned on it, stays valid no matter which scenarios ran first.

Families are registered as :class:`~repro.experiments.registry
.ExperimentSpec` entries (the registry imports this package, never the
reverse), which is what makes ``reproduce --only``, ``repro sweep``,
``benchmarks/run.py --experiments`` and the serving layer's
``/experiments/<name>`` pick every family up with zero changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.scenario.world import World

__all__ = ["ScenarioFamily"]


@dataclass(frozen=True)
class ScenarioFamily:
    """One pluggable scenario family behind the uniform run/render API.

    ``params`` documents the family's declarative knobs and their
    defaults; ``run(world)`` applies the defaults, ``run(world, k=v)``
    overrides them per call (tests exercise the knobs this way without
    another registry entry per combination).
    """

    #: Short stable identifier — doubles as the experiment-registry key.
    name: str
    #: Human title shown by ``reproduce --list`` and the serving layer.
    title: str
    #: The related work the family reproduces (PAPERS.md).
    paper_ref: str
    #: ``(world, params) -> metrics dict``; must not mutate ``world``.
    compute: Callable[[World, Mapping[str, Any]], dict] = field(repr=False)
    #: ``metrics dict -> printable text`` (pure formatting).
    format: Callable[[dict], str] = field(repr=False)
    #: Declarative parameter defaults, all overridable via ``run``.
    params: Mapping[str, Any] = field(default_factory=dict)

    def run(self, world: World, **overrides: Any) -> dict:
        """Run the family with defaults, applying keyword overrides."""
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise KeyError(
                f"unknown {self.name} parameter(s) {sorted(unknown)}; "
                f"choose from {sorted(self.params)}"
            )
        merged = {**self.params, **overrides}
        return self.compute(world, merged)

    def render(self, result: dict) -> str:
        """Format a ``run`` result as printable text."""
        return self.format(result)
