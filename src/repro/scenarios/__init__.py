"""``repro.scenarios``: pluggable adversarial/ecosystem scenario families.

Each module in this package defines one :class:`ScenarioFamily`
(DESIGN.md §17) — declarative params in, a metrics dict plus rendered
figure out, never mutating the world it composes onto.  The
:data:`FAMILIES` table is the package's registry;
``repro.experiments.registry`` wraps every entry as an
``ExperimentSpec``, which is how the families surface through
``reproduce --only``, ``repro sweep``, ``benchmarks/run.py
--experiments`` and the serving layer without any per-family wiring.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.scenarios import controlled, martian, roa_storm, routeserver_rov
from repro.scenarios.base import ScenarioFamily

__all__ = ["FAMILIES", "ScenarioFamily"]

#: Every scenario family, in presentation order, keyed by stable name.
FAMILIES: Mapping[str, ScenarioFamily] = MappingProxyType(
    {
        family.name: family
        for family in (
            routeserver_rov.FAMILY,
            controlled.FAMILY,
            roa_storm.FAMILY,
            martian.FAMILY,
        )
    }
)
