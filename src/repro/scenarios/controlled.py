"""Scenario family (b): controlled-experiment ROV inference.

Reuter et al. infer which ASes deploy ROV by announcing beacon pairs —
one RPKI-Valid and one Invalid prefix per origin — and watching who
loses the invalid one.  The paper declined the method because on the
real Internet its error structure cannot be validated (§4.2, §11).
Here it can: :func:`repro.core.rov_inference.infer_rov` runs the
methodology against the simulator and the ground-truth policy table
scores it exactly.

The family crosses two axes:

* **visibility** — ``full`` infers every AS in the topology (the
  omniscient upper bound); ``collectors`` restricts scoring to the
  route-collector vantage points, the visibility a real measurement
  actually has;
* **evidence threshold** — how many beacons must agree before an AS is
  inferred as filtering (Reuter et al.'s corroboration knob).

Alongside precision/recall, each cell counts the false positives whose
direct providers deploy ROV — the classic confound (§11: an AS behind
filtering providers loses the invalid beacon without deploying
anything itself).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.rov_inference import evaluate_inference, infer_rov
from repro.scenario.world import World
from repro.scenarios.base import ScenarioFamily

__all__ = ["FAMILY"]


def _beacon_panel(world: World, beacons: int) -> list[int]:
    """Deterministic beacon origins: announcing ASes, evenly strided."""
    candidates = sorted(
        asn for asn, origs in world.originations.items() if origs
    )
    if len(candidates) <= beacons:
        return candidates
    stride = len(candidates) / beacons
    return [candidates[int(i * stride)] for i in range(beacons)]


def _score(world: World, inferred: Mapping[int, bool]) -> dict:
    quality = evaluate_inference(inferred, world.policies)
    fp_provider_filtered = sum(
        1
        for asn, verdict in inferred.items()
        if verdict
        and not (asn in world.policies and world.policies[asn].rov)
        and any(
            provider in world.policies and world.policies[provider].rov
            for provider in world.topology.providers_of(asn)
        )
    )
    return {
        "tp": quality.true_positives,
        "fp": quality.false_positives,
        "fn": quality.false_negatives,
        "tn": quality.true_negatives,
        "precision": quality.precision,
        "recall": quality.recall,
        "fp_provider_filtered": fp_provider_filtered,
    }


def _run(world: World, params: Mapping[str, Any]) -> dict:
    beacons = _beacon_panel(world, int(params["beacons"]))
    everyone = world.topology.asns
    collectors = sorted(world.vantage_points)
    results: dict[str, dict] = {}
    for min_evidence in params["evidence_levels"]:
        inferred = infer_rov(
            world.engine, beacons, everyone, min_evidence=int(min_evidence)
        )
        results[f"full@{min_evidence}"] = _score(world, inferred)
        results[f"collectors@{min_evidence}"] = _score(
            world, {asn: inferred[asn] for asn in collectors}
        )
    return {
        "beacons": beacons,
        "targets": {"full": len(everyone), "collectors": len(collectors)},
        "results": results,
    }


def _render(result: dict) -> str:
    lines = [
        "Scenario cexp — controlled-experiment ROV inference",
        f"beacon origins: {len(result['beacons'])}  "
        f"targets: {result['targets']['full']} ASes "
        f"({result['targets']['collectors']} collector-visible)",
        f"{'visibility':>14}  {'tp':>4}  {'fp':>4}  {'fn':>4}  {'tn':>5}  "
        f"{'precision':>9}  {'recall':>6}  {'fp@prov':>7}",
    ]
    for label, cell in result["results"].items():
        lines.append(
            f"{label:>14}  {cell['tp']:4d}  {cell['fp']:4d}  "
            f"{cell['fn']:4d}  {cell['tn']:5d}  "
            f"{cell['precision']:9.3f}  {cell['recall']:6.3f}  "
            f"{cell['fp_provider_filtered']:7d}"
        )
    return "\n".join(lines)


FAMILY = ScenarioFamily(
    name="cexp",
    title="Scenario — controlled-experiment ROV inference",
    paper_ref="Reuter et al. (PAPERS.md); paper §4.2/§11",
    compute=_run,
    format=_render,
    params={"beacons": 8, "evidence_levels": (1, 2)},
)
