"""One front door for every runtime knob: :class:`RuntimeConfig`.

The performance work of PRs 1–6 accreted a knob per subsystem, each its
own environment variable read at its own call site: ``REPRO_JOBS``
(worker processes), ``REPRO_SHARDS`` (column shards), ``REPRO_KERNELS``
(numpy vs pure-Python kernels), ``REPRO_MMAP`` (memory-mapped column
loads), ``REPRO_WORLD_LOAD`` (columnar vs eager warm starts),
``REPRO_CACHE_DIR`` (the checkpoint store), ``REPRO_WORLD_CACHE_SIZE``
(the in-memory world LRU) and ``REPRO_PATHS_CACHE`` (the propagation
path cache).  This module consolidates them into a single frozen
dataclass resolved **once** with a fixed precedence:

    explicit overrides  >  environment variables  >  defaults

Environment variables remain the documented *fallback* (scripts and CI
keep working unchanged), but the programmatic API is the config object:

    from repro.config import RuntimeConfig

    runtime = RuntimeConfig.resolve(jobs=4, shards=2)   # env fills the rest
    world = build_world(scale=1.0, seed=7, runtime=runtime)

Every entry point that used to read an environment variable now accepts
``runtime=`` (``build_world``, ``collect_rib``, ``validate_many``,
``validate_irr_many``, ``build_ihr_dataset``, ``run_sweep``, the serve
layer) and low-level call-time readers consult :func:`current`, which
returns the installed process-wide config or — when none is installed —
re-resolves from the environment on each call, preserving the historical
"read at call time" semantics tests rely on.

:func:`use` installs a config for a ``with`` block (the world builder
does this when handed ``runtime=``, so even leaf decisions like kernel
mode honour the explicit object); :func:`set_current` installs one for
the rest of the process (sweep and serve workers do this at pool init).
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Iterator, Mapping

__all__ = [
    "ENV_VARS",
    "KERNEL_MODES",
    "WORLD_LOAD_MODES",
    "RuntimeConfig",
    "current",
    "set_current",
    "use",
]

log = logging.getLogger(__name__)

#: Recognised kernel implementations (see :mod:`repro.kernels`).
KERNEL_MODES = ("numpy", "python")

#: Recognised warm-start strategies (see :mod:`repro.datasets.checkpoint`).
WORLD_LOAD_MODES = ("columnar", "eager")

#: Field name → environment variable.  The table *is* the documentation
#: of the fallback contract; README's knob table renders from the same
#: names.
ENV_VARS: Mapping[str, str] = {
    "jobs": "REPRO_JOBS",
    "shards": "REPRO_SHARDS",
    "kernels": "REPRO_KERNELS",
    "mmap": "REPRO_MMAP",
    "world_load": "REPRO_WORLD_LOAD",
    "cache_dir": "REPRO_CACHE_DIR",
    "world_cache_size": "REPRO_WORLD_CACHE_SIZE",
    "paths_cache": "REPRO_PATHS_CACHE",
    "build_budget_mb": "REPRO_BUILD_BUDGET_MB",
}


@dataclass(frozen=True)
class RuntimeConfig:
    """Resolved runtime knobs; immutable, comparable, picklable.

    Defaults reproduce the historical behaviour of an empty environment:
    serial single-shard builds, numpy kernels, memory-mapped columnar
    warm starts, no on-disk store.
    """

    #: Worker processes for parallel collection/sharding (0 = all cores).
    jobs: int = 1
    #: Column shards for the dominant build stages (1 = sharding off).
    shards: int = 1
    #: Kernel implementation: ``numpy`` or ``python``.
    kernels: str = "numpy"
    #: Memory-map checkpoint columns (False = eager decode only).
    mmap: bool = True
    #: Warm-start strategy: ``columnar`` (lazy views) or ``eager``.
    world_load: str = "columnar"
    #: Checkpoint store root; None disables on-disk persistence.
    cache_dir: str | None = None
    #: Most worlds held by the in-memory LRU at once.
    world_cache_size: int = 4
    #: Pinned propagation path-cache size; None lets collection size it.
    paths_cache: int | None = None
    #: Byte budget (in MB) for buffered build columns before sharded
    #: stages spill completed blocks to a scratch file; None keeps
    #: everything in memory (the historical behaviour).
    build_budget_mb: float | None = None

    def __post_init__(self) -> None:
        if self.kernels not in KERNEL_MODES:
            raise ValueError(
                f"kernels={self.kernels!r} is not a kernel mode; "
                f"expected one of {', '.join(KERNEL_MODES)}"
            )
        if self.world_load not in WORLD_LOAD_MODES:
            raise ValueError(
                f"world_load={self.world_load!r} is not a load mode; "
                f"expected one of {', '.join(WORLD_LOAD_MODES)}"
            )
        if self.world_cache_size < 1:
            raise ValueError("world_cache_size must be >= 1")
        if self.build_budget_mb is not None and self.build_budget_mb < 0:
            raise ValueError("build_budget_mb must be >= 0 (or None)")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "RuntimeConfig":
        """The config an empty-argument run resolves to: env over defaults.

        Parsing is as lenient as the per-site readers it replaced — a
        malformed value falls back to the field default rather than
        breaking an analysis run — with one deliberate exception:
        ``REPRO_KERNELS`` raises on unrecognised values, because a typo
        there must not silently change which implementation ran.
        """
        env = os.environ if env is None else env
        values: dict[str, object] = {}

        raw = env.get(ENV_VARS["jobs"], "").strip()
        if raw:
            try:
                values["jobs"] = int(raw)
            except ValueError:
                pass

        raw = env.get(ENV_VARS["shards"], "").strip()
        if raw:
            try:
                values["shards"] = max(1, int(raw))
            except ValueError:
                log.warning(
                    "%s=%r is non-integer; sharding stays off",
                    ENV_VARS["shards"],
                    raw,
                )

        raw = env.get(ENV_VARS["kernels"], "").strip().lower()
        if raw:
            if raw not in KERNEL_MODES:
                raise ValueError(
                    f"{ENV_VARS['kernels']}={raw!r} is not a kernel mode; "
                    f"expected one of {', '.join(KERNEL_MODES)}"
                )
            values["kernels"] = raw

        raw = env.get(ENV_VARS["mmap"], "").strip().lower()
        if raw:
            values["mmap"] = raw not in ("0", "false", "off", "no")

        raw = env.get(ENV_VARS["world_load"], "").strip().lower()
        if raw in WORLD_LOAD_MODES:
            values["world_load"] = raw

        raw = env.get(ENV_VARS["cache_dir"], "").strip()
        if raw:
            values["cache_dir"] = raw

        raw = env.get(ENV_VARS["world_cache_size"], "").strip()
        if raw:
            try:
                size = int(raw)
            except ValueError:
                size = 0
            if size > 0:
                values["world_cache_size"] = size

        raw = env.get(ENV_VARS["paths_cache"], "").strip()
        if raw:
            try:
                values["paths_cache"] = int(raw)
            except ValueError:
                pass

        raw = env.get(ENV_VARS["build_budget_mb"], "").strip()
        if raw:
            try:
                budget = float(raw)
            except ValueError:
                log.warning(
                    "%s=%r is non-numeric; build stays in memory",
                    ENV_VARS["build_budget_mb"],
                    raw,
                )
            else:
                if budget >= 0:
                    values["build_budget_mb"] = budget

        return cls(**values)

    @classmethod
    def resolve(
        cls,
        env: Mapping[str, str] | None = None,
        **overrides: object,
    ) -> "RuntimeConfig":
        """Resolve with the documented precedence: explicit > env > default.

        ``None`` overrides mean "not specified" and defer to the
        environment (every field's ``None`` is either not a valid value
        or already the default), so callers can pass optional CLI
        arguments straight through.
        """
        known = {field.name for field in fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(
                f"unknown runtime field(s) {sorted(unknown)}; "
                f"choose from {sorted(known)}"
            )
        base = cls.from_env(env)
        explicit = {
            name: value for name, value in overrides.items() if value is not None
        }
        return replace(base, **explicit) if explicit else base

    def merged(self, **overrides: object) -> "RuntimeConfig":
        """A copy with non-None ``overrides`` applied on top."""
        explicit = {
            name: value for name, value in overrides.items() if value is not None
        }
        return replace(self, **explicit) if explicit else self

    # -- derived values ------------------------------------------------------

    def effective_jobs(self) -> int:
        """Concrete worker count: ``jobs`` with 0 meaning all cores."""
        if self.jobs <= 0:
            return os.cpu_count() or 1
        return self.jobs


# -- the process-wide active config ------------------------------------------

_active: RuntimeConfig | None = None


def current() -> RuntimeConfig:
    """The active config: the installed one, else a fresh env resolution.

    When nothing is installed this re-reads the environment on every
    call, preserving the historical call-time semantics (tests flip
    ``REPRO_KERNELS`` etc. with ``monkeypatch.setenv`` mid-process).
    """
    return _active if _active is not None else RuntimeConfig.from_env()


def set_current(runtime: RuntimeConfig | None) -> None:
    """Install ``runtime`` process-wide (None restores env fallback)."""
    global _active
    _active = runtime


@contextmanager
def use(runtime: RuntimeConfig | None) -> Iterator[None]:
    """Install ``runtime`` for the duration of a ``with`` block.

    ``None`` is a no-op pass-through, so call sites can wrap their body
    unconditionally: ``with config.use(runtime): ...``.
    """
    if runtime is None:
        yield
        return
    global _active
    previous = _active
    _active = runtime
    try:
        yield
    finally:
        _active = previous
