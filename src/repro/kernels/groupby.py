"""Grouped-reduction kernels: AS-Hegemony over flat path columns.

The IHR pipeline scores every route group's transit ASes over its
vantage-point paths.  The reference implementation walks each group's
path tuples three times (prepending strip, appearance counting, customer
learning); this kernel takes *all* groups' paths as one flat int column
plus offsets and reduces them with one sort pass and ``reduceat``
segment reductions.

Byte-identity with the reference requires reproducing not just the
scores but the **emission order** of each group's transits dict — world
digests serialise it in insertion order.  The reference inserts an AS
when first encountered scanning paths in order; within a stripped path
of length 3 or 4 the scan order is the position order, but longer paths
count their interior through ``set(stripped[1:-1])``, whose iteration
order is a CPython hash-table artefact.  The kernel orders by packed
``(introducing path, within-path position)`` min-keys — which already
settles every pair of ASes introduced by *different* paths — and then
repairs only the rows whose introducing path is a shared length>=5
path with an exact Python ``set`` pass over just those paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hegemony_transits"]

_ASN_BITS = np.uint64(32)
_ASN_MASK = np.uint64(0xFFFFFFFF)
#: Intro keys pack (global path index, within-path rank).  Path ranks are
#: bounded by the path length; model paths are far below 2**16 hops.
_RANK_BITS = 16


def hegemony_transits(
    flat: np.ndarray,
    offsets: np.ndarray,
    group_of_path: np.ndarray,
    paths_per_group: np.ndarray,
    trim: float,
    customer_edges: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Score every group's transit ASes in one columnar reduction.

    ``flat`` concatenates all paths (viewpoint-first, origin-last,
    possibly prepended); ``offsets`` has one boundary per path plus the
    total; ``group_of_path`` maps each path to its group index (paths of
    one group must be contiguous and in the group's viewpoint order);
    ``paths_per_group`` is each group's viewpoint-path count;
    ``customer_edges`` is a sorted uint64 column of packed
    ``(asn << 32) | customer`` provider-customer edges.

    Returns ``(group_ids, asns, scores, from_customer)`` rows holding
    exactly the entries, values and per-group order of the reference
    ``hegemony_scores`` + ``_customer_learning`` combination.
    """
    if not 0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        np.zeros(0, dtype=bool),
    )
    if not len(flat):
        return empty

    # Prepending strip: keep each path's first node and every node that
    # differs from its predecessor (exactly ``strip_prepending``).
    keep = np.empty(len(flat), dtype=bool)
    keep[0] = True
    keep[1:] = flat[1:] != flat[:-1]
    keep[offsets[:-1]] = True
    csum = np.concatenate(([0], np.cumsum(keep)))
    s_offsets = csum[offsets]
    s_flat = flat[keep]
    s_lens = np.diff(s_offsets)

    # Interior positions: everything but each path's viewpoint and
    # origin ends (paths of stripped length <= 2 contribute nothing).
    interior = np.ones(len(s_flat), dtype=bool)
    interior[s_offsets[:-1]] = False
    interior[s_offsets[1:] - 1] = False
    interior_pos = np.flatnonzero(interior)
    if not len(interior_pos):
        return empty

    path_of = np.repeat(np.arange(len(s_lens), dtype=np.int64), s_lens)
    occ_path = path_of[interior_pos]
    occ_asn = s_flat[interior_pos]
    occ_intro = (occ_path << _RANK_BITS) | (
        interior_pos - s_offsets[occ_path] - 1
    )

    # One sort by (group, AS); every per-transit aggregate is a segment
    # reduction over the runs.  The reference counts an AS once per
    # path, so the count is the number of *distinct* paths in a run
    # (stable sort keeps occurrences path-ordered within each run).
    group_key = (
        group_of_path[occ_path].astype(np.uint64) << _ASN_BITS
    ) | occ_asn.astype(np.uint64)
    order = np.argsort(group_key, kind="stable")
    sorted_keys = group_key[order]
    new_run = np.empty(len(sorted_keys), dtype=bool)
    new_run[0] = True
    new_run[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.flatnonzero(new_run)
    sorted_paths = occ_path[order]
    new_path = np.empty(len(sorted_paths), dtype=bool)
    new_path[0] = True
    new_path[1:] = sorted_paths[1:] != sorted_paths[:-1]
    new_path |= new_run
    counts = np.add.reduceat(new_path.astype(np.int64), starts)
    intro = np.minimum.reduceat(occ_intro[order], starts)
    occ = np.minimum.reduceat(interior_pos[order], starts)
    group_ids = (sorted_keys[starts] >> _ASN_BITS).astype(np.int64)
    asns = (sorted_keys[starts] & _ASN_MASK).astype(np.int64)

    # Trimmed-mean scores (reference arithmetic, float64 throughout).
    n_paths = paths_per_group[group_ids]
    cut = np.floor(n_paths * trim).astype(np.int64)
    kept = n_paths - 2 * cut
    ones_kept = np.clip(counts - cut, 0, kept)
    positive = ones_kept > 0
    scores = ones_kept[positive] / kept[positive]

    # Learned-from-customer: the node after the transit (toward the
    # origin) at any occurrence — the propagation engine gives each AS a
    # single selected route, so the flag is occurrence-independent.
    next_nodes = s_flat[occ[positive] + 1]
    edge_keys = (
        asns[positive].astype(np.uint64) << _ASN_BITS
    ) | next_nodes.astype(np.uint64)
    if len(customer_edges):
        pos = np.searchsorted(customer_edges, edge_keys)
        safe = np.minimum(pos, len(customer_edges) - 1)
        from_customer = customer_edges[safe] == edge_keys
    else:
        from_customer = np.zeros(len(edge_keys), dtype=bool)

    group_ids = group_ids[positive]
    asns = asns[positive]
    intro = intro[positive]
    _repair_set_order(intro, asns, s_flat, s_offsets, s_lens)
    emit = np.lexsort((intro, group_ids))
    return group_ids[emit], asns[emit], scores[emit], from_customer[emit]


def _repair_set_order(
    intro: np.ndarray,
    asns: np.ndarray,
    s_flat: np.ndarray,
    s_offsets: np.ndarray,
    s_lens: np.ndarray,
) -> None:
    """Replace positional ranks with set-iteration ranks where they matter.

    The relative emission order of two ASes differs from their packed
    intro keys only when both were introduced by the *same* stripped
    path of length >= 5 (shorter paths iterate in position order).
    Those shared paths get the reference's exact ``set`` iteration pass;
    ``intro`` is patched in place.
    """
    intro_path = intro >> _RANK_BITS
    uniq, uniq_counts = np.unique(intro_path, return_counts=True)
    shared = uniq[(uniq_counts >= 2) & (s_lens[uniq] >= 5)]
    if not len(shared):
        return
    rows = np.flatnonzero(np.isin(intro_path, shared))
    rows = rows[np.argsort(intro_path[rows], kind="stable")]
    nodes = s_flat.tolist()
    row_list = rows.tolist()
    asn_list = asns[rows].tolist()
    path_list = intro_path[rows].tolist()
    current_path = -1
    ranks: dict[int, int] = {}
    for row, asn, path in zip(row_list, asn_list, path_list):
        if path != current_path:
            start = int(s_offsets[path])
            end = start + int(s_lens[path])
            ranks = {
                node: r
                for r, node in enumerate(set(nodes[start + 1 : end - 1]))
            }
            current_path = path
        intro[row] = (path << _RANK_BITS) | ranks[asn]
