"""CSR propagation kernels: batched phase-2/3 sweeps for collection.

``PropagationEngine.paths_to`` re-runs the same three-phase computation
for thousands of origins against one vantage-point set.  Phase 1
(customer routes up the origin's provider chain) touches a handful of
ASes and stays in Python; phases 2 and 3 each scan the vantage points'
provider *closure* — a fixed set of ~10² ASes whose peer/provider
adjacency never changes between origins.  This module freezes that
closure into CSR slot arrays once per vantage-point set
(:class:`CollectionPlan`) and then resolves phases 2–3 for a whole batch
of origins as ``min``-``reduceat`` sweeps over ``(origins × slots)``
matrices.

Selection semantics are bit-identical to the scalar reference
(:meth:`PropagationEngine._fast_paths`): candidates pack to
``length * 2**16 + neighbour_rank`` so the vectorised ``min`` reproduces
"shortest path, then first neighbour in ascending-ASN iteration", and
phase 3 runs level-by-level over the provider-first closure ordering —
every provider of a level-``k`` AS sits in a level below ``k``, so the
per-level sweep sees exactly the state the sequential loop saw.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = ["CollectionPlan", "batch_paths"]

#: Rank base for packed (path length, neighbour rank) candidate keys.
_RANK = np.int64(1) << np.int64(16)
#: "No candidate" sentinel; larger than any packed key.
_NONE = np.int64(1) << np.int64(62)


class CollectionPlan:
    """One vantage-point set's closure, frozen for batched resolution.

    Built from the provider-first closure ``order`` (phase-3 processing
    sequence) and the engine's frozen ascending-ASN adjacency tuples —
    slot ranks inherit their ordering, which is what makes the packed
    ``min`` reproduce the scalar tie-breaks.  Exporters — the peers that
    may feed a phase-2 route into the closure — are pooled separately
    because they need not be closure members themselves.
    """

    __slots__ = (
        "casn",
        "cidx",
        "vp_pairs",
        "exporter_asns",
        "p2_members",
        "p2_starts",
        "p2_slot_exporter",
        "p2_slot_rank",
        "levels",
    )

    def __init__(
        self,
        order: tuple[int, ...],
        vantage_points: tuple[int, ...],
        peers_of: Mapping[int, tuple[int, ...]],
        providers_of: Mapping[int, tuple[int, ...]],
    ):
        self.casn = list(order)
        self.cidx = {asn: i for i, asn in enumerate(order)}
        self.vp_pairs = [(vp, self.cidx[vp]) for vp in vantage_points]

        # Phase-2 slots: per closure member with peers, its peers mapped
        # into one exporter pool (slot order = ascending-ASN peer order).
        exporter_asns: list[int] = []
        eidx: dict[int, int] = {}
        members: list[int] = []
        starts: list[int] = []
        slot_exporter: list[int] = []
        for c, asn in enumerate(order):
            peers = peers_of[asn]
            if not peers:
                continue
            members.append(c)
            starts.append(len(slot_exporter))
            for peer in peers:
                e = eidx.get(peer)
                if e is None:
                    e = len(exporter_asns)
                    eidx[peer] = e
                    exporter_asns.append(peer)
                slot_exporter.append(e)
        self.exporter_asns = exporter_asns
        self.p2_members = np.array(members, dtype=np.int64)
        self.p2_starts = np.array(starts, dtype=np.int64)
        self.p2_slot_exporter = np.array(slot_exporter, dtype=np.int64)
        ranks = np.arange(len(slot_exporter), dtype=np.int64)
        if len(starts):
            ranks -= np.repeat(
                self.p2_starts,
                np.diff(np.concatenate((self.p2_starts, [len(slot_exporter)]))),
            )
        self.p2_slot_rank = ranks

        # Phase-3 levels: partition the provider-first order into rounds
        # where every member's providers sit in an earlier round.  The
        # closure is provider-closed, so provider lookups stay inside it.
        level_of: dict[int, int] = {}
        by_level: dict[int, list[int]] = {}
        for c, asn in enumerate(order):
            providers = providers_of[asn]
            level = (
                0
                if not providers
                else 1 + max(level_of[p] for p in providers)
            )
            level_of[asn] = level
            if providers:
                by_level.setdefault(level, []).append(c)
        self.levels = []
        for level in sorted(by_level):
            l_members: list[int] = []
            l_starts: list[int] = []
            l_slot_provider: list[int] = []
            for c in by_level[level]:
                l_members.append(c)
                l_starts.append(len(l_slot_provider))
                l_slot_provider.extend(
                    self.cidx[p] for p in providers_of[self.casn[c]]
                )
            slot_provider = np.array(l_slot_provider, dtype=np.int64)
            starts_arr = np.array(l_starts, dtype=np.int64)
            rank_arr = np.arange(len(slot_provider), dtype=np.int64)
            rank_arr -= np.repeat(
                starts_arr,
                np.diff(np.concatenate((starts_arr, [len(slot_provider)]))),
            )
            self.levels.append(
                (
                    np.array(l_members, dtype=np.int64),
                    starts_arr,
                    slot_provider,
                    rank_arr,
                )
            )

    def filter_masks(
        self, drops_peers: frozenset[int], drops_everywhere: frozenset[int]
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Per-member keep masks for one filter signature."""
        casn = self.casn
        p2_keep = np.array(
            [casn[c] not in drops_peers for c in self.p2_members.tolist()],
            dtype=bool,
        )
        level_keeps = [
            np.array(
                [casn[c] not in drops_everywhere for c in members.tolist()],
                dtype=bool,
            )
            for members, _, _, _ in self.levels
        ]
        return p2_keep, level_keeps


def batch_paths(
    plan: CollectionPlan,
    bases: list[dict[int, tuple[int, ...]]],
    p2_keep: np.ndarray,
    level_keeps: list[np.ndarray],
) -> list[dict[int, tuple[int, ...]]]:
    """Resolve phases 2–3 for every origin in one sweep per phase.

    ``bases`` holds each origin's phase-1 routes (AS → path).  Returns
    one ``{vantage_point: path}`` dict per origin, identical to the
    scalar reference in content and iteration order.
    """
    n_origins = len(bases)
    n_closure = len(plan.casn)
    n_exporters = len(plan.exporter_asns)
    base_len = np.zeros((n_origins, n_exporters), dtype=np.int64)
    merged_len = np.zeros((n_origins, n_closure), dtype=np.int64)
    kind = np.zeros((n_origins, n_closure), dtype=np.int8)
    peer_bp = np.zeros((n_origins, n_closure), dtype=np.int32)
    provider_bp = np.zeros((n_origins, n_closure), dtype=np.int32)

    # Scatter phase-1 path lengths into the exporter and closure columns.
    eidx = {asn: i for i, asn in enumerate(plan.exporter_asns)}
    cidx = plan.cidx
    rows: list[int] = []
    e_cols: list[int] = []
    e_vals: list[int] = []
    c_rows: list[int] = []
    c_cols: list[int] = []
    c_vals: list[int] = []
    for g, base in enumerate(bases):
        for asn, path in base.items():
            e = eidx.get(asn)
            if e is not None:
                rows.append(g)
                e_cols.append(e)
                e_vals.append(len(path))
            c = cidx.get(asn)
            if c is not None:
                c_rows.append(g)
                c_cols.append(c)
                c_vals.append(len(path))
    if rows:
        base_len[rows, e_cols] = e_vals
    if c_rows:
        merged_len[c_rows, c_cols] = c_vals
        kind[c_rows, c_cols] = 1

    # Phase 2: best (shortest, lowest-rank) exporting peer per member.
    if len(plan.p2_members):
        gathered = base_len[:, plan.p2_slot_exporter]
        packed = np.where(
            gathered > 0, gathered * _RANK + plan.p2_slot_rank, _NONE
        )
        best = np.minimum.reduceat(packed, plan.p2_starts, axis=1)
        members = plan.p2_members
        chosen = (
            (best < _NONE) & (merged_len[:, members] == 0) & p2_keep[None, :]
        )
        slots = plan.p2_starts[None, :] + (best % _RANK)
        exporters = plan.p2_slot_exporter[slots]
        merged_len[:, members] = np.where(
            chosen, best // _RANK + 1, merged_len[:, members]
        )
        kind[:, members] = np.where(chosen, np.int8(2), kind[:, members])
        peer_bp[:, members] = np.where(
            chosen, exporters.astype(np.int32), peer_bp[:, members]
        )

    # Phase 3, one round per closure level (provider-first semantics).
    for (members, starts, slot_provider, slot_rank), keep in zip(
        plan.levels, level_keeps
    ):
        gathered = merged_len[:, slot_provider]
        packed = np.where(gathered > 0, gathered * _RANK + slot_rank, _NONE)
        best = np.minimum.reduceat(packed, starts, axis=1)
        chosen = (
            (best < _NONE) & (merged_len[:, members] == 0) & keep[None, :]
        )
        providers = slot_provider[starts[None, :] + (best % _RANK)]
        merged_len[:, members] = np.where(
            chosen, best // _RANK + 1, merged_len[:, members]
        )
        kind[:, members] = np.where(chosen, np.int8(3), kind[:, members])
        provider_bp[:, members] = np.where(
            chosen, providers.astype(np.int32), provider_bp[:, members]
        )

    # Path reconstruction: one forward pass per origin.  Columns follow
    # the provider-first closure order, so a phase-3 back-pointer always
    # references an already-built column (``p_row[c] < c``) and phase-3
    # tuples share their providers' tuples structurally.
    casn = plan.casn
    exporter_asns = plan.exporter_asns
    vp_pairs = plan.vp_pairs
    kind_rows = kind.tolist()
    peer_rows = peer_bp.tolist()
    provider_rows = provider_bp.tolist()
    results: list[dict[int, tuple[int, ...]]] = []
    for g, base in enumerate(bases):
        k_row = kind_rows[g]
        e_row = peer_rows[g]
        p_row = provider_rows[g]
        built: list[tuple[int, ...] | None] = [None] * n_closure
        for c, k in enumerate(k_row):
            if k == 0:
                continue
            if k == 3:
                built[c] = (casn[c],) + built[p_row[c]]
            elif k == 1:
                built[c] = base[casn[c]]
            else:
                built[c] = (casn[c],) + base[exporter_asns[e_row[c]]]
        paths: dict[int, tuple[int, ...]] = {}
        for vp, c in vp_pairs:
            path = built[c]
            if path is not None:
                paths[vp] = path
        results.append(paths)
    return results
