"""Columnar numpy kernels for the measurement hot path.

The pipeline's per-world cost is dominated by bulk, per-route work with
no data-dependent control flow: classifying every origination against
the RPKI and the IRR, sweeping routed address space per year, scoring
transit ASes over millions of collector paths, and re-running the same
three-phase propagation over thousands of (origin, filter-class) groups.
Each of those admits a columnar formulation — integer prefix columns,
CSR adjacency, sort-then-reduce groupings — that numpy executes one to
two orders of magnitude faster than the per-object Python loops.

Every kernel is a *drop-in* behind an existing API and is required to be
**byte-identical** to the pure-Python reference implementation it
shadows (the original code paths, which all remain in place).  The
golden-digest suite pins that equivalence end to end; `tests/
test_kernels.py` pins it property-by-property on generated inputs.

Mode selection
--------------

``REPRO_KERNELS`` picks the implementation:

* ``numpy`` (default) — columnar kernels;
* ``python`` — the original pure-Python reference paths.

The variable is read at *call* time, not import time, so tests can flip
modes with ``monkeypatch.setenv`` and compare both implementations in
one process.
"""

from __future__ import annotations

from repro import config as _config
from repro.config import KERNEL_MODES

__all__ = ["KERNEL_MODES", "kernel_mode", "use_numpy"]

_ENV_VAR = "REPRO_KERNELS"


def kernel_mode() -> str:
    """The active kernel mode (``numpy`` or ``python``).

    Resolved through the active :class:`repro.config.RuntimeConfig`
    (which falls back to ``REPRO_KERNELS``).  Unset or empty selects
    ``numpy``; anything unrecognised raises so a typo cannot silently
    change which implementation ran.
    """
    return _config.current().kernels


def use_numpy() -> bool:
    """True when the columnar numpy kernels are active."""
    return kernel_mode() == "numpy"
