"""Interval kernels: bulk prefix-coverage lookups via ``searchsorted``.

RPKI route origin validation and IRR route-object matching share one
primitive: given a route ``(prefix, origin)``, find whether any
*covering* registered entry exists, whether one matches the origin, and
whether one authorises the announced prefix length.  The radix trie
answers that one route at a time in O(prefix length); these kernels
answer it for whole integer prefix columns at once.

The trick is that a prefix of length ``L`` covers a query iff the
query's top ``L`` address bits equal the entry's — so per registered
length ``L`` the entries reduce to a sorted array of ``L``-bit keys, and
covering containment over a column of queries becomes one
``np.searchsorted`` per populated length (at most 32 for IPv4).  Origin
matching packs ``(key, asn)`` into one ``uint64`` and aggregates the
maximum authorised length per pair, so the RFC 6811 verdict falls out of
three boolean columns.

IPv6 values exceed 64 bits; v6 entries use per-length Python dict
lookups instead (v6 populations in the model are small).  Verdicts are
exactly those of the per-route reference classifiers in
:mod:`repro.rpki.rov` and :mod:`repro.irr.validation`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.net.prefix import Prefix

__all__ = [
    "NOT_FOUND",
    "VALID",
    "INVALID_LENGTH",
    "INVALID_ORIGIN",
    "RouteIntervalIndex",
    "union_address_count",
]

#: Verdict codes shared by the RPKI and IRR classifications.  The two
#: "invalid" flavours map to ``INVALID_ASN``/``INVALID_ORIGIN`` in the
#: respective status enums.
NOT_FOUND = 0
VALID = 1
INVALID_LENGTH = 2
INVALID_ORIGIN = 3

_V4_BITS = 32
_V6_BITS = 128


class _V4Bucket:
    """All v4 entries of one prefix length, in searchsorted form."""

    __slots__ = ("length", "keys", "packed", "packed_maxlen")

    def __init__(
        self,
        length: int,
        keys: np.ndarray,
        packed: np.ndarray,
        packed_maxlen: np.ndarray,
    ):
        self.length = length
        #: Sorted unique top-``length``-bit keys (coverage test).
        self.keys = keys
        #: Sorted unique ``(key << 32) | asn`` pairs (origin-match test).
        self.packed = packed
        #: Max authorised length per ``packed`` entry (VALID test).
        self.packed_maxlen = packed_maxlen


class _V6Bucket:
    """All v6 entries of one prefix length (dict form: 128-bit keys)."""

    __slots__ = ("length", "keys", "maxlen_by_origin")

    def __init__(self, length: int):
        self.length = length
        self.keys: set[int] = set()
        #: ``(key, asn) -> max authorised length``.
        self.maxlen_by_origin: dict[tuple[int, int], int] = {}


class RouteIntervalIndex:
    """A frozen registry snapshot indexed for bulk classification.

    ``rows`` are ``(prefix, asn, max_length)`` triples — one per VRP or
    route object.  For the IRR, ``max_length`` is the object's own
    prefix length, which makes the paper's IRR procedure (§6.1) the
    exact RFC 6811 verdict function: a covering entry with matching
    origin is VALID iff the announcement is no more specific than
    ``max_length`` allows.

    ``zero_asn_matches=False`` reproduces ROV's AS0 rule: entries with
    ASN 0 still provide *coverage* but can never origin-match.
    """

    def __init__(
        self,
        rows: Iterable[tuple[Prefix, int, int]],
        zero_asn_matches: bool = False,
    ):
        v4_vals: list[int] = []
        v4_lens: list[int] = []
        v4_asns: list[int] = []
        v4_maxs: list[int] = []
        v6_buckets: dict[int, _V6Bucket] = {}
        for prefix, asn, max_length in rows:
            if prefix.version == 4:
                v4_vals.append(prefix.value)
                v4_lens.append(prefix.length)
                v4_asns.append(asn)
                v4_maxs.append(max_length)
            else:
                bucket = v6_buckets.get(prefix.length)
                if bucket is None:
                    bucket = _V6Bucket(prefix.length)
                    v6_buckets[prefix.length] = bucket
                key = prefix.value >> (_V6_BITS - prefix.length)
                bucket.keys.add(key)
                if asn != 0 or zero_asn_matches:
                    pair = (key, asn)
                    known = bucket.maxlen_by_origin.get(pair)
                    if known is None or max_length > known:
                        bucket.maxlen_by_origin[pair] = max_length
        self._v4_buckets = _build_v4_buckets(
            v4_vals, v4_lens, v4_asns, v4_maxs, zero_asn_matches
        )
        self._v6_buckets = sorted(v6_buckets.values(), key=lambda b: b.length)

    # -- bulk classification ----------------------------------------------

    def classify_v4(
        self,
        values: np.ndarray,
        lengths: np.ndarray,
        origins: np.ndarray,
    ) -> np.ndarray:
        """Verdict codes for columns of v4 routes.

        ``values``/``origins`` are uint64, ``lengths`` int64; returns an
        int8 column of the module-level verdict codes.
        """
        n = len(values)
        covered = np.zeros(n, dtype=bool)
        matched = np.zeros(n, dtype=bool)
        valid = np.zeros(n, dtype=bool)
        for bucket in self._v4_buckets:
            mask = lengths >= bucket.length
            if not mask.any():
                continue
            keys = values[mask] >> np.uint64(_V4_BITS - bucket.length)
            covered[mask] |= _sorted_contains(bucket.keys, keys)
            if len(bucket.packed):
                pk = (keys << np.uint64(_V4_BITS)) | origins[mask]
                pos = np.searchsorted(bucket.packed, pk)
                pos_safe = np.minimum(pos, len(bucket.packed) - 1)
                hit = bucket.packed[pos_safe] == pk
                matched[mask] |= hit
                ok = hit & (bucket.packed_maxlen[pos_safe] >= lengths[mask])
                valid[mask] |= ok
        codes = np.full(n, NOT_FOUND, dtype=np.int8)
        codes[covered] = INVALID_ORIGIN
        codes[matched] = INVALID_LENGTH
        codes[valid] = VALID
        return codes

    def classify_one_v6(self, prefix: Prefix, origin: int) -> int:
        """Verdict code for a single v6 route (dict-backed)."""
        covered = matched = False
        value, qlen = prefix.value, prefix.length
        for bucket in self._v6_buckets:
            if bucket.length > qlen:
                break
            key = value >> (_V6_BITS - bucket.length)
            if key not in bucket.keys:
                continue
            covered = True
            max_length = bucket.maxlen_by_origin.get((key, origin))
            if max_length is not None:
                matched = True
                if qlen <= max_length:
                    return VALID
        if matched:
            return INVALID_LENGTH
        return INVALID_ORIGIN if covered else NOT_FOUND

    def classify_routes(
        self, routes: Sequence[tuple[Prefix, int]]
    ) -> np.ndarray:
        """Verdict codes aligned with ``routes`` (mixed v4/v6)."""
        codes = np.empty(len(routes), dtype=np.int8)
        v4_pos: list[int] = []
        v4_vals: list[int] = []
        v4_lens: list[int] = []
        v4_origins: list[int] = []
        for i, (prefix, origin) in enumerate(routes):
            if prefix.version == 4:
                v4_pos.append(i)
                v4_vals.append(prefix.value)
                v4_lens.append(prefix.length)
                v4_origins.append(origin)
            else:
                codes[i] = self.classify_one_v6(prefix, origin)
        if v4_pos:
            v4_codes = self.classify_v4(
                np.array(v4_vals, dtype=np.uint64),
                np.array(v4_lens, dtype=np.int64),
                np.array(v4_origins, dtype=np.uint64),
            )
            codes[np.array(v4_pos, dtype=np.int64)] = v4_codes
        return codes

    # -- bulk coverage ------------------------------------------------------

    def covers_v4(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Boolean column: does any entry cover each v4 ``(value, length)``?"""
        covered = np.zeros(len(values), dtype=bool)
        for bucket in self._v4_buckets:
            mask = (lengths >= bucket.length) & ~covered
            if not mask.any():
                continue
            keys = values[mask] >> np.uint64(_V4_BITS - bucket.length)
            covered[mask] = _sorted_contains(bucket.keys, keys)
        return covered

    def covers_one_v6(self, prefix: Prefix) -> bool:
        """Does any entry cover this v6 prefix?"""
        value, qlen = prefix.value, prefix.length
        for bucket in self._v6_buckets:
            if bucket.length > qlen:
                break
            if value >> (_V6_BITS - bucket.length) in bucket.keys:
                return True
        return False

    def covers_prefixes(self, prefixes: Sequence[Prefix]) -> np.ndarray:
        """Boolean column aligned with ``prefixes`` (mixed v4/v6)."""
        covered = np.zeros(len(prefixes), dtype=bool)
        v4_pos: list[int] = []
        v4_vals: list[int] = []
        v4_lens: list[int] = []
        for i, prefix in enumerate(prefixes):
            if prefix.version == 4:
                v4_pos.append(i)
                v4_vals.append(prefix.value)
                v4_lens.append(prefix.length)
            else:
                covered[i] = self.covers_one_v6(prefix)
        if v4_pos:
            covered[np.array(v4_pos, dtype=np.int64)] = self.covers_v4(
                np.array(v4_vals, dtype=np.uint64),
                np.array(v4_lens, dtype=np.int64),
            )
        return covered


def _build_v4_buckets(
    vals: list[int],
    lens: list[int],
    asns: list[int],
    maxs: list[int],
    zero_asn_matches: bool,
) -> list[_V4Bucket]:
    if not vals:
        return []
    values = np.array(vals, dtype=np.uint64)
    lengths = np.array(lens, dtype=np.int64)
    origins = np.array(asns, dtype=np.uint64)
    maxlens = np.array(maxs, dtype=np.int64)
    buckets: list[_V4Bucket] = []
    for length in np.unique(lengths):
        mask = lengths == length
        keys = values[mask] >> np.uint64(_V4_BITS - length)
        bucket_asns = origins[mask]
        bucket_maxlens = maxlens[mask]
        if not zero_asn_matches:
            nonzero = bucket_asns != 0
            packed_keys = keys[nonzero]
            bucket_asns = bucket_asns[nonzero]
            bucket_maxlens = bucket_maxlens[nonzero]
        else:
            packed_keys = keys
        packed = (packed_keys << np.uint64(_V4_BITS)) | bucket_asns
        if len(packed):
            order = np.argsort(packed, kind="stable")
            packed = packed[order]
            bucket_maxlens = bucket_maxlens[order]
            starts = np.flatnonzero(
                np.concatenate(([True], packed[1:] != packed[:-1]))
            )
            packed = packed[starts]
            packed_maxlen = np.maximum.reduceat(bucket_maxlens, starts)
        else:
            packed_maxlen = bucket_maxlens
        buckets.append(
            _V4Bucket(int(length), np.unique(keys), packed, packed_maxlen)
        )
    return buckets


def _sorted_contains(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership of ``needles`` in the sorted unique ``haystack``."""
    if not len(haystack):
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    return haystack[np.minimum(pos, len(haystack) - 1)] == needles


def union_address_count(firsts: np.ndarray, lasts: np.ndarray) -> int:
    """Distinct addresses covered by intervals sorted by (first, length).

    Vector form of the sweep in
    :func:`repro.net.prefix.aggregate_address_count`: a running maximum
    of interval ends replaces the scalar ``covered_until`` cursor, and
    each interval contributes the part past everything before it.
    """
    if not len(firsts):
        return 0
    reach = np.maximum.accumulate(lasts)
    covered_until = np.empty_like(reach)
    covered_until[0] = -1
    covered_until[1:] = reach[:-1]
    contributions = lasts - np.maximum(firsts, covered_until + 1) + 1
    return int(contributions.clip(min=0).sum())
