"""MANRS Action 2: source address validation (SAV) and the Spoofer test.

Action 2 asks networks to block outbound traffic with spoofed source
addresses and verify with CAIDA's Spoofer client.  Luckie et al. (CCS'19)
— the only prior MANRS-conformance study the paper cites — found **no
evidence** that MANRS members deploy SAV more than comparable non-members.
This extension models exactly that: SAV deployment is sampled
independently of membership, and a Spoofer-style measurement campaign
(clients run in a random subset of networks) recovers the null result.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: scenario depends on manrs
    from repro.scenario.world import World

__all__ = [
    "SpooferResult",
    "SpooferCampaign",
    "assign_sav_deployment",
    "run_spoofer_campaign",
    "is_action2_conformant",
    "is_action2_mandatory",
]

#: Baseline SAV deployment (Luckie et al. observed roughly a quarter to a
#: third of tested networks blocking spoofed packets).
SAV_DEPLOYMENT_RATE = 0.3


@dataclass(frozen=True)
class SpooferResult:
    """One Spoofer client run: did the network block spoofed packets?"""

    asn: int
    blocks_spoofing: bool
    tested_on: date


@dataclass
class SpooferCampaign:
    """A set of Spoofer measurements plus membership-split statistics."""

    results: list[SpooferResult]

    def deployment_rate(self, asns: frozenset[int] | None = None) -> float:
        """Fraction of tested networks that block spoofing.

        With ``asns`` given, restrict to that population (e.g. MANRS
        members).  Returns 0.0 when nothing matches.
        """
        relevant = [
            r for r in self.results if asns is None or r.asn in asns
        ]
        if not relevant:
            return 0.0
        return sum(r.blocks_spoofing for r in relevant) / len(relevant)

    def tested_count(self, asns: frozenset[int] | None = None) -> int:
        """Number of tested networks (optionally within a population)."""
        return sum(1 for r in self.results if asns is None or r.asn in asns)


def assign_sav_deployment(
    world: "World", seed: int = 0, rate: float = SAV_DEPLOYMENT_RATE
) -> dict[int, bool]:
    """Ground-truth SAV deployment per AS.

    Deliberately *independent of MANRS membership* — the Luckie et al.
    finding the paper cites (§4.4).
    """
    rng = np.random.default_rng(seed)
    return {
        asn: bool(rng.random() < rate) for asn in world.topology.asns
    }


def run_spoofer_campaign(
    world: "World",
    sav_truth: dict[int, bool],
    test_probability: float = 0.25,
    seed: int = 0,
) -> SpooferCampaign:
    """Simulate a Spoofer measurement campaign.

    Volunteer clients appear in a random ``test_probability`` fraction of
    networks (coverage is opportunistic in reality too); each run reveals
    that network's true SAV state.

    The draw stream is decorrelated from
    :func:`assign_sav_deployment`'s by construction: both iterate the
    same sorted ASNs, so sharing a raw seed would otherwise test exactly
    the networks whose deployment draw fell below ``test_probability`` —
    a campaign that only ever finds SAV deployers.
    """
    rng = np.random.default_rng([0x5AF, seed])
    results = [
        SpooferResult(
            asn=asn,
            blocks_spoofing=sav_truth[asn],
            tested_on=world.snapshot_date,
        )
        for asn in world.topology.asns
        if rng.random() < test_probability
    ]
    return SpooferCampaign(results=results)


def is_action2_conformant(
    asn: int, campaign: SpooferCampaign
) -> bool | None:
    """Action 2 verdict for one network from Spoofer evidence.

    ``True``/``False`` when the campaign tested the network (any run
    showing spoofed packets escaping fails the action — MANRS asks for
    SAV on *all* edges), ``None`` when there is no evidence either way.
    Coverage is opportunistic, so ``None`` is the common case — exactly
    the measurement gap that kept Action 2 out of the paper's scope.
    """
    runs = [r for r in campaign.results if r.asn == asn]
    if not runs:
        return None
    return all(r.blocks_spoofing for r in runs)


def is_action2_mandatory(program) -> bool:
    """Whether the program's catalogue marks Action 2 as mandatory."""
    from repro.manrs.actions import ACTIONS

    return any(
        action.program is program
        and action.number == 2
        and action.mandatory
        for action in ACTIONS
    )
