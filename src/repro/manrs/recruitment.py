"""MANRS recruitment model: who joins, when, and with which ASNs.

Reproduces the growth dynamics the paper highlights (§7, Figures 2/4):

* slow early growth from 2015, acceleration from 2019;
* a 2020 wave of small LACNIC (Brazilian) networks driven by NIC.br
  outreach — many member ASes, little address space;
* the CDN & Cloud Provider program launching in 2020, pulling in the
  large content networks (the ARIN address-space jump);
* one very large APNIC transit provider joining in 2020 (the China
  Telecom analogue behind the APNIC address-space jump).

Organisations register all their ASNs with probability ~0.70 and a proper
subset otherwise (Finding 7.0); a registered subset occasionally misses
the announcing AS entirely (the paper found 8 such organisations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta

import numpy as np

from repro.manrs.actions import Program
from repro.manrs.registry import MANRSRegistry, Participant
from repro.registry.rir import RIR
from repro.topology.model import ASCategory, ASTopology, Organization

__all__ = ["RecruitmentConfig", "recruit"]


@dataclass
class RecruitmentConfig:
    """Probabilities and waves driving MANRS membership growth."""

    #: Probability an org has joined by the final year, by the category of
    #: its primary AS.
    join_probability: dict[ASCategory, float] = field(
        default_factory=lambda: {
            ASCategory.LARGE_TRANSIT: 0.40,
            ASCategory.MEDIUM_ISP: 0.34,
            ASCategory.SMALL_ISP: 0.28,
            ASCategory.STUB: 0.022,
            ASCategory.CDN: 0.65,
            ASCategory.IXP: 0.0,
        }
    )
    #: Join-year weights for ordinary (non-wave) participants, 2015..2022.
    year_weights: tuple[float, ...] = (0.03, 0.03, 0.04, 0.06, 0.12, 0.30, 0.26, 0.16)
    first_year: int = 2015
    last_year: int = 2022
    #: Extra probability for small Brazilian orgs, all joining in the 2020
    #: NIC.br wave.
    brazil_wave_probability: float = 0.12
    brazil_wave_year: int = 2020
    #: The CDN program only exists from this year.
    cdn_program_start: int = 2020
    #: Probability that a joining org (with several ASNs) registers *all*
    #: of them; calibrated so that ~70% of member orgs end up fully
    #: registered overall (Finding 7.0), counting single-AS orgs.
    register_all_probability: float = 0.25
    #: Probability that a registered subset misses the primary AS.
    miss_primary_probability: float = 0.05


def recruit(
    topology: ASTopology,
    config: RecruitmentConfig | None = None,
    seed: int = 0,
) -> MANRSRegistry:
    """Build the MANRS registry for ``topology`` (deterministic by seed)."""
    config = config or RecruitmentConfig()
    rng = np.random.default_rng(seed)
    registry = MANRSRegistry()
    years = list(range(config.first_year, config.last_year + 1))
    weights = np.array(config.year_weights, dtype=float)
    weights /= weights.sum()

    flagship = _flagship_apnic_transit(topology)

    for org in topology.organizations:
        if not org.asns:
            continue
        primary = org.asns[0]
        category = topology.get_as(primary).category
        program = Program.CDN if category is ASCategory.CDN else Program.ISP

        joins = rng.random() < config.join_probability.get(category, 0.0)
        join_year: int | None = None
        if org.org_id == flagship:
            joins, join_year = True, config.brazil_wave_year
        elif (
            not joins
            and org.country == "BR"
            and category in (ASCategory.STUB, ASCategory.SMALL_ISP)
            and rng.random() < config.brazil_wave_probability
        ):
            joins, join_year = True, config.brazil_wave_year
        if not joins:
            continue

        if join_year is None:
            join_year = int(rng.choice(years, p=weights))
        if program is Program.CDN:
            join_year = max(join_year, config.cdn_program_start)
        joined = date(join_year, 1, 1) + timedelta(days=int(rng.integers(0, 364)))

        asns = _registered_subset(org, rng, config)
        registry.add(
            Participant(org_id=org.org_id, program=program, asns=asns, joined=joined)
        )
    return registry


def _registered_subset(
    org: Organization,
    rng: np.random.Generator,
    config: RecruitmentConfig,
) -> tuple[int, ...]:
    """Which of the org's ASNs get registered."""
    asns = sorted(org.asns)
    if len(asns) == 1 or rng.random() < config.register_all_probability:
        return tuple(asns)
    keep = max(1, int(rng.integers(1, len(asns))))
    if rng.random() < config.miss_primary_probability and len(asns) > 1:
        pool = asns[1:]  # skip the primary (announcing) AS entirely
    else:
        pool = asns
        if keep < len(asns):
            # The primary AS is always among the registered ones in the
            # common case: members register their main network first.
            chosen = {asns[0]}
            extra = rng.choice(asns[1:], size=keep - 1, replace=False) if keep > 1 else []
            chosen.update(int(a) for a in np.atleast_1d(extra))
            return tuple(sorted(chosen))
    keep = min(keep, len(pool))
    chosen_subset = rng.choice(pool, size=keep, replace=False)
    return tuple(sorted(int(a) for a in np.atleast_1d(chosen_subset)))


def _flagship_apnic_transit(topology: ASTopology) -> str | None:
    """The org id of the largest APNIC large-transit AS (by customer cone).

    This org is forced to join in the wave year, reproducing the APNIC
    address-space jump of Figure 4b.
    """
    candidates = [
        asn
        for asn in topology.asns
        if topology.get_as(asn).category is ASCategory.LARGE_TRANSIT
        and topology.get_as(asn).rir is RIR.APNIC
    ]
    if not candidates:
        return None
    best = max(candidates, key=lambda asn: len(topology.customer_cone(asn)))
    return topology.get_as(best).org_id
