"""MANRS: programs, actions, participant registry, recruitment model."""

from repro.manrs.actions import (
    ACTIONS,
    CDN_ACTION4_MIN_VALID,
    ISP_ACTION4_MIN_VALID,
    Action,
    Program,
    action4_threshold,
)
from repro.manrs.contacts import (
    ContactRecord,
    PeeringDBLike,
    is_action3_conformant,
    populate_contacts,
)
from repro.manrs.recruitment import RecruitmentConfig, recruit
from repro.manrs.sav import (
    SpooferCampaign,
    SpooferResult,
    assign_sav_deployment,
    run_spoofer_campaign,
)
from repro.manrs.registry import (
    MANRSRegistry,
    Participant,
    parse_participants,
    serialize_participants,
)

__all__ = [
    "ACTIONS",
    "Action",
    "CDN_ACTION4_MIN_VALID",
    "ContactRecord",
    "PeeringDBLike",
    "SpooferCampaign",
    "SpooferResult",
    "assign_sav_deployment",
    "is_action3_conformant",
    "populate_contacts",
    "run_spoofer_campaign",
    "ISP_ACTION4_MIN_VALID",
    "MANRSRegistry",
    "Participant",
    "Program",
    "RecruitmentConfig",
    "action4_threshold",
    "parse_participants",
    "recruit",
    "serialize_participants",
]
