"""MANRS programs and actions (§2.4), with conformance thresholds.

The paper evaluates Action 1 (route filtering) and Action 4 (route
registration) of the ISP and CDN programs.  The thresholds encoded here
come straight from §8.3/§9.3: ISPs must originate ≥90% IRR/RPKI-Valid
prefixes, CDNs 100%; Action 1 full conformance means propagating zero
MANRS-unconformant customer announcements.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "Program",
    "Action",
    "ACTIONS",
    "action4_threshold",
    "ISP_ACTION4_MIN_VALID",
    "CDN_ACTION4_MIN_VALID",
]


class Program(str, Enum):
    """A MANRS program (membership category)."""

    ISP = "isp"            # "MANRS for Network Operators"
    CDN = "cdn"            # "MANRS for CDN and Cloud Providers"
    IXP = "ixp"
    VENDOR = "vendor"


@dataclass(frozen=True)
class Action:
    """One MANRS action within a program."""

    program: Program
    number: int
    title: str
    mandatory: bool


#: The action catalogue for the two programs the paper studies.
ACTIONS: tuple[Action, ...] = (
    Action(Program.ISP, 1, "Prevent propagation of incorrect routing information", True),
    Action(Program.ISP, 2, "Prevent traffic with spoofed source IP addresses", False),
    Action(Program.ISP, 3, "Maintain up-to-date contact information", True),
    Action(Program.ISP, 4, "Register intended BGP announcements in IRR or RPKI", True),
    Action(Program.CDN, 1, "Implement ingress filtering on peers and customers", True),
    Action(Program.CDN, 2, "Prevent traffic with spoofed source IP addresses", True),
    Action(Program.CDN, 3, "Maintain up-to-date contact information", True),
    Action(Program.CDN, 4, "Register intended BGP advertisements in IRR or RPKI", True),
    Action(Program.CDN, 5, "Encourage MANRS adoption among peers", True),
    Action(Program.CDN, 6, "Provide monitoring tools to peers", False),
)

#: §8.3: "the MANRS ISP program states that its members must originate at
#: least 90% IRR/RPKI Valid prefixes, while the MANRS CDN program requires
#: 100%."
ISP_ACTION4_MIN_VALID = 90.0
CDN_ACTION4_MIN_VALID = 100.0


def action4_threshold(program: Program) -> float:
    """Minimum percentage of conformant originated prefixes for Action 4."""
    if program is Program.ISP:
        return ISP_ACTION4_MIN_VALID
    if program is Program.CDN:
        return CDN_ACTION4_MIN_VALID
    raise ValueError(f"Action 4 threshold undefined for program {program}")
