"""MANRS Action 3: maintain up-to-date contact information.

Action 3 requires members to keep working contact details "in IRR
databases or PeeringDB" (§2.4).  The paper does not measure Action 3 (it
focuses on 1 and 4); this module adds the missing conformance check as an
extension: a PeeringDB-like contact registry, a freshness rule, and a
verdict combining both sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from repro.errors import DatasetError
from repro.irr.database import IRRCollection, IRRDatabase
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: scenario depends on manrs
    from repro.scenario.world import World

__all__ = [
    "ContactRecord",
    "PeeringDBLike",
    "is_action3_conformant",
    "populate_contacts",
]

#: Contacts older than this are considered stale (PeeringDB's own outreach
#: asks for yearly review; we allow 1.5 years).
MAX_CONTACT_AGE_DAYS = 540


@dataclass(frozen=True)
class ContactRecord:
    """One network's contact entry in the PeeringDB-like registry."""

    asn: int
    noc_email: str
    last_updated: date


class PeeringDBLike:
    """A minimal PeeringDB: per-ASN contact records."""

    def __init__(self) -> None:
        self._records: dict[int, ContactRecord] = {}

    def upsert(self, record: ContactRecord) -> None:
        """Create or replace the record for ``record.asn``."""
        self._records[record.asn] = record

    def get(self, asn: int) -> ContactRecord | None:
        """The record for ``asn``, if any."""
        return self._records.get(asn)

    def __len__(self) -> int:
        return len(self._records)

    def serialize(self) -> str:
        """CSV export (asn,email,last_updated)."""
        lines = ["asn,noc_email,last_updated"]
        for asn in sorted(self._records):
            record = self._records[asn]
            lines.append(
                f"{asn},{record.noc_email},{record.last_updated.isoformat()}"
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "PeeringDBLike":
        """Parse the CSV produced by :meth:`serialize`."""
        lines = text.splitlines()
        if not lines or lines[0].strip() != "asn,noc_email,last_updated":
            raise DatasetError("missing contact CSV header")
        registry = cls()
        for line_number, line in enumerate(lines[1:], start=2):
            line = line.strip()
            if not line:
                continue
            fields = line.split(",")
            if len(fields) != 3:
                raise DatasetError(f"bad contact record at line {line_number}")
            try:
                registry.upsert(
                    ContactRecord(
                        asn=int(fields[0]),
                        noc_email=fields[1],
                        last_updated=date.fromisoformat(fields[2]),
                    )
                )
            except ValueError as exc:
                raise DatasetError(
                    f"bad contact record at line {line_number}"
                ) from exc
        return registry


def is_action3_conformant(
    asn: int,
    irr: IRRCollection | IRRDatabase,
    peeringdb: PeeringDBLike,
    as_of: date,
    max_age_days: int = MAX_CONTACT_AGE_DAYS,
) -> bool:
    """Action 3 verdict: a fresh contact in PeeringDB *or* a contactable
    aut-num object in the IRR."""
    record = peeringdb.get(asn)
    if record is not None:
        if (as_of - record.last_updated).days <= max_age_days:
            return True
    aut_num = irr.aut_num(asn)
    if aut_num is None or not aut_num.has_contact:
        return False
    if aut_num.last_modified is None:
        return False
    return (as_of - aut_num.last_modified).days <= max_age_days


def populate_contacts(world: "World", seed: int = 0) -> PeeringDBLike:
    """Generate PeeringDB-like contacts for a world.

    Members keep contacts fresher (joining MANRS forces a contact
    review); the long tail of non-members has older or missing entries.
    """
    rng = np.random.default_rng(seed)
    registry = PeeringDBLike()
    snapshot = world.snapshot_date
    for asn in world.topology.asns:
        member = world.is_member(asn)
        has_record = rng.random() < (0.9 if member else 0.55)
        if not has_record:
            continue
        max_age = 400 if member else 1400
        age_days = int(rng.integers(0, max_age))
        registry.upsert(
            ContactRecord(
                asn=asn,
                noc_email=f"noc@as{asn}.example",
                last_updated=snapshot - timedelta(days=age_days),
            )
        )
    return registry
