"""The MANRS participant registry (the paper's §5.2 datasets).

Organisations join a program on a date and register a *subset* of their
ASNs — MANRS lets members choose which ASNs are subject to the
requirements, which is exactly what Finding 7.0 quantifies.  The registry
answers both "current participant list" (the MANRS ISP/CDN datasets) and
"who was a member when" (the historical MANRS dataset ISOC provided the
authors).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.errors import DatasetError
from repro.manrs.actions import Program

__all__ = ["Participant", "MANRSRegistry", "serialize_participants", "parse_participants"]


@dataclass(frozen=True)
class Participant:
    """One organisation's membership in one MANRS program."""

    org_id: str
    program: Program
    asns: tuple[int, ...]
    joined: date

    def __post_init__(self) -> None:
        if not self.asns:
            raise DatasetError(f"participant {self.org_id} registers no ASNs")


class MANRSRegistry:
    """All participants across programs, with membership-date queries."""

    def __init__(self) -> None:
        self._participants: list[Participant] = []
        self._by_asn: dict[int, list[Participant]] = {}

    def add(self, participant: Participant) -> None:
        """Register a participant (one org may join several programs)."""
        for existing in self._participants:
            if (
                existing.org_id == participant.org_id
                and existing.program == participant.program
            ):
                raise DatasetError(
                    f"{participant.org_id} already in program "
                    f"{participant.program.value}"
                )
        self._participants.append(participant)
        for asn in participant.asns:
            self._by_asn.setdefault(asn, []).append(participant)

    @property
    def participants(self) -> tuple[Participant, ...]:
        """All participants in registration order."""
        return tuple(self._participants)

    def remove(self, org_id: str, program: Program) -> Participant:
        """Deregister one org's membership in one program.

        Returns the removed participant; raises :class:`DatasetError` when
        the (org, program) pair is not registered.  Remaining participants
        keep their registration order, so serialisation stays stable.
        """
        for index, participant in enumerate(self._participants):
            if (
                participant.org_id == org_id
                and participant.program == program
            ):
                del self._participants[index]
                for asn in participant.asns:
                    memberships = self._by_asn.get(asn)
                    if memberships is not None:
                        memberships.remove(participant)
                        if not memberships:
                            del self._by_asn[asn]
                return participant
        raise DatasetError(
            f"{org_id} is not registered in program {program.value}"
        )

    def copy(self) -> "MANRSRegistry":
        """An independent registry with the same participants.

        Participant records are frozen and shared; membership lists are
        rebuilt so ``add``/``remove`` on the copy never touch the original.
        """
        clone = MANRSRegistry()
        for participant in self._participants:
            clone._participants.append(participant)
            for asn in participant.asns:
                clone._by_asn.setdefault(asn, []).append(participant)
        return clone

    def participants_in(self, program: Program) -> list[Participant]:
        """Participants of one program."""
        return [p for p in self._participants if p.program is program]

    def is_member(self, asn: int, as_of: date | None = None) -> bool:
        """True if ``asn`` is registered in any program on ``as_of``."""
        memberships = self._by_asn.get(asn, [])
        if as_of is None:
            return bool(memberships)
        return any(p.joined <= as_of for p in memberships)

    def program_of(self, asn: int, as_of: date | None = None) -> Program | None:
        """The program an ASN is registered under (ISP wins ties)."""
        memberships = [
            p
            for p in self._by_asn.get(asn, [])
            if as_of is None or p.joined <= as_of
        ]
        if not memberships:
            return None
        for program in (Program.ISP, Program.CDN, Program.IXP, Program.VENDOR):
            if any(p.program is program for p in memberships):
                return program
        return memberships[0].program

    def member_asns(
        self, as_of: date | None = None, program: Program | None = None
    ) -> frozenset[int]:
        """All registered ASNs, optionally filtered by date and program."""
        asns: set[int] = set()
        for participant in self._participants:
            if program is not None and participant.program is not program:
                continue
            if as_of is not None and participant.joined > as_of:
                continue
            asns.update(participant.asns)
        return frozenset(asns)

    def member_orgs(self, as_of: date | None = None) -> frozenset[str]:
        """Org ids with at least one membership on ``as_of``."""
        return frozenset(
            p.org_id
            for p in self._participants
            if as_of is None or p.joined <= as_of
        )

    def participant_for_org(
        self, org_id: str, program: Program | None = None
    ) -> Participant | None:
        """The participant record of one org (optionally one program)."""
        for participant in self._participants:
            if participant.org_id == org_id and (
                program is None or participant.program is program
            ):
                return participant
        return None


def serialize_participants(registry: MANRSRegistry) -> str:
    """Render the participant list as CSV (org,program,joined,asns)."""
    lines = ["org_id,program,joined,asns"]
    for participant in registry.participants:
        asns = ";".join(str(asn) for asn in participant.asns)
        lines.append(
            f"{participant.org_id},{participant.program.value},"
            f"{participant.joined.isoformat()},{asns}"
        )
    return "\n".join(lines) + "\n"


def parse_participants(text: str) -> MANRSRegistry:
    """Parse the CSV produced by :func:`serialize_participants`."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != "org_id,program,joined,asns":
        raise DatasetError("missing participant CSV header")
    registry = MANRSRegistry()
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        fields = line.split(",")
        if len(fields) != 4:
            raise DatasetError(f"bad participant record at line {line_number}")
        org_id, program_text, joined_text, asn_text = fields
        try:
            participant = Participant(
                org_id=org_id,
                program=Program(program_text),
                asns=tuple(int(a) for a in asn_text.split(";") if a),
                joined=date.fromisoformat(joined_text),
            )
        except ValueError as exc:
            raise DatasetError(
                f"bad participant record at line {line_number}: {line!r}"
            ) from exc
        registry.add(participant)
    return registry
