"""World builder: ground truth → registries → measurement pipeline.

``build_world`` is the single entry point most examples, tests and
benchmarks use.  It wires together every substrate in dependency order:

1. generate the AS topology and MANRS membership;
2. sample per-AS registration/filtering behaviour (conditioned on size
   class and membership, per the calibration in ``scenario.config``);
3. allocate address space and decide what every AS announces;
4. populate the RPKI (certificates + ROAs, including misconfigurations)
   and the IRR (route objects, including stale ones);
5. run the relying party, assign import policies, propagate all
   announcements to the collector vantage points;
6. derive the IHR datasets and prefix2as mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import date, timedelta
from typing import Iterator

import numpy as np

from repro import config as _runtime_config
from repro import obs
from repro.bgp.announcement import Announcement
from repro.config import RuntimeConfig
from repro.bgp.collector import collect_rib, select_vantage_points
from repro.bgp.policy import RouteClass
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS
from repro.errors import AllocationError
from repro.ihr.pipeline import build_ihr_dataset
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.objects import AsSetObject, AutNumObject, RouteObject, as_set_member
from repro.irr.validation import IRRStatus, validate_irr_many
from repro.manrs.actions import Program
from repro.manrs.recruitment import RecruitmentConfig, recruit
from repro.manrs.registry import MANRSRegistry
from repro.net.prefix import Prefix
from repro.registry.allocation import AddressSpace
from repro.registry.rir import RIR
from repro.rpki.ca import ResourceCertificate, RPKIRepository
from repro.rpki.roa import ROA
from repro.rpki.rov import ROVValidator
from repro.rpki.validator import RelyingParty
from repro.scenario.config import RegistrationBehavior, ScenarioConfig
from repro.scenario.world import ASBehavior, Origination, World, derive_policies
from repro.topology.as2org import As2Org
from repro.topology.classify import SizeClass, classify_all
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.model import ASCategory, ASTopology

__all__ = ["build_world"]

_RADB = "RADB"

#: The whole (rpki_invalid, irr_invalid) space is four frozen value-equal
#: instances; interning them keeps the classify → collect stream from
#: allocating one RouteClass per route.
_ROUTE_CLASSES = {
    (rpki, irr): RouteClass(rpki_invalid=rpki, irr_invalid=irr)
    for rpki in (False, True)
    for irr in (False, True)
}


def build_world(
    scale: float = 1.0,
    seed: int = 0,
    config: ScenarioConfig | None = None,
    topology_config: TopologyConfig | None = None,
    recruitment_config: RecruitmentConfig | None = None,
    jobs: int | None = None,
    shards: int | None = None,
    runtime: RuntimeConfig | None = None,
) -> World:
    """Build a complete world.

    ``scale`` multiplies the topology population counts: 1.0 is the
    paper-shaped default (~10k ASes), small values (0.05–0.2) build
    test-sized worlds in well under a second.

    ``runtime`` installs a :class:`repro.config.RuntimeConfig` for the
    duration of the build, so every knob underneath (kernel mode, mmap,
    shard/worker counts, path-cache sizing) honours the explicit object
    instead of the environment.

    ``jobs`` sets the worker count for the RIB-collection fan-out
    (``None`` defers to the runtime config, whose fallback is the
    ``REPRO_JOBS`` environment variable; the result is identical at any
    worker count).

    ``shards`` (``None`` defers to the runtime config / ``REPRO_SHARDS``,
    else 1) shards the three dominant stages across worker processes —
    RIB collection by vantage-point chunk, ROV/IRR bulk validation by
    prefix range, transit scoring by route-group chunk.  Workers emit
    column shards merged in deterministic shard order, so the built world
    is byte-identical at any shard count (DESIGN §13).
    """
    with _runtime_config.use(runtime), obs.gc_paused(freeze=True):
        return _build_world(
            scale,
            seed,
            config,
            topology_config,
            recruitment_config,
            jobs,
            shards,
        )


def _build_world(
    scale: float,
    seed: int,
    config: ScenarioConfig | None,
    topology_config: TopologyConfig | None,
    recruitment_config: RecruitmentConfig | None,
    jobs: int | None,
    shards: int | None = None,
) -> World:
    config = config or ScenarioConfig()
    topology_config = (topology_config or TopologyConfig()).scaled(scale)
    rng = np.random.default_rng(seed)

    with obs.span("build.topology", scale=scale, seed=seed):
        generated = generate_topology(topology_config, seed=seed)
        topology = generated.topology
        manrs = recruit(topology, recruitment_config, seed=seed + 1)
        as2org = As2Org.from_topology(topology)
        size_of = classify_all(topology)
        obs.add("build.ases", len(topology.asns))
        obs.add("build.participants", len(manrs.participants))

    ctx = _BuildContext(
        config=config,
        rng=rng,
        topology=topology,
        quiescent=generated.quiescent,
        manrs=manrs,
        size_of=size_of,
    )
    with obs.span("build.behaviors"):
        ctx.pick_special_orgs()
        ctx.sample_behaviors()
        ctx.assign_rov_by_rank()
        obs.add(
            "build.rov_deployers",
            sum(1 for b in ctx.behaviors.values() if b.rov),
        )
    with obs.span("build.originations"):
        ctx.allocate_originations()
        obs.add(
            "build.originations",
            sum(len(o) for o in ctx.originations.values()),
        )
    with obs.span("build.rpki"):
        ctx.populate_rpki()
        obs.add("build.roas", len(ctx.rpki_repository.roas))
    with obs.span("build.irr"):
        ctx.populate_irr()
        obs.add("build.irr_routes", ctx.irr.route_count)

    policies = derive_policies(topology, ctx.behaviors)
    with obs.span("build.relying_party"):
        relying_party = RelyingParty(ctx.rpki_repository)
        rov = ROVValidator(relying_party.validate(config.snapshot_date).vrps)

    with obs.span("build.classify"):
        routes = [
            (origination.prefix, asn)
            for asn in sorted(ctx.originations)
            for origination in ctx.originations[asn]
        ]
        # Bulk classification also warms the validators' per-route memos,
        # which the IHR pipeline re-queries for the visible routes below.
        rpki_by_route = rov.validate_many(routes, shards=shards, jobs=jobs)
        irr_by_route = validate_irr_many(ctx.irr, routes, shards=shards, jobs=jobs)
        obs.add("build.routes_classified", len(routes))
        obs.add(
            "build.routes_rpki_invalid",
            sum(1 for r in routes if rpki_by_route[r].is_invalid),
        )
        obs.add(
            "build.routes_irr_invalid",
            sum(
                1
                for r in routes
                if irr_by_route[r] is IRRStatus.INVALID_ORIGIN
            ),
        )

    # Classified announcements stream straight into collection instead of
    # materialising a per-route dataclass list: RouteClass is a frozen
    # value type (four interned instances cover the whole space), and
    # collect_rib groups by (origin, class) on first iteration, so the
    # generator is digest-neutral and the per-route pairs never coexist.
    def announcements() -> Iterator[tuple[Announcement, RouteClass]]:
        for prefix, asn in routes:
            yield (
                Announcement(prefix, asn),
                _ROUTE_CLASSES[
                    (
                        rpki_by_route[(prefix, asn)].is_invalid,
                        irr_by_route[(prefix, asn)] is IRRStatus.INVALID_ORIGIN,
                    )
                ],
            )

    engine = PropagationEngine(topology, policies)
    vantage_points = select_vantage_points(
        topology,
        n_medium=config.n_medium_vantage_points,
        n_small=config.n_small_vantage_points,
        seed=seed + 2,
    )
    with obs.span("build.collect_rib"):
        rib = collect_rib(
            engine, announcements(), vantage_points, jobs=jobs, shards=shards
        )
    prefix2as = Prefix2AS.from_rib(rib)
    with obs.span("build.ihr"):
        ihr = build_ihr_dataset(
            rib, rov, ctx.irr, topology, shards=shards, jobs=jobs
        )

    return World(
        config=config,
        seed=seed,
        topology=topology,
        quiescent=generated.quiescent,
        as2org=as2org,
        size_of=size_of,
        manrs=manrs,
        address_space=ctx.address_space,
        originations={a: tuple(o) for a, o in ctx.originations.items()},
        behaviors=ctx.behaviors,
        policies=policies,
        rpki_repository=ctx.rpki_repository,
        irr=ctx.irr,
        engine=engine,
        vantage_points=vantage_points,
        rov=rov,
        rib=rib,
        ihr=ihr,
        prefix2as=prefix2as,
        scale=scale,
    )


@dataclass
class _BuildContext:
    """Mutable state threaded through the build steps."""

    config: ScenarioConfig
    rng: np.random.Generator
    topology: ASTopology
    quiescent: frozenset[int]
    manrs: MANRSRegistry
    size_of: dict[int, SizeClass]

    def __post_init__(self) -> None:
        self.address_space = AddressSpace()
        self.originations: dict[int, list[Origination]] = {}
        self.behaviors: dict[int, ASBehavior] = {}
        self.rpki_repository = RPKIRepository()
        self.irr = IRRCollection()
        self.org_certs: dict[str, ResourceCertificate] = {}
        #: ASNs of the CDN flagships (Table 1's CDN1..CDN3 analogues).
        self.flagship_cdns: tuple[int, ...] = ()
        #: ASN of the APNIC flagship transit (China Telecom analogue).
        self.flagship_transit: int | None = None
        #: Registered member ASNs of the "ISP1" analogue: a big multi-AS
        #: member whose neglected sibling ASes stay unconformant (§8.3).
        self.neglected_siblings: frozenset[int] = frozenset()
        #: Prefixes per AS that got a correct ROA (filled by populate_rpki,
        #: consumed by populate_irr to couple the two registrations).
        self.roa_prefixes: dict[int, set[Prefix]] = {}
        #: The primary AS of the ISP1 analogue (kept off ROV so its
        #: siblings' RPKI-Invalid announcements are observable, as the
        #: paper's Table 1 shows for the real ISP1).
        self.isp1_primary: int | None = None

    # -- step 1: special organisations -------------------------------------

    def pick_special_orgs(self) -> None:
        """Designate flagship CDNs, the APNIC flagship, and ISP1."""
        snapshot = self.config.snapshot_date
        cdn_members = [
            p
            for p in self.manrs.participants_in(Program.CDN)
            if p.joined <= snapshot
        ]
        flagships: list[int] = []
        for participant in sorted(cdn_members, key=lambda p: p.org_id)[:3]:
            announcing = [a for a in participant.asns if a not in self.quiescent]
            if announcing:
                flagships.append(min(announcing))
        self.flagship_cdns = tuple(flagships)

        transits = [
            asn
            for asn in self.topology.asns
            if self.topology.get_as(asn).category is ASCategory.LARGE_TRANSIT
            and self.topology.get_as(asn).rir is RIR.APNIC
        ]
        if transits:
            self.flagship_transit = max(
                transits, key=lambda a: len(self.topology.customer_cone(a))
            )

        isp_members = [
            p
            for p in self.manrs.participants_in(Program.ISP)
            if p.joined <= snapshot and len(p.asns) >= 4
        ]
        if isp_members:
            def announcing_siblings(participant):
                primary = self.topology.get_org(participant.org_id).asns[0]
                return [
                    asn
                    for asn in participant.asns
                    if asn != primary and asn not in self.quiescent
                ]

            isp1 = max(isp_members, key=lambda p: len(announcing_siblings(p)))
            self.neglected_siblings = frozenset(announcing_siblings(isp1))
            self.isp1_primary = self.topology.get_org(isp1.org_id).asns[0]

    # -- step 2: behaviours --------------------------------------------------

    def sample_behaviors(self) -> None:
        snapshot = self.config.snapshot_date
        behavior_config = self.config.behavior
        # Adoption-year cdfs, one per membership arm; drawing through
        # cdf.searchsorted(rng.random()) consumes the same bit-stream
        # rng.choice(years, p=...) would.
        adoption_draws: dict[bool, tuple[np.ndarray, np.ndarray]] = {}
        for member_arm, adoption_weights in (
            (True, self.config.member_adoption_weights),
            (False, self.config.nonmember_adoption_weights),
        ):
            weights = np.array(adoption_weights, dtype=float)
            years = np.arange(
                self.config.first_year,
                self.config.first_year + len(weights),
            )
            cdf = (weights / weights.sum()).cumsum()
            cdf /= cdf[-1]
            adoption_draws[member_arm] = (years, cdf)
        for asn in self.topology.asns:
            member = self.manrs.is_member(asn, snapshot)
            program = self.manrs.program_of(asn, snapshot)
            size = self.size_of[asn]
            is_cdn_member = member and program is Program.CDN
            if is_cdn_member:
                registration = behavior_config.cdn_member_registration
            else:
                registration = behavior_config.registration[(size, member)]
            filtering = behavior_config.filtering[(size, member)]

            rpki_fraction = self._sample_fraction(
                registration.rpki_all,
                registration.rpki_none,
                registration.rpki_partial_range,
            )
            irr_fraction = self._sample_fraction(
                registration.irr_all,
                registration.irr_none,
                registration.irr_partial_range,
            )
            misconfig_count = 0
            if self.rng.random() < registration.rpki_misconfig:
                misconfig_count = 1 + int(
                    self.rng.poisson(max(registration.rpki_misconfig_mean - 1, 0))
                )
            stale_fraction = 0.0
            if self.rng.random() < registration.irr_stale:
                stale_fraction = min(
                    1.0,
                    registration.irr_stale_fraction
                    * (0.5 + self.rng.random()),
                )
            if member and rpki_fraction == 0.0:
                # Members relying on the IRR alone tend to keep it
                # accurate — staleness concentrates in RPKI adopters
                # whose IRR records rot (§8.2's explanation).
                stale_fraction *= 0.25
            years, adoption_cdf = adoption_draws[member]
            adoption_year = int(
                years[
                    int(
                        adoption_cdf.searchsorted(
                            self.rng.random(), side="right"
                        )
                    )
                ]
            )
            if is_cdn_member:
                adoption_year = max(adoption_year, 2020)

            filters = self.rng.random() < filtering.filter_customers
            low, high = filtering.filter_coverage
            coverage = (
                float(low + (high - low) * self.rng.random()) if filters else 0.0
            )
            behavior = ASBehavior(
                member=member,
                program=program,
                rpki_fraction=rpki_fraction,
                rpki_misconfig_count=misconfig_count,
                irr_fraction=irr_fraction,
                irr_stale_fraction=stale_fraction,
                rov=self.rng.random() < filtering.rov,
                filter_customers=filters,
                filter_coverage=coverage,
                rpki_adoption_year=adoption_year,
            )
            self.behaviors[asn] = self._apply_overrides(asn, behavior)

    def assign_rov_by_rank(self) -> None:
        """Re-assign ROV deployment among large ASes by hegemony rank.

        Measurement studies ([56], [7]) found ROV concentrated in the very
        largest MANRS transit providers; giving ROV to the top-cone MANRS
        larges (rather than a uniform sample) is what produces Figure 9's
        separation — RPKI Invalid routes must detour around exactly the
        networks most likely to be on any path.
        """
        filtering = self.config.behavior.filtering
        larges = [
            asn for asn, size in self.size_of.items() if size is SizeClass.LARGE
        ]
        member_larges = sorted(
            (a for a in larges if self.behaviors[a].member),
            key=lambda a: -len(self.topology.customer_cone(a)),
        )
        other_larges = [a for a in larges if not self.behaviors[a].member]
        self.rng.shuffle(other_larges)
        member_rate = filtering[(SizeClass.LARGE, True)].rov
        other_rate = filtering[(SizeClass.LARGE, False)].rov
        rov_set = set(member_larges[: round(member_rate * len(member_larges))])
        rov_set.update(other_larges[: round(other_rate * len(other_larges))])
        if self.isp1_primary is not None:
            rov_set.discard(self.isp1_primary)
        for asn in larges:
            behavior = self.behaviors[asn]
            wanted = asn in rov_set
            if behavior.rov != wanted:
                self.behaviors[asn] = replace(behavior, rov=wanted)
        if (
            self.isp1_primary is not None
            and self.behaviors[self.isp1_primary].rov
        ):
            self.behaviors[self.isp1_primary] = replace(
                self.behaviors[self.isp1_primary], rov=False
            )

    def _apply_overrides(self, asn: int, behavior: ASBehavior) -> ASBehavior:
        """Force the case-study behaviours onto the designated ASes."""
        if asn in self.flagship_cdns:
            # Table 1 CDNs: overwhelmingly conformant with a small IRR
            # leak (stale sibling-origin objects, RPKI NotFound).
            return replace(
                behavior,
                rpki_fraction=0.7,
                rpki_misconfig_count=0,
                irr_fraction=1.0,
                irr_stale_fraction=0.012,
                rpki_adoption_year=max(behavior.rpki_adoption_year, 2020),
            )
        if asn == self.flagship_transit:
            # The China Telecom analogue: registers most of its large
            # address space in the RPKI when it joins MANRS in 2020 —
            # this is what moves Figure 6's MANRS curve that year.
            return replace(
                behavior,
                rpki_fraction=max(behavior.rpki_fraction, 0.8),
                rpki_adoption_year=2020,
            )
        if asn in self.neglected_siblings:
            # ISP1's neglected member stubs: registered long ago, never
            # maintained — all their prefixes end up unconformant.  The
            # lowest-numbered two also carry a forgotten ROA pointing at
            # the old origin, giving Table 1 its RPKI-Invalid rows.
            misconfigs = 1 if asn in sorted(self.neglected_siblings)[:2] else 0
            return replace(
                behavior,
                rpki_fraction=0.0,
                rpki_misconfig_count=misconfigs,
                irr_fraction=1.0,
                irr_stale_fraction=1.0,
            )
        return behavior

    def _sample_fraction(
        self,
        p_all: float,
        p_none: float,
        partial_range: tuple[float, float],
    ) -> float:
        roll = self.rng.random()
        if roll < p_all:
            return 1.0
        if roll < p_all + p_none:
            return 0.0
        low, high = partial_range
        return float(low + (high - low) * self.rng.random())

    # -- step 3: address space and originations ------------------------------

    def allocate_originations(self) -> None:
        origination_config = self.config.origination
        allocated_on = date(2012, 1, 1)
        # Per-category prefix-length cdf, built once.  Drawing through
        # cdf.searchsorted(rng.random()) consumes the identical bit-stream
        # ``rng.choice(lengths, p=...)`` does (choice normalises p to a
        # cdf and inverts one uniform double through it), at a fraction
        # of choice's per-call validation overhead.
        length_cdfs: dict[str, np.ndarray] = {}
        for asn in self.topology.asns:
            record = self.topology.get_as(asn)
            if asn in self.quiescent:
                self.originations[asn] = []
                continue
            key = record.category.value
            if asn == self.flagship_transit:
                key = "flagship_transit"
            elif asn in self.flagship_cdns:
                key = "flagship_cdn"
            low, high = origination_config.count_range.get(key, (1, 3))
            count = int(self.rng.integers(low, high + 1))
            lengths, weights = origination_config.prefix_lengths.get(
                key, ((22, 23, 24), (0.3, 0.3, 0.4))
            )
            length_cdf = length_cdfs.get(key)
            if length_cdf is None:
                weight_array = np.array(weights, dtype=float)
                weight_array /= weight_array.sum()
                length_cdf = weight_array.cumsum()
                length_cdf /= length_cdf[-1]
                length_cdfs[key] = length_cdf
            originations: list[Origination] = []
            org_id = record.org_id
            # Legacy space predates the RIR system and sits almost
            # entirely with old, large organisations; small/stub networks
            # hold recent (certifiable) allocations.  Keeping legacy out
            # of the edge preserves Figure 5a's clean bimodality.
            legacy_scale = (
                1.0
                if record.category
                in (
                    ASCategory.MEDIUM_ISP,
                    ASCategory.LARGE_TRANSIT,
                    ASCategory.CDN,
                )
                else 0.1
            )
            for _ in range(count):
                length = lengths[
                    int(length_cdf.searchsorted(self.rng.random(), side="right"))
                ]
                legacy = (
                    self.rng.random()
                    < legacy_scale
                    * origination_config.legacy_probability.get(record.rir.value, 0.0)
                )
                block = self._allocate_block(
                    record.rir, length, org_id, allocated_on, legacy
                )
                if block is None:
                    continue
                deaggregated = (
                    block.prefix.length < block.prefix.bits
                    and self.rng.random()
                    < origination_config.deaggregation_probability
                )
                announced = (
                    next(block.prefix.subnets()) if deaggregated else block.prefix
                )
                originations.append(
                    Origination(
                        asn=asn,
                        prefix=announced,
                        block=block.prefix,
                        legacy=legacy,
                        deaggregated=deaggregated,
                    )
                )
            if self.rng.random() < origination_config.v6_probability.get(key, 0.0):
                low6, high6 = origination_config.v6_count_range
                for _ in range(int(self.rng.integers(low6, high6 + 1))):
                    length = int(self.rng.choice(origination_config.v6_lengths))
                    try:
                        block = self.address_space.allocate(
                            record.rir, length, org_id, allocated_on, version=6
                        )
                    except AllocationError:
                        break
                    originations.append(
                        Origination(
                            asn=asn,
                            prefix=block.prefix,
                            block=block.prefix,
                            legacy=False,
                            deaggregated=False,
                        )
                    )
            self.originations[asn] = originations

    def _allocate_block(
        self,
        rir: RIR,
        length: int,
        org_id: str,
        allocated_on: date,
        legacy: bool,
    ):
        """Allocate with graceful fallback to longer prefixes when a pool
        runs dry."""
        for attempt_length in range(length, min(length + 6, 25)):
            try:
                return self.address_space.allocate(
                    rir, attempt_length, org_id, allocated_on, legacy=legacy
                )
            except AllocationError:
                continue
        return None

    # -- step 4: RPKI ----------------------------------------------------------

    def populate_rpki(self) -> None:
        not_before = date(2011, 1, 1)
        not_after = date(2032, 1, 1)
        for rir in RIR:
            self.rpki_repository.add_trust_anchor(rir, not_before, not_after)
        trust_anchors = {
            rir: self.rpki_repository.certificates[f"TA-{rir.value}"] for rir in RIR
        }
        for asn in sorted(self.originations):
            originations = self.originations[asn]
            if not originations:
                continue
            behavior = self.behaviors[asn]
            certifiable = [o for o in originations if not o.legacy]
            if not certifiable or behavior.rpki_fraction == 0.0:
                if behavior.rpki_misconfig_count == 0:
                    continue
            record = self.topology.get_as(asn)
            certificate = self._org_certificate(
                record.org_id, record.rir, trust_anchors[record.rir]
            )
            roa_start = date(behavior.rpki_adoption_year, 1, 1) + timedelta(
                days=int(self.rng.integers(0, 330))
            )
            n_registered = int(round(behavior.rpki_fraction * len(certifiable)))
            order = list(self.rng.permutation(len(certifiable)))
            registered = [certifiable[i] for i in order[:n_registered]]
            victims = registered[: behavior.rpki_misconfig_count]
            if behavior.rpki_misconfig_count and not victims:
                victims = certifiable[: behavior.rpki_misconfig_count]
            victim_set = {id(v) for v in victims}
            covered = self.roa_prefixes.setdefault(asn, set())
            for origination in registered:
                if id(origination) in victim_set:
                    continue
                self.rpki_repository.add_roa(
                    ROA(
                        prefix=origination.block,
                        asn=asn,
                        max_length=origination.prefix.length,
                        certificate_id=certificate.certificate_id,
                        not_before=roa_start,
                        not_after=not_after,
                    )
                )
                covered.add(origination.prefix)
            for origination in victims:
                self.rpki_repository.add_roa(
                    self._misconfigured_roa(
                        asn, origination, certificate, roa_start, not_after
                    )
                )

    def _org_certificate(
        self, org_id: str, rir: RIR, trust_anchor: ResourceCertificate
    ) -> ResourceCertificate:
        certificate = self.org_certs.get(org_id)
        if certificate is None:
            # Legacy space cannot be certified (no RIR service agreement),
            # which is what caps RPKI saturation below 100% (§8.6).
            resources = tuple(
                delegation.prefix
                for delegation in self.address_space.delegations_for(org_id)
                if not delegation.legacy
            )
            certificate = self.rpki_repository.issue_certificate(
                issuer=trust_anchor,
                subject=org_id,
                resources=resources,
                not_before=date(2012, 1, 1),
                not_after=date(2032, 1, 1),
            )
            self.org_certs[org_id] = certificate
        return certificate

    def _misconfigured_roa(
        self,
        asn: int,
        origination: Origination,
        certificate: ResourceCertificate,
        roa_start: date,
        not_after: date,
    ) -> ROA:
        """A ROA that makes the announcement RPKI Invalid."""
        roll = self.rng.random()
        if roll < 0.15:
            wrong_asn = 0  # AS0: "do not announce" (the §8.1 case study)
        else:
            wrong_asn = self._wrong_origin(asn)
        if (
            roll >= 0.55
            and origination.prefix.length > origination.block.length
        ):
            # maxLength too short for the announced more-specific.
            return ROA(
                prefix=origination.block,
                asn=asn,
                max_length=origination.prefix.length - 1,
                certificate_id=certificate.certificate_id,
                not_before=roa_start,
                not_after=not_after,
            )
        return ROA(
            prefix=origination.block,
            asn=wrong_asn,
            max_length=origination.prefix.length,
            certificate_id=certificate.certificate_id,
            not_before=roa_start,
            not_after=not_after,
        )

    def _wrong_origin(self, asn: int) -> int:
        """Pick whom a stale record points at (Table 1 attribution mix)."""
        behavior_config = self.config.behavior
        roll = self.rng.random()
        siblings = sorted(self.topology.siblings(asn))
        if roll < behavior_config.wrong_origin_sibling and siblings:
            return siblings[int(self.rng.integers(0, len(siblings)))]
        neighbors = sorted(
            self.topology.providers_of(asn) | self.topology.customers_of(asn)
        )
        if (
            roll < behavior_config.wrong_origin_sibling + behavior_config.wrong_origin_neighbor
            and neighbors
        ):
            return neighbors[int(self.rng.integers(0, len(neighbors)))]
        candidates = self.topology.asns
        wrong = asn
        while wrong == asn:
            wrong = candidates[int(self.rng.integers(0, len(candidates)))]
        return wrong

    # -- step 5: IRR -------------------------------------------------------------

    def populate_irr(self) -> None:
        for rir in RIR:
            self.irr.add_database(IRRDatabase(rir.value, authoritative_for=rir))
        self.irr.add_database(IRRDatabase(_RADB))
        created = date(2016, 1, 1)
        for asn in sorted(self.originations):
            originations = self.originations[asn]
            record = self.topology.get_as(asn)
            behavior = self.behaviors[asn]
            # aut-num objects: contact info for MANRS Action 3.
            if self.rng.random() < 0.9:
                database = self.irr.database(record.rir.value)
                # Contact freshness varies: members touch their objects
                # when joining; the long tail never updates after creation
                # (feeds the Action 3 extension check).
                age_span = (self.config.snapshot_date - created).days
                modified = created + timedelta(
                    days=int(self.rng.integers(0, age_span))
                )
                database.add_aut_num(
                    AutNumObject(
                        asn=asn,
                        as_name=f"AS-NAME-{asn}",
                        source=record.rir.value,
                        admin_c=f"ADM-{asn}",
                        tech_c=f"TEC-{asn}",
                        last_modified=modified,
                    )
                )
            if not originations or behavior.irr_fraction == 0.0:
                continue
            n_registered = max(
                1, int(round(behavior.irr_fraction * len(originations)))
            ) if behavior.irr_fraction > 0 else 0
            order = list(self.rng.permutation(len(originations)))
            if behavior.member:
                # Members register the union: IRR objects go to prefixes
                # missing from the RPKI first, so partial coverage in both
                # registries still meets the Action 4 bar.
                roa_covered = self.roa_prefixes.get(asn, set())
                order.sort(
                    key=lambda i: originations[i].prefix in roa_covered
                )
            registered = [originations[i] for i in order[:n_registered]]
            n_stale = int(round(behavior.irr_stale_fraction * len(registered)))
            stale_order = list(range(len(registered)))
            if asn in self.flagship_cdns:
                # The flagship leak is precisely the prefixes covered by
                # neither registry (Table 1: IRR Invalid & RPKI NotFound).
                roa_covered = self.roa_prefixes.get(asn, set())
                stale_order.sort(
                    key=lambda i: registered[i].prefix in roa_covered
                )
            elif behavior.member:
                # For other members, rot concentrates on RPKI-covered
                # prefixes (§8.2: RPKI adopters let the IRR decay) — it
                # does not cost them conformance.
                roa_covered = self.roa_prefixes.get(asn, set())
                stale_order.sort(
                    key=lambda i: registered[i].prefix not in roa_covered
                )
            stale_set = set(stale_order[:n_stale])
            for index, origination in enumerate(registered):
                stale = index in stale_set
                origin = self._wrong_origin(asn) if stale else asn
                source = (
                    record.rir.value if self.rng.random() < 0.55 else _RADB
                )
                self.irr.database(source).add_route(
                    RouteObject(
                        prefix=origination.block,
                        origin=origin,
                        source=source,
                        mnt_by=f"MAINT-{record.org_id}",
                        descr=f"route of AS{asn}",
                        created=created,
                        last_modified=created if stale else self.config.snapshot_date,
                    )
                )
        self._populate_as_sets()

    def _populate_as_sets(self) -> None:
        """as-sets for transit networks listing their customer ASNs."""
        radb = self.irr.database(_RADB)
        for asn in self.topology.asns:
            customers = self.topology.customers_of(asn)
            if not customers or self.rng.random() > 0.5:
                continue
            members = [as_set_member(c) for c in sorted(customers)]
            radb.add_as_set(
                AsSetObject(
                    name=f"AS-{asn}-CUSTOMERS",
                    members=tuple(members),
                    source=_RADB,
                )
            )
