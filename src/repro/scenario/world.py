"""The World: one fully built synthetic Internet plus its measurements.

A :class:`World` bundles the ground truth (topology, behaviours,
registries, policies) together with everything the measurement pipeline
derived from it (VRPs, collector RIB, IHR datasets, prefix2as).  Tests and
experiments read both sides: ground truth to know what *should* be
measured, derived data to check what *was* measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.bgp.collector import RibSnapshot
from repro.bgp.policy import ASPolicy
from repro.bgp.propagation import PropagationEngine
from repro.bgp.table import Prefix2AS
from repro.ihr.records import IHRDataset
from repro.irr.database import IRRCollection
from repro.manrs.actions import Program
from repro.manrs.registry import MANRSRegistry
from repro.net.prefix import Prefix
from repro.registry.allocation import AddressSpace
from repro.rpki.ca import RPKIRepository
from repro.rpki.rov import ROVValidator
from repro.scenario.config import ScenarioConfig
from repro.topology.as2org import As2Org
from repro.topology.classify import SizeClass
from repro.topology.model import ASTopology

__all__ = ["Origination", "ASBehavior", "World", "derive_policies"]


def derive_policies(
    topology: ASTopology, behaviors: dict[int, "ASBehavior"]
) -> dict[int, ASPolicy]:
    """Import policies implied by the sampled behaviours.

    Policies are a pure function of (topology, behaviours); the builder
    and the checkpoint loader both call this, which is what keeps a
    warm-started world's filtering identical to a cold build's.
    """
    return {
        asn: ASPolicy(
            rov=behavior.rov,
            filter_customers_rpki=behavior.filter_customers,
            filter_customers_irr=behavior.filter_customers,
            customer_filter_coverage=behavior.filter_coverage,
            # Internal (sibling) sessions bypass the Action 1 filters:
            # nobody prefix-filters their own organisation.
            unfiltered_customers=frozenset(topology.siblings(asn)),
        )
        for asn, behavior in behaviors.items()
    }


@dataclass(frozen=True)
class Origination:
    """One announced prefix and the delegated block it came from."""

    asn: int
    prefix: Prefix
    block: Prefix
    legacy: bool
    deaggregated: bool


@dataclass(frozen=True)
class ASBehavior:
    """Ground-truth behaviour sampled for one AS."""

    member: bool
    program: Program | None
    #: Fraction of this AS's prefixes registered in the RPKI (0, 1, or
    #: something in between — the three modes of Figure 5a).
    rpki_fraction: float
    #: Number of prefixes deliberately given a broken ROA.
    rpki_misconfig_count: int
    irr_fraction: float
    #: Fraction of this AS's IRR objects registered with a stale origin.
    irr_stale_fraction: float
    rov: bool
    filter_customers: bool
    #: Fraction of customer sessions covered when filtering is deployed.
    filter_coverage: float
    #: Year this AS created its first ROAs (meaningless if rpki_fraction=0).
    rpki_adoption_year: int


@dataclass
class World:
    """A built scenario: ground truth plus the measurement pipeline output."""

    config: ScenarioConfig
    seed: int
    # ground truth
    topology: ASTopology
    quiescent: frozenset[int]
    as2org: As2Org
    size_of: dict[int, SizeClass]
    manrs: MANRSRegistry
    address_space: AddressSpace
    originations: dict[int, tuple[Origination, ...]]
    behaviors: dict[int, ASBehavior]
    policies: dict[int, ASPolicy]
    rpki_repository: RPKIRepository
    irr: IRRCollection
    # measurement pipeline output (at config.snapshot_date)
    engine: PropagationEngine
    vantage_points: tuple[int, ...]
    rov: ROVValidator
    rib: RibSnapshot
    ihr: IHRDataset
    prefix2as: Prefix2AS
    #: The topology scale multiplier this world was built at.  Part of the
    #: checkpoint identity (config, scale, seed) — the config alone does
    #: not capture the population counts.
    scale: float = 1.0

    @property
    def snapshot_date(self) -> date:
        """The analysis snapshot date."""
        return self.config.snapshot_date

    def members(self, as_of: date | None = None) -> frozenset[int]:
        """MANRS member ASNs (defaults to the snapshot date)."""
        return self.manrs.member_asns(as_of=as_of or self.snapshot_date)

    def is_member(self, asn: int) -> bool:
        """Membership at the snapshot date."""
        return self.manrs.is_member(asn, self.snapshot_date)

    def all_announcements(self) -> int:
        """Total announced prefixes across all ASes."""
        return sum(len(origs) for origs in self.originations.values())
