"""Historical timeline: annual snapshots 2015–2022 and weekly churn.

The paper's longitudinal analyses need two time axes:

* **annual** (Figures 2, 4a, 4b, 6): membership grows along the join
  dates from the recruitment model, and the RPKI fills in along each AS's
  adoption year (ROA ``not_before`` dates), while the routing table is
  held at its final shape — exactly the approximation the paper makes
  when it overlays historical membership on contemporary prefix2as
  snapshots;
* **weekly** (§8.5, Finding 8.7): twelve weekly snapshots around the
  analysis date with light registration churn, producing the stable /
  flapping conformance split.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datasets.checkpoint import CheckpointStore

from repro import obs
from repro.core.conformance import origination_stats
from repro.delta.cover import vrp_delta
from repro.core.impact import rpki_saturation
from repro.core.participation import members_by_rir, routed_space_share_by_rir
from repro.manrs.actions import Program, action4_threshold
from repro.registry.rir import RIR
from repro.rpki.rov import ROVValidator
from repro.rpki.validator import IncrementalRelyingParty
from repro.scenario.world import World

__all__ = [
    "GrowthPoint",
    "PrefixChurn",
    "SaturationPoint",
    "Timeline",
    "WeeklyConformance",
    "flagship_prefix_churn",
    "weekly_member_conformance",
]


@dataclass(frozen=True)
class GrowthPoint:
    """MANRS size at the end of one year (Figure 2)."""

    year: int
    organizations: int
    asns: int


@dataclass(frozen=True)
class SaturationPoint:
    """RPKI saturation split at the end of one year (Figure 6)."""

    year: int
    manrs_saturation: float
    other_saturation: float


class Timeline:
    """Annual series derived from one built world.

    When a checkpoint ``store`` is supplied, per-year VRP snapshots are
    persisted next to the world's entry (``years/vrps-<year>.csv`` with a
    digest side-car) and restored instead of re-validated on later runs.
    Restoration is safe-by-default like every checkpoint load: a failed
    digest discards the snapshot and re-validates — but the failure is
    counted (``timeline.rov_years_corrupt``) rather than folded silently
    into the never-saved case, so tampering is observable.

    Year-over-year validation reuses the delta layer's machinery: each
    fresh year's validator is seeded from the nearest already-computed
    year via :func:`~repro.delta.cover.vrp_delta` +
    :meth:`~repro.rpki.rov.ROVValidator.seed_from`, so the saturation
    sweep re-classifies only prefixes whose covering VRPs actually
    changed across the year boundary.
    """

    def __init__(self, world: World, store: "CheckpointStore | None" = None):
        self._world = world
        self._rov_cache: dict[int, ROVValidator] = {}
        self._store = store
        self._store_key: str | None = None
        if store is not None:
            from repro.datasets.checkpoint import checkpoint_key

            self._store_key = checkpoint_key(
                world.config, world.scale, world.seed
            )
        # One incremental relying party serves every year: per-ROA
        # validity windows are precomputed once, and each additional
        # year-end costs date comparisons only (objects whose windows the
        # year boundary does not cross keep their verdict for free).
        self._relying_party = IncrementalRelyingParty(world.rpki_repository)
        config = world.config
        self.years = list(
            range(config.first_year, config.snapshot_date.year + 1)
        )

    def _nearest_cached(self, year: int) -> ROVValidator | None:
        """The closest already-built year validator, for delta seeding.

        Adjacent years share almost their whole VRP set (only objects
        whose validity window the boundary crosses differ), so verdicts
        carried from the nearest neighbour leave very little for the new
        year's validator to classify from scratch.
        """
        candidates = [other for other in self._rov_cache if other != year]
        if not candidates:
            return None
        return self._rov_cache[min(candidates, key=lambda y: abs(y - year))]

    def _year_end(self, year: int) -> date:
        if year == self._world.config.snapshot_date.year:
            return self._world.config.snapshot_date
        return date(year, 12, 31)

    def _restore_year(self, year: int) -> ROVValidator | None:
        """A validator from the stored year snapshot, if one verifies.

        ROV classification is order-independent over the VRP set, so
        restoring the (sorted) CSV yields verdicts identical to a fresh
        validation — asserted by the checkpoint tests.
        """
        if self._store is None or self._store_key is None:
            return None
        from repro.datasets.checkpoint import CheckpointError

        try:
            vrps = self._store.load_year_vrps(
                self._store_key, year, strict=True
            )
        except CheckpointError:
            # The snapshot existed but failed its digest (or parse):
            # fall through to re-validation, but leave a distinct trace —
            # a corrupt store is worth noticing, an absent one is not.
            obs.add("timeline.rov_years_corrupt")
            return None
        if vrps is None:
            return None
        obs.add("timeline.rov_years_restored")
        return ROVValidator(vrps)

    def rov_at(self, year: int) -> ROVValidator:
        """ROV validator over the VRPs published by the end of ``year``."""
        validator = self._rov_cache.get(year)
        if validator is None:
            validator = self._restore_year(year)
            if validator is not None:
                self._rov_cache[year] = validator
                return validator
            with obs.span("timeline.rov_at", year=year), obs.gc_paused():
                report = self._relying_party.validate(self._year_end(year))
                validator = ROVValidator(report.vrps)
                previous = self._nearest_cached(year)
                if previous is not None:
                    changed = vrp_delta(
                        previous.all_vrps(), report.vrps
                    )
                    carried = validator.seed_from(previous, changed)
                    obs.add("timeline.rov_verdicts_carried", carried)
            obs.add("timeline.rov_years_validated")
            self._rov_cache[year] = validator
            if self._store is not None and self._store_key is not None:
                self._store.save_year_vrps(
                    self._store_key, year, report.vrps, self._year_end(year)
                )
        else:
            obs.add("timeline.rov_cache_hits")
        return validator

    def to_archive(self) -> "VRPArchive":
        """Materialise the annual VRP sets as a dated archive.

        This is the RIPE-style archive (§5.4) a downstream user would
        store on disk: one snapshot per year-end, reconstructable into a
        validator via :class:`~repro.rpki.rov.ROVValidator`.
        """
        from repro.rpki.archive import VRPArchive

        archive = VRPArchive()
        for year in self.years:
            archive.add_snapshot(
                self._year_end(year), list(self.rov_at(year).all_vrps())
            )
        return archive

    def growth(self) -> list[GrowthPoint]:
        """Figure 2: MANRS organisations and ASes per year."""
        points = []
        for year in self.years:
            as_of = self._year_end(year)
            points.append(
                GrowthPoint(
                    year=year,
                    organizations=len(self._world.manrs.member_orgs(as_of=as_of)),
                    asns=len(self._world.manrs.member_asns(as_of=as_of)),
                )
            )
        return points

    def members_by_rir_series(self) -> dict[RIR, list[tuple[int, int]]]:
        """Figure 4a: member AS counts per RIR per year."""
        series: dict[RIR, list[tuple[int, int]]] = {rir: [] for rir in RIR}
        for year in self.years:
            counts = members_by_rir(
                self._world.topology, self._world.manrs, self._year_end(year)
            )
            for rir, count in counts.items():
                series[rir].append((year, count))
        return series

    def routed_share_series(self) -> dict[RIR, list[tuple[int, float]]]:
        """Figure 4b: % of routed IPv4 space announced by members, per RIR."""
        series: dict[RIR, list[tuple[int, float]]] = {rir: [] for rir in RIR}
        for year in self.years:
            shares = routed_space_share_by_rir(
                self._world.topology,
                self._world.manrs,
                self._world.prefix2as,
                self._year_end(year),
            )
            for rir, share in shares.items():
                series[rir].append((year, share))
        return series

    def saturation_series(self) -> list[SaturationPoint]:
        """Figure 6: RPKI saturation of member vs non-member space."""
        points = []
        # The per-year sweeps churn through large transient prefix lists;
        # none of it is cyclic, so collection is paused for the batch.
        with obs.span("timeline.saturation_series"), obs.gc_paused():
            for year in self.years:
                members = self._world.manrs.member_asns(
                    as_of=self._year_end(year)
                )
                manrs_report, other_report = rpki_saturation(
                    self._world.prefix2as, self.rov_at(year), members
                )
                points.append(
                    SaturationPoint(
                        year=year,
                        manrs_saturation=manrs_report.saturation,
                        other_saturation=other_report.saturation,
                    )
                )
        return points


@dataclass(frozen=True)
class PrefixChurn:
    """Prefix-level churn of one network over the weekly window (§8.5).

    The paper's CDN1 stopped announcing 80 prefixes, announced 141 new
    ones, and kept 3,822 stable-and-conformant over its three months.
    """

    asn: int
    stable: int
    withdrawn: int
    added: int
    #: Of the stable prefixes, how many changed conformance status.
    status_changes: int


def flagship_prefix_churn(
    world: World,
    n_weeks: int = 12,
    withdraw_rate: float = 0.02,
    add_rate: float = 0.035,
    seed: int = 0,
) -> dict[int, PrefixChurn]:
    """Prefix-level churn for the biggest CDN originators.

    Rates are per window (not per week): a big content network grows its
    announcement set a few percent per quarter while retiring a smaller
    share, and almost no active prefix changes conformance status —
    matching the per-prefix stability §8.5 reports.
    """
    rng = np.random.default_rng(seed)
    members = world.manrs.member_asns(
        as_of=world.snapshot_date, program=Program.CDN
    )
    counts = {
        asn: len(world.originations.get(asn, ()))
        for asn in members
        if world.originations.get(asn)
    }
    flagships = sorted(counts, key=counts.get, reverse=True)[:3]
    churn: dict[int, PrefixChurn] = {}
    for asn in flagships:
        total = counts[asn]
        withdrawn = int(rng.binomial(total, withdraw_rate))
        added = int(rng.binomial(total, add_rate))
        stable = total - withdrawn
        # Conformance status flips are rare: registrations barely change
        # over three months (the paper saw 0–2 per CDN).
        status_changes = int(rng.binomial(stable, 0.002))
        churn[asn] = PrefixChurn(
            asn=asn,
            stable=stable,
            withdrawn=withdrawn,
            added=added,
            status_changes=status_changes,
        )
    return churn


@dataclass
class WeeklyConformance:
    """Weekly Action 4 conformance series for member ASes (§8.5)."""

    dates: list[date]
    #: Per week, OG_conformant percent per member AS.
    percentages: list[dict[int, float]]
    #: Per week, threshold verdict per member AS.
    verdicts: list[dict[int, bool]]
    #: ASNs whose conformance was deliberately perturbed.
    flapped: frozenset[int]


def weekly_member_conformance(
    world: World,
    n_weeks: int = 12,
    flap_fraction: float = 0.02,
    seed: int = 0,
) -> WeeklyConformance:
    """Generate weekly conformance snapshots with registration churn.

    The base week reproduces the world's snapshot; a small fraction of
    otherwise-conformant member ASes suffer a transient registration
    problem (an expired/changed route object) for a contiguous run of
    weeks — the paper's 11 flapping ASes.  Consistently unconformant ASes
    stay unconformant throughout, as §8.5 observed.
    """
    rng = np.random.default_rng(seed)
    snapshot = world.snapshot_date
    dates = [snapshot - timedelta(weeks=n_weeks - 1 - i) for i in range(n_weeks)]
    stats = origination_stats(world.ihr)
    members = sorted(world.members())

    base: dict[int, float] = {}
    totals: dict[int, int] = {}
    for asn in members:
        as_stats = stats.get(asn)
        if as_stats is None or as_stats.total == 0:
            continue  # trivially conformant ASes have no weekly series
        base[asn] = as_stats.og_conformant
        totals[asn] = as_stats.total

    thresholds = {
        asn: action4_threshold(
            world.manrs.program_of(asn, snapshot) or Program.ISP
        )
        for asn in base
    }
    conformant_asns = [
        asn for asn, pct in base.items() if pct >= thresholds[asn]
    ]
    n_flap = int(round(flap_fraction * len(conformant_asns)))
    flapped = (
        set(
            int(a)
            for a in rng.choice(conformant_asns, size=n_flap, replace=False)
        )
        if n_flap
        else set()
    )
    # Each flap is an event pair — the registration problem appearing
    # (+1) and clearing (-1) — replayed in week order against a set of
    # active dips, the same stream-of-changes shape the delta layer uses
    # for full worlds.  Draw order matches the old per-AS window loop, so
    # the series is numerically identical.
    dip_events: list[tuple[int, int, int]] = []
    for asn in flapped:
        start = int(rng.integers(0, max(1, n_weeks - 2)))
        length = int(rng.integers(1, 4))
        dip_events.append((start, asn, +1))
        dip_events.append((min(n_weeks, start + length), asn, -1))
    dip_events.sort()

    percentages: list[dict[int, float]] = []
    verdicts: list[dict[int, bool]] = []
    active: set[int] = set()
    cursor = 0
    for week in range(n_weeks):
        while cursor < len(dip_events) and dip_events[cursor][0] <= week:
            _, asn, direction = dip_events[cursor]
            if direction > 0:
                active.add(asn)
            else:
                active.discard(asn)
            cursor += 1
        week_pct: dict[int, float] = {}
        for asn, pct in base.items():
            if asn in active:
                # Enough prefixes lose registration to dip under the bar.
                total = totals[asn]
                deficit = max(1, int(np.ceil(total * 0.15)))
                pct = max(0.0, 100.0 * (round(pct / 100.0 * total) - deficit) / total)
            week_pct[asn] = pct
        percentages.append(week_pct)
        verdicts.append(
            {asn: pct >= thresholds[asn] for asn, pct in week_pct.items()}
        )
    return WeeklyConformance(
        dates=dates,
        percentages=percentages,
        verdicts=verdicts,
        flapped=frozenset(flapped),
    )
