"""Scenario: behaviour config, world builder, and historical timeline."""

from repro.scenario.build import build_world
from repro.scenario.config import (
    BehaviorConfig,
    FilteringBehavior,
    OriginationConfig,
    RegistrationBehavior,
    ScenarioConfig,
)
from repro.scenario.timeline import (
    GrowthPoint,
    SaturationPoint,
    Timeline,
    WeeklyConformance,
    weekly_member_conformance,
)
from repro.scenario.world import ASBehavior, Origination, World

__all__ = [
    "GrowthPoint",
    "SaturationPoint",
    "Timeline",
    "WeeklyConformance",
    "weekly_member_conformance",
    "ASBehavior",
    "BehaviorConfig",
    "FilteringBehavior",
    "Origination",
    "OriginationConfig",
    "RegistrationBehavior",
    "ScenarioConfig",
    "World",
    "build_world",
]
