"""Scenario configuration: the behavioural ground truth of the synthetic
Internet.

The paper *measures* hidden operator behaviour — how diligently networks
register routes in RPKI/IRR and whether they filter invalid customer
routes.  Our scenario makes that behaviour explicit and samples it per AS,
with parameters keyed by (size class, MANRS membership, program) and
calibrated against the May-2022 statistics reported in §8–§9 (see
DESIGN.md §5 for the target list).  The measurement pipeline then runs on
top, exactly as the paper's does, and the tests check that it recovers the
paper's shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.topology.classify import SizeClass

__all__ = [
    "RegistrationBehavior",
    "FilteringBehavior",
    "BehaviorConfig",
    "OriginationConfig",
    "ScenarioConfig",
]


@dataclass(frozen=True)
class RegistrationBehavior:
    """Registration diligence parameters for one population cell."""

    #: Probability the AS registers ROAs for all / none of its prefixes
    #: (the remainder registers a uniform fraction — the RPKI validity
    #: distribution in Figure 5a is bimodal for exactly this reason).
    rpki_all: float
    rpki_none: float
    #: Probability the AS has at least one misconfigured ROA (stale ASN,
    #: short maxLength, or AS0), making prefixes RPKI Invalid.
    rpki_misconfig: float
    #: Mean number of RPKI-Invalid prefixes for a misconfiguring AS.
    rpki_misconfig_mean: float
    #: Probability the AS registers IRR route objects for all / none of
    #: its prefixes.
    irr_all: float
    irr_none: float
    #: Probability that an AS's IRR records have gone stale (registered
    #: with an outdated origin → IRR Invalid).  §8.2 attributes the *lower*
    #: IRR validity of large MANRS networks to exactly this.
    irr_stale: float
    #: Mean fraction of this AS's registered objects that are stale,
    #: given staleness.
    irr_stale_fraction: float
    #: Range of the registered fraction for partially-registering ASes.
    rpki_partial_range: tuple[float, float] = (0.2, 0.9)
    irr_partial_range: tuple[float, float] = (0.55, 0.95)


@dataclass(frozen=True)
class FilteringBehavior:
    """Route-filtering deployment parameters for one population cell."""

    #: Probability of full ROV deployment (drop RPKI Invalid from anyone).
    rov: float
    #: Probability of IRR-based filtering of customer announcements
    #: (MANRS Action 1 for ISPs).
    filter_customers: float
    #: Range of the per-AS fraction of customer sessions actually covered
    #: by the Action 1 filters.  Partial coverage is why no large AS is
    #: fully Action 1 conformant (Table 2): with hundreds of customers,
    #: something always leaks.
    filter_coverage: tuple[float, float] = (0.9, 1.0)


# Calibration notes (paper May-2022 statistics → parameters):
#   small MANRS   60.1% all-valid / 23.6% none; no RPKI-Invalid origination
#   small nonM    24.7% all-valid / 68.1% none; 0.7% misconfiguring
#   medium MANRS  41.5% / 14.8%; 2.8% misconfiguring
#   medium nonM   23.8% / 41.4%; 4.5% misconfiguring
#   large MANRS   all originate some valid; 12.5% all-valid; 20.8% misconf
#   large nonM    11.8% none; 5.9% all-valid; 32.9% misconfiguring
_REGISTRATION: dict[tuple[SizeClass, bool], RegistrationBehavior] = {
    (SizeClass.SMALL, True): RegistrationBehavior(
        rpki_all=0.601, rpki_none=0.236, rpki_misconfig=0.0, rpki_misconfig_mean=0.0,
        irr_all=0.85, irr_none=0.03, irr_stale=0.05, irr_stale_fraction=0.5,
    ),
    (SizeClass.SMALL, False): RegistrationBehavior(
        rpki_all=0.247, rpki_none=0.681, rpki_misconfig=0.007, rpki_misconfig_mean=1.6,
        irr_all=0.80, irr_none=0.06, irr_stale=0.10, irr_stale_fraction=0.5,
    ),
    (SizeClass.MEDIUM, True): RegistrationBehavior(
        rpki_all=0.415, rpki_none=0.148, rpki_misconfig=0.028, rpki_misconfig_mean=1.6,
        irr_all=0.62, irr_none=0.02, irr_stale=0.18, irr_stale_fraction=0.35,
    ),
    (SizeClass.MEDIUM, False): RegistrationBehavior(
        rpki_all=0.238, rpki_none=0.414, rpki_misconfig=0.045, rpki_misconfig_mean=3.0,
        irr_all=0.58, irr_none=0.04, irr_stale=0.22, irr_stale_fraction=0.35,
    ),
    (SizeClass.LARGE, True): RegistrationBehavior(
        rpki_all=0.125, rpki_none=0.0, rpki_misconfig=0.21, rpki_misconfig_mean=2.5,
        irr_all=0.55, irr_none=0.0, irr_stale=0.85, irr_stale_fraction=0.35,
        rpki_partial_range=(0.5, 0.97), irr_partial_range=(0.7, 0.98),
    ),
    (SizeClass.LARGE, False): RegistrationBehavior(
        rpki_all=0.059, rpki_none=0.118, rpki_misconfig=0.33, rpki_misconfig_mean=8.0,
        irr_all=0.55, irr_none=0.0, irr_stale=0.55, irr_stale_fraction=0.14,
    ),
}

#: MANRS CDN-program members must be ~100% conformant (Finding 8.3: 17/20
#: fully, 3 at >98%): near-total registration, rare small leaks.
_CDN_MEMBER_REGISTRATION = RegistrationBehavior(
    rpki_all=0.90, rpki_none=0.0, rpki_misconfig=0.0, rpki_misconfig_mean=0.0,
    irr_all=1.0, irr_none=0.0, irr_stale=0.0, irr_stale_fraction=0.0,
    rpki_partial_range=(0.8, 0.98), irr_partial_range=(0.95, 1.0),
)

# Filtering calibration (§9.1, Figure 7a): fraction of large MANRS
# propagating zero RPKI-Invalids 45.9% vs 36.0% non-MANRS; medium and
# small essentially indistinguishable on RPKI, small MANRS better on IRR.
_FILTERING: dict[tuple[SizeClass, bool], FilteringBehavior] = {
    (SizeClass.SMALL, True): FilteringBehavior(
        rov=0.06, filter_customers=0.70, filter_coverage=(0.9, 1.0)
    ),
    (SizeClass.SMALL, False): FilteringBehavior(
        rov=0.05, filter_customers=0.40, filter_coverage=(0.8, 1.0)
    ),
    (SizeClass.MEDIUM, True): FilteringBehavior(
        rov=0.14, filter_customers=0.50, filter_coverage=(0.6, 0.95)
    ),
    (SizeClass.MEDIUM, False): FilteringBehavior(
        rov=0.11, filter_customers=0.40, filter_coverage=(0.6, 1.0)
    ),
    (SizeClass.LARGE, True): FilteringBehavior(
        rov=0.46, filter_customers=0.85, filter_coverage=(0.5, 0.85)
    ),
    (SizeClass.LARGE, False): FilteringBehavior(
        rov=0.36, filter_customers=0.35, filter_coverage=(0.3, 0.75)
    ),
}


@dataclass
class BehaviorConfig:
    """Behaviour tables, overridable per experiment/ablation."""

    registration: dict[tuple[SizeClass, bool], RegistrationBehavior] = field(
        default_factory=lambda: dict(_REGISTRATION)
    )
    cdn_member_registration: RegistrationBehavior = _CDN_MEMBER_REGISTRATION
    filtering: dict[tuple[SizeClass, bool], FilteringBehavior] = field(
        default_factory=lambda: dict(_FILTERING)
    )
    #: When a stale/misconfigured record points at the wrong origin, whom
    #: it points at — drives Table 1's Sibling / C-P / Unrelated split.
    wrong_origin_sibling: float = 0.45
    wrong_origin_neighbor: float = 0.25  # customer or provider
    # remainder: an unrelated AS


@dataclass
class OriginationConfig:
    """How many prefixes each AS announces and how large they are.

    ``prefix_lengths`` maps a category key to (lengths, weights) used when
    allocating that AS's delegations; ``count_range`` to (low, high)
    announced-prefix counts (inclusive).
    """

    count_range: dict[str, tuple[int, int]] = field(
        default_factory=lambda: {
            "stub": (1, 4),
            "small_isp": (2, 8),
            "medium_isp": (4, 30),
            "large_transit": (50, 140),
            "cdn": (30, 110),
            "flagship_transit": (120, 180),
            "flagship_cdn": (150, 220),
        }
    )
    prefix_lengths: dict[str, tuple[tuple[int, ...], tuple[float, ...]]] = field(
        default_factory=lambda: {
            "stub": ((21, 22, 23, 24), (0.1, 0.2, 0.3, 0.4)),
            "small_isp": ((20, 21, 22, 23), (0.15, 0.25, 0.3, 0.3)),
            "medium_isp": ((17, 18, 19, 20, 21), (0.1, 0.15, 0.25, 0.25, 0.25)),
            "large_transit": ((15, 16, 17, 18, 19, 20), (0.08, 0.12, 0.2, 0.25, 0.2, 0.15)),
            "cdn": ((16, 17, 18, 19, 20, 21), (0.05, 0.1, 0.2, 0.25, 0.2, 0.2)),
            "flagship_transit": ((13, 14, 15, 16), (0.2, 0.3, 0.3, 0.2)),
            "flagship_cdn": ((14, 15, 16, 17), (0.2, 0.3, 0.3, 0.2)),
        }
    )
    #: Probability an AS also announces IPv6 space, by category key;
    #: v6 prefixes get the same registration treatment as v4 ones.
    v6_probability: dict[str, float] = field(
        default_factory=lambda: {
            "stub": 0.15,
            "small_isp": 0.25,
            "medium_isp": 0.4,
            "large_transit": 0.7,
            "cdn": 0.8,
            "flagship_transit": 1.0,
            "flagship_cdn": 1.0,
        }
    )
    v6_count_range: tuple[int, int] = (1, 3)
    v6_lengths: tuple[int, ...] = (32, 36, 40, 44, 48)
    #: Probability that an announced prefix is a traffic-engineering
    #: de-aggregation (a more-specific of the registered block) — the IRR
    #: invalid-length case §3 treats as conformant.
    deaggregation_probability: float = 0.07
    #: Probability a delegation is legacy space that cannot be certified
    #: in the RPKI (§8.6 cites this as capping saturation), by RIR name.
    legacy_probability: dict[str, float] = field(
        default_factory=lambda: {
            "ARIN": 0.22, "RIPE": 0.10, "APNIC": 0.08,
            "LACNIC": 0.04, "AFRINIC": 0.04,
        }
    )


@dataclass
class ScenarioConfig:
    """Everything needed to build one synthetic world."""

    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    origination: OriginationConfig = field(default_factory=OriginationConfig)
    #: The analysis snapshot date (the paper's is May 1, 2022).
    snapshot_date: date = date(2022, 5, 1)
    first_year: int = 2015
    #: RPKI adoption-year weights for MANRS members / non-members
    #: (2015..2022) — members adopted earlier and faster (Figure 6).
    member_adoption_weights: tuple[float, ...] = (
        0.04, 0.05, 0.06, 0.09, 0.14, 0.26, 0.22, 0.14,
    )
    nonmember_adoption_weights: tuple[float, ...] = (
        0.02, 0.03, 0.04, 0.06, 0.10, 0.18, 0.27, 0.30,
    )
    #: Collector shape.
    n_medium_vantage_points: int = 25
    n_small_vantage_points: int = 5
