"""AS Hegemony metric (Fontugne et al.)."""

from repro.hegemony.scores import DEFAULT_TRIM, global_hegemony, hegemony_scores

__all__ = ["DEFAULT_TRIM", "global_hegemony", "hegemony_scores"]
