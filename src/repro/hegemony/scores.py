"""AS Hegemony scores (Fontugne, Shah & Aben, PAM 2018).

For a destination prefix-origin, the *local hegemony* of an AS is the
fraction of viewpoint paths toward that destination that traverse it,
robustified by trimming a share of the viewpoint distribution at both ends
(the original paper trims 10% to discount viewpoint bias).  Scores lie in
[0, 1]; the origin AS trivially scores 1 and is therefore excluded here
and handled by the IHR pipeline's prefix-origin dataset (§5.3).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.net.asn import strip_prepending

__all__ = ["hegemony_scores", "global_hegemony", "DEFAULT_TRIM"]

#: Trim fraction from each end of the viewpoint distribution.
DEFAULT_TRIM = 0.1


def hegemony_scores(
    paths: Sequence[tuple[int, ...]],
    trim: float = DEFAULT_TRIM,
    prestripped: bool = False,
) -> dict[int, float]:
    """Local hegemony of every transit AS over the given viewpoint paths.

    Each path runs viewpoint-first, origin-last.  The viewpoint AS and the
    origin AS are excluded (the former is monitor bias, the latter is the
    trivial hegemony-1 case).  Returns only ASes with a non-zero trimmed
    score.

    ``prestripped=True`` declares the paths already prepending-free
    (e.g. shared with a caller that stripped them for its own analysis),
    skipping the per-path :func:`strip_prepending` pass.
    """
    if not 0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    n_paths = len(paths)
    if n_paths == 0:
        return {}
    appearances: dict[int, int] = {}
    get = appearances.get
    for path in paths:
        stripped = path if prestripped else strip_prepending(path)
        # Stripped paths have no adjacent repeats, so paths with one or
        # two transits (the overwhelming majority at collector vantage
        # points) need no dedup set; longer middles could still revisit
        # an AS non-adjacently, so they keep the set pass.
        length = len(stripped)
        if length <= 2:
            continue
        if length == 3:
            asn = stripped[1]
            appearances[asn] = get(asn, 0) + 1
        elif length == 4:
            asn = stripped[1]
            appearances[asn] = get(asn, 0) + 1
            asn = stripped[2]
            appearances[asn] = get(asn, 0) + 1
        else:
            for asn in set(stripped[1:-1]):
                appearances[asn] = get(asn, 0) + 1
    cut = math.floor(n_paths * trim)
    kept = n_paths - 2 * cut
    if kept <= 0:
        return {}
    scores: dict[int, float] = {}
    for asn, count in appearances.items():
        # Trimmed mean of an indicator vector: with c = count of ones,
        # sorting puts the zeros first; cutting `cut` from each end leaves
        # min(max(c - cut, 0), kept) ones.
        ones_kept = min(max(count - cut, 0), kept)
        score = ones_kept / kept
        if score > 0:
            scores[asn] = score
    return scores


def global_hegemony(
    local_scores: Iterable[dict[int, float]],
) -> dict[int, float]:
    """Global AS hegemony: mean local hegemony over all destinations.

    Fontugne et al. define an AS's global hegemony as the average of its
    local hegemony over every routed destination (absent destinations
    contribute 0).  Scores express how much of the Internet's routing
    depends on an AS — the "thin bridges" of AS connectivity.

    ``local_scores`` may be any iterable (e.g. a generator streaming
    per-destination scores out of a partitioned hegemony pass); it is
    consumed exactly once and never materialised here.
    """
    n_destinations = 0
    totals: dict[int, float] = {}
    for scores in local_scores:
        n_destinations += 1
        for asn, score in scores.items():
            totals[asn] = totals.get(asn, 0.0) + score
    if n_destinations == 0:
        return {}
    return {
        asn: total / n_destinations for asn, total in totals.items()
    }
