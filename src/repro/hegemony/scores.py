"""AS Hegemony scores (Fontugne, Shah & Aben, PAM 2018).

For a destination prefix-origin, the *local hegemony* of an AS is the
fraction of viewpoint paths toward that destination that traverse it,
robustified by trimming a share of the viewpoint distribution at both ends
(the original paper trims 10% to discount viewpoint bias).  Scores lie in
[0, 1]; the origin AS trivially scores 1 and is therefore excluded here
and handled by the IHR pipeline's prefix-origin dataset (§5.3).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.net.asn import strip_prepending

__all__ = ["hegemony_scores", "global_hegemony", "DEFAULT_TRIM"]

#: Trim fraction from each end of the viewpoint distribution.
DEFAULT_TRIM = 0.1


def hegemony_scores(
    paths: Sequence[tuple[int, ...]],
    trim: float = DEFAULT_TRIM,
) -> dict[int, float]:
    """Local hegemony of every transit AS over the given viewpoint paths.

    Each path runs viewpoint-first, origin-last.  The viewpoint AS and the
    origin AS are excluded (the former is monitor bias, the latter is the
    trivial hegemony-1 case).  Returns only ASes with a non-zero trimmed
    score.
    """
    if not 0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    n_paths = len(paths)
    if n_paths == 0:
        return {}
    appearances: dict[int, int] = {}
    for path in paths:
        stripped = strip_prepending(path)
        for asn in set(stripped[1:-1]):
            appearances[asn] = appearances.get(asn, 0) + 1
    cut = math.floor(n_paths * trim)
    kept = n_paths - 2 * cut
    if kept <= 0:
        return {}
    scores: dict[int, float] = {}
    for asn, count in appearances.items():
        # Trimmed mean of an indicator vector: with c = count of ones,
        # sorting puts the zeros first; cutting `cut` from each end leaves
        # min(max(c - cut, 0), kept) ones.
        ones_kept = min(max(count - cut, 0), kept)
        score = ones_kept / kept
        if score > 0:
            scores[asn] = score
    return scores


def global_hegemony(
    local_scores: Sequence[dict[int, float]],
) -> dict[int, float]:
    """Global AS hegemony: mean local hegemony over all destinations.

    Fontugne et al. define an AS's global hegemony as the average of its
    local hegemony over every routed destination (absent destinations
    contribute 0).  Scores express how much of the Internet's routing
    depends on an AS — the "thin bridges" of AS connectivity.
    """
    n_destinations = len(local_scores)
    if n_destinations == 0:
        return {}
    totals: dict[int, float] = {}
    for scores in local_scores:
        for asn, score in scores.items():
            totals[asn] = totals.get(asn, 0.0) + score
    return {
        asn: total / n_destinations for asn, total in totals.items()
    }
