"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are grouped
by the subsystem that raises them; modules raise the most specific class
available rather than bare ``ValueError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PrefixError(ReproError, ValueError):
    """An IP prefix string or (value, length) pair is malformed."""


class ASNError(ReproError, ValueError):
    """An AS number is out of range or an AS-path string is malformed."""


class AllocationError(ReproError):
    """The address allocation engine cannot satisfy a request."""


class TopologyError(ReproError):
    """The AS topology is inconsistent (unknown AS, bad relationship...)."""


class RPSLError(ReproError, ValueError):
    """An RPSL object cannot be parsed or serialised."""


class RPKIError(ReproError):
    """An RPKI object (certificate, ROA) is structurally invalid."""


class DatasetError(ReproError):
    """A dataset snapshot is missing, duplicated, or malformed."""


class ScenarioError(ReproError):
    """A scenario configuration is internally inconsistent."""


class DeltaError(ReproError):
    """A delta event cannot be applied to the current world state."""
