"""Event streams over built worlds, with incremental recomputation.

The delta layer turns a static :class:`~repro.scenario.world.World`
into something with a time axis: :mod:`~repro.delta.events` defines
what can change, :class:`~repro.delta.live.LiveWorld` applies changes
incrementally (cover-set re-validation, targeted re-propagation, cached
transit scoring), and :func:`~repro.delta.rebuild.cold_rebuild` defines
the reference semantics the live path must digest-equal at every
instant.  :func:`~repro.delta.trace.synthesize_events` produces the
deterministic traces that the tests, ``repro replay``, and the delta
benchmark all share.
"""

from repro.delta.cover import RouteCoverIndex, vrp_churn, vrp_delta
from repro.delta.events import (
    DeltaState,
    Event,
    LinkAdded,
    MemberJoined,
    MemberLeft,
    PolicyFlipped,
    RoaExpired,
    RoaIssued,
    RouteObjectAdded,
    RouteObjectRemoved,
    apply_raw,
)
from repro.delta.live import LiveWorld, run_job_at
from repro.delta.rebuild import cold_rebuild, recompute_world, route_table
from repro.delta.trace import EVENT_KINDS, synthesize_events

__all__ = [
    "RoaIssued",
    "RoaExpired",
    "RouteObjectAdded",
    "RouteObjectRemoved",
    "MemberJoined",
    "MemberLeft",
    "LinkAdded",
    "PolicyFlipped",
    "Event",
    "DeltaState",
    "apply_raw",
    "RouteCoverIndex",
    "vrp_delta",
    "vrp_churn",
    "route_table",
    "recompute_world",
    "cold_rebuild",
    "LiveWorld",
    "run_job_at",
    "EVENT_KINDS",
    "synthesize_events",
]
