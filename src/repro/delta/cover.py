"""Cover sets: which routes can a registry change possibly affect?

Both RFC 6811 (RPKI) and the paper's IRR procedure classify a route
``(prefix, origin)`` from the set of registry objects whose prefix
*contains* the route's prefix.  Adding or removing an object with prefix
``c`` can therefore only change verdicts of routes whose prefix lies
inside ``c`` — same address family, ``c.first <= p.first`` and
``p.last <= c.last``.  :class:`RouteCoverIndex` answers "which of my
routes does this changed-prefix set cover" with one ``searchsorted``
slice per changed prefix, which is what lets the live world re-validate
a handful of routes per event instead of the whole table.

The over-approximation is sound but not tight: a covered route's verdict
may come out unchanged (the changed object matched a different origin,
say) — the delta layer re-validates the cover set and only regroups
actual flips.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.net.prefix import Prefix
from repro.rpki.roa import VRP

__all__ = ["RouteCoverIndex", "vrp_delta", "vrp_churn"]


class RouteCoverIndex:
    """A fixed route set, indexed for containment-by-changed-prefix.

    Routes are ``(prefix, origin)`` pairs; :meth:`affected` returns the
    sorted, de-duplicated *indices* (into the construction sequence) of
    every route some changed prefix contains.  The numpy and pure-python
    paths scan the identical per-version sorted arrays and agree exactly
    (pinned by a Hypothesis property test); which one runs is decided by
    the kernel mode at call time, like every other kernel in the repo.
    """

    def __init__(self, routes: Sequence[tuple[Prefix, int]]):
        by_version: dict[int, list[tuple[int, int, int]]] = {}
        for index, (prefix, _) in enumerate(routes):
            by_version.setdefault(prefix.version, []).append(
                (prefix.first, prefix.last, index)
            )
        self._entries: dict[int, list[tuple[int, int, int]]] = {}
        self._firsts: dict[int, list[int]] = {}
        self._arrays: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for version, entries in by_version.items():
            entries.sort()
            self._entries[version] = entries
            self._firsts[version] = [first for first, _, _ in entries]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    def _version_arrays(
        self, version: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        arrays = self._arrays.get(version)
        if arrays is None:
            entries = self._entries[version]
            firsts = np.fromiter(
                (first for first, _, _ in entries),
                dtype=np.int64,
                count=len(entries),
            )
            lasts = np.fromiter(
                (last for _, last, _ in entries),
                dtype=np.int64,
                count=len(entries),
            )
            indices = np.fromiter(
                (index for _, _, index in entries),
                dtype=np.int64,
                count=len(entries),
            )
            arrays = (firsts, lasts, indices)
            self._arrays[version] = arrays
        return arrays

    def affected(self, changed: Iterable[Prefix]) -> list[int]:
        """Indices of routes contained in any changed prefix (sorted)."""
        if kernels.use_numpy():
            return self._affected_numpy(changed)
        return self._affected_python(changed)

    def _affected_python(self, changed: Iterable[Prefix]) -> list[int]:
        hits: set[int] = set()
        for prefix in changed:
            entries = self._entries.get(prefix.version)
            if not entries:
                continue
            firsts = self._firsts[prefix.version]
            low = bisect_left(firsts, prefix.first)
            high = bisect_right(firsts, prefix.last)
            for first, last, index in entries[low:high]:
                if last <= prefix.last:
                    hits.add(index)
        return sorted(hits)

    def _affected_numpy(self, changed: Iterable[Prefix]) -> list[int]:
        hits: set[int] = set()
        v6_pending: list[Prefix] = []
        for prefix in changed:
            if prefix.version not in self._entries:
                continue
            if prefix.version == 6:
                # IPv6 address integers exceed int64; the bisect walk
                # over the same sorted entries is exact and v6 tables
                # are a sliver of the route set.
                v6_pending.append(prefix)
                continue
            firsts, lasts, indices = self._version_arrays(prefix.version)
            low = int(np.searchsorted(firsts, prefix.first, side="left"))
            high = int(np.searchsorted(firsts, prefix.last, side="right"))
            if low >= high:
                continue
            mask = lasts[low:high] <= prefix.last
            hits.update(int(i) for i in indices[low:high][mask])
        if v6_pending:
            hits.update(self._affected_python(v6_pending))
        return sorted(hits)


def vrp_delta(old: Iterable[VRP], new: Iterable[VRP]) -> set[Prefix]:
    """Prefixes whose VRP entries differ between two VRP multisets.

    VRP lists compare as multisets (the relying party can emit genuine
    duplicates from duplicate ROAs, and dropping one of two equal VRPs
    changes nothing).  The returned prefixes drive the cover-set
    re-validation; an empty result certifies that every route's covering
    VRP set — hence every RFC 6811 verdict — is unchanged.
    """
    old_counts = Counter(old)
    new_counts = Counter(new)
    changed: set[Prefix] = set()
    for vrp, count in old_counts.items():
        if new_counts.get(vrp, 0) != count:
            changed.add(vrp.prefix)
    for vrp, count in new_counts.items():
        if old_counts.get(vrp, 0) != count:
            changed.add(vrp.prefix)
    return changed


def vrp_churn(old: Iterable[VRP], new: Iterable[VRP]) -> tuple[int, int]:
    """``(added, removed)`` VRP counts between two multisets."""
    old_counts = Counter(old)
    new_counts = Counter(new)
    added = sum(
        max(count - old_counts.get(vrp, 0), 0)
        for vrp, count in new_counts.items()
    )
    removed = sum(
        max(count - new_counts.get(vrp, 0), 0)
        for vrp, count in old_counts.items()
    )
    return added, removed
