"""Synthetic event traces: applicable-by-construction event streams.

:func:`synthesize_events` draws a stream of delta events against a
private :class:`~repro.delta.events.DeltaState` clone, applying each
event before generating the next, so every event in the returned list is
*applicable* when replayed in order — ROAs expire only if published,
route objects are removed only if registered, memberships leave only if
joined.  The same trace therefore replays cleanly through both
:class:`~repro.delta.live.LiveWorld` and
:func:`~repro.delta.rebuild.cold_rebuild`, which is exactly what the
replay==rebuild tests, ``repro replay``, and ``benchmarks/run.py
--delta`` need.

Determinism: the stream is a pure function of ``(world, n, seed,
kinds)`` — a ``numpy`` Generator seeded explicitly, draws in a fixed
order, and all candidate pools iterated in sorted/registration order.
"""

from __future__ import annotations

from datetime import date
from typing import Sequence

import numpy as np

from repro.delta.events import (
    DeltaState,
    Event,
    LinkAdded,
    MemberJoined,
    MemberLeft,
    PolicyFlipped,
    RoaExpired,
    RoaIssued,
    RouteObjectAdded,
    RouteObjectRemoved,
    apply_raw,
)
from repro.irr.objects import RouteObject
from repro.manrs.actions import Program
from repro.manrs.registry import Participant
from repro.rpki.roa import ROA
from repro.scenario.world import World
from repro.topology.model import Relationship

__all__ = ["EVENT_KINDS", "synthesize_events"]

#: Draw weights loosely mirror observed registry churn: ROA and route
#: object turnover dominates, membership and topology moves are rare.
_WEIGHTED_KINDS: tuple[tuple[str, float], ...] = (
    ("RoaIssued", 0.22),
    ("RoaExpired", 0.18),
    ("RouteObjectAdded", 0.18),
    ("RouteObjectRemoved", 0.12),
    ("MemberJoined", 0.10),
    ("MemberLeft", 0.06),
    ("PolicyFlipped", 0.10),
    ("LinkAdded", 0.04),
)

EVENT_KINDS: tuple[str, ...] = tuple(kind for kind, _ in _WEIGHTED_KINDS)

_ROA_NOT_BEFORE = date(2015, 1, 1)
_ROA_NOT_AFTER = date(2032, 1, 1)


def _pick(rng: np.random.Generator, items: Sequence):
    return items[int(rng.integers(len(items)))]


class _Synthesizer:
    def __init__(self, world: World, rng: np.random.Generator, seed: int):
        self._world = world
        self._rng = rng
        self._seed = seed
        self._state = DeltaState.from_world(world)
        self._origin_asns = sorted(
            asn
            for asn, originations in world.originations.items()
            if originations
        )
        if not self._origin_asns:
            raise ValueError("world announces no routes; nothing to perturb")
        self._trust_anchors = [
            certificate
            for certificate_id, certificate in sorted(
                self._state.repository.certificates.items()
            )
            if certificate.issuer_id is None
        ]
        self._counter = 0

    def _origination(self):
        asn = _pick(self._rng, self._origin_asns)
        return asn, _pick(self._rng, self._world.originations[asn])

    def _roa_issued(self) -> Event:
        asn, origination = self._origination()
        anchor = next(
            certificate
            for certificate in self._trust_anchors
            if certificate.covers(origination.block)
        )
        return RoaIssued(
            roa=ROA(
                prefix=origination.block,
                asn=asn,
                max_length=origination.prefix.length,
                certificate_id=anchor.certificate_id,
                not_before=_ROA_NOT_BEFORE,
                not_after=_ROA_NOT_AFTER,
            )
        )

    def _roa_expired(self) -> Event:
        roas = self._state.repository.roas
        if not roas:
            return self._roa_issued()
        return RoaExpired(roa=_pick(self._rng, roas))

    def _route_object_added(self) -> Event:
        asn, origination = self._origination()
        return RouteObjectAdded(
            route=RouteObject(
                prefix=origination.block,
                origin=asn,
                source="RADB",
                mnt_by=f"MAINT-DELTA-{asn}",
                descr=f"delta route of AS{asn}",
                created=date(2016, 1, 1),
                last_modified=date(2022, 1, 1),
            )
        )

    def _route_object_removed(self) -> Event:
        registered = [
            route
            for database in self._state.irr.databases
            for route in database.all_routes()
        ]
        if not registered:
            return self._route_object_added()
        return RouteObjectRemoved(route=_pick(self._rng, registered))

    def _member_joined(self) -> Event:
        asn = _pick(self._rng, self._state.topology.asns)
        self._counter += 1
        return MemberJoined(
            participant=Participant(
                org_id=f"ORG-DELTA-{self._seed}-{self._counter}",
                program=Program.ISP,
                asns=(asn,),
                joined=self._world.snapshot_date,
            )
        )

    def _member_left(self) -> Event:
        participants = self._state.manrs.participants
        if not participants:
            return self._member_joined()
        participant = _pick(self._rng, participants)
        return MemberLeft(
            org_id=participant.org_id, program=participant.program
        )

    def _link_added(self) -> Event:
        asns = self._state.topology.asns
        for _ in range(50):
            a = _pick(self._rng, asns)
            b = _pick(self._rng, asns)
            if a != b and not self._state.topology.linked(a, b):
                return LinkAdded(a=a, b=b, relationship=Relationship.PEER)
        return self._policy_flipped()

    def _policy_flipped(self) -> Event:
        return PolicyFlipped(asn=_pick(self._rng, self._state.topology.asns))

    def generate(self, kind: str) -> Event:
        maker = {
            "RoaIssued": self._roa_issued,
            "RoaExpired": self._roa_expired,
            "RouteObjectAdded": self._route_object_added,
            "RouteObjectRemoved": self._route_object_removed,
            "MemberJoined": self._member_joined,
            "MemberLeft": self._member_left,
            "LinkAdded": self._link_added,
            "PolicyFlipped": self._policy_flipped,
        }.get(kind)
        if maker is None:
            raise ValueError(f"unknown event kind {kind!r}")
        event = maker()
        apply_raw(self._state, event)
        return event


def synthesize_events(
    world: World,
    n: int | None = None,
    seed: int = 0,
    kinds: Sequence[str] | None = None,
) -> list[Event]:
    """A deterministic, applicable-in-order event stream for ``world``.

    Either ``n`` draws from the weighted kind distribution, or one event
    per entry of an explicit ``kinds`` list (how the Hypothesis tests
    steer coverage).  Events are generated against a private state clone
    that each event is applied to before the next is drawn, so the whole
    list replays without :class:`~repro.errors.DeltaError`.
    """
    if (n is None) == (kinds is None):
        raise ValueError("pass exactly one of n= or kinds=")
    rng = np.random.default_rng(seed)
    synthesizer = _Synthesizer(world, rng, seed)
    if kinds is None:
        weights = np.array([weight for _, weight in _WEIGHTED_KINDS])
        cumulative = np.cumsum(weights / weights.sum())
        kinds = [
            EVENT_KINDS[int(np.searchsorted(cumulative, rng.random()))]
            for _ in range(n)
        ]
    return [synthesizer.generate(kind) for kind in kinds]
