"""The delta event vocabulary and the mutable state events apply to.

A built :class:`~repro.scenario.world.World` is immutable in practice:
every derived artifact (VRPs, RIB, IHR tables) was computed from the
registries as they stood at build time.  The delta layer models *change*
as a stream of small events — ROA churn, IRR edits, MANRS membership
moves, topology growth, policy flips — applied to a
:class:`DeltaState`: independent clones of the world's mutable inputs
(registries, topology, policies) that events mutate in place.

Two consumers share :func:`apply_raw`:

* :func:`repro.delta.rebuild.cold_rebuild` applies a whole event stream
  and re-runs the full measurement pipeline — the reference semantics;
* :class:`repro.delta.live.LiveWorld` applies events one at a time and
  recomputes only what each event can affect.

Both paths mutate state through the same function, which is what makes
"replay digest-equals rebuild" a meaningful invariant rather than two
independent interpretations of the same event.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.bgp.policy import ASPolicy
from repro.errors import DatasetError, DeltaError, RPSLError, TopologyError
from repro.irr.database import IRRCollection, IRRDatabase
from repro.irr.objects import RouteObject
from repro.manrs.actions import Program
from repro.manrs.registry import MANRSRegistry, Participant
from repro.rpki.ca import RPKIRepository
from repro.rpki.roa import ROA
from repro.scenario.world import World
from repro.topology.model import ASTopology, Relationship

__all__ = [
    "RoaIssued",
    "RoaExpired",
    "RouteObjectAdded",
    "RouteObjectRemoved",
    "MemberJoined",
    "MemberLeft",
    "LinkAdded",
    "PolicyFlipped",
    "Event",
    "DeltaState",
    "apply_raw",
]


@dataclass(frozen=True)
class RoaIssued:
    """A new ROA is published to the repository."""

    roa: ROA


@dataclass(frozen=True)
class RoaExpired:
    """A published ROA is withdrawn (or ages out of the repository)."""

    roa: ROA


@dataclass(frozen=True)
class RouteObjectAdded:
    """A route object is registered in the IRR database it names."""

    route: RouteObject


@dataclass(frozen=True)
class RouteObjectRemoved:
    """A route object is deleted from its IRR database."""

    route: RouteObject


@dataclass(frozen=True)
class MemberJoined:
    """An organisation registers in a MANRS program."""

    participant: Participant


@dataclass(frozen=True)
class MemberLeft:
    """An organisation's membership in one program ends."""

    org_id: str
    program: Program


@dataclass(frozen=True)
class LinkAdded:
    """A new inter-AS link appears (for PROVIDER_CUSTOMER, ``a`` is the
    provider)."""

    a: int
    b: int
    relationship: Relationship = Relationship.PEER


@dataclass(frozen=True)
class PolicyFlipped:
    """One boolean field of an AS's import policy toggles (ROV on/off by
    default)."""

    asn: int
    field: str = "rov"


Event = Union[
    RoaIssued,
    RoaExpired,
    RouteObjectAdded,
    RouteObjectRemoved,
    MemberJoined,
    MemberLeft,
    LinkAdded,
    PolicyFlipped,
]


def _clone_irr(irr: IRRCollection) -> IRRCollection:
    """An independent IRR collection with equal serialised form.

    Route objects re-enter each database clone in ``all_routes`` address
    order; the deferred-flush sort is stable, so per-node value order —
    and therefore the database dump — matches the original exactly.
    """
    clone = IRRCollection()
    for database in irr.databases:
        copy = IRRDatabase(
            name=database.name, authoritative_for=database.authoritative_for
        )
        for route in database.all_routes():
            copy.add_route(route)
        copy._aut_nums = dict(database._aut_nums)  # noqa: SLF001
        copy._as_sets = dict(database._as_sets)  # noqa: SLF001
        clone.add_database(copy)
    return clone


@dataclass
class DeltaState:
    """The mutable inputs of a world, cloned so events never touch the
    base ``World`` (which stays valid as the rebuild/replay baseline)."""

    topology: ASTopology
    policies: dict[int, ASPolicy]
    repository: RPKIRepository
    irr: IRRCollection
    manrs: MANRSRegistry
    #: Set once any event mutates the topology; consumers re-derive
    #: topology-dependent artifacts (size classes) only when this is set.
    topology_changed: bool = False

    @classmethod
    def from_world(cls, world: World) -> "DeltaState":
        """Clone a built world's mutable inputs."""
        repository = world.rpki_repository
        return cls(
            topology=world.topology.copy(),
            policies=dict(world.policies),
            repository=RPKIRepository(
                certificates=dict(repository.certificates),
                roas=list(repository.roas),
                _next_cert=repository._next_cert,  # noqa: SLF001
            ),
            irr=_clone_irr(world.irr),
            manrs=world.manrs.copy(),
        )


def apply_raw(state: DeltaState, event: Event) -> str:
    """Apply one event to the raw state; returns the affected domain.

    The returned tag (``rpki`` / ``irr`` / ``manrs`` / ``topology`` /
    ``policy``) tells incremental consumers which derived artifacts the
    event can possibly touch.  Raises :class:`DeltaError` when the event
    does not apply to the current state (withdrawing an absent ROA,
    duplicating a membership, linking unknown ASes, ...).
    """
    if isinstance(event, RoaIssued):
        state.repository.add_roa(event.roa)
        return "rpki"
    if isinstance(event, RoaExpired):
        try:
            state.repository.roas.remove(event.roa)
        except ValueError:
            raise DeltaError(
                f"cannot expire unpublished ROA for {event.roa.prefix}"
            ) from None
        return "rpki"
    if isinstance(event, RouteObjectAdded):
        try:
            state.irr.database(event.route.source).add_route(event.route)
        except RPSLError as error:
            raise DeltaError(str(error)) from error
        return "irr"
    if isinstance(event, RouteObjectRemoved):
        try:
            database = state.irr.database(event.route.source)
        except RPSLError as error:
            raise DeltaError(str(error)) from error
        if not database.remove_route(event.route):
            raise DeltaError(
                f"cannot remove unregistered route object for "
                f"{event.route.prefix}"
            )
        return "irr"
    if isinstance(event, MemberJoined):
        try:
            state.manrs.add(event.participant)
        except DatasetError as error:
            raise DeltaError(str(error)) from error
        return "manrs"
    if isinstance(event, MemberLeft):
        try:
            state.manrs.remove(event.org_id, event.program)
        except DatasetError as error:
            raise DeltaError(str(error)) from error
        return "manrs"
    if isinstance(event, LinkAdded):
        try:
            state.topology.add_link(event.a, event.b, event.relationship)
        except TopologyError as error:
            raise DeltaError(str(error)) from error
        state.topology_changed = True
        return "topology"
    if isinstance(event, PolicyFlipped):
        if event.asn not in state.topology:
            raise DeltaError(f"policy flip on unknown AS{event.asn}")
        policy = state.policies.get(event.asn, ASPolicy())
        current = getattr(policy, event.field, None)
        if not isinstance(current, bool):
            raise DeltaError(
                f"policy field {event.field!r} is not a boolean toggle"
            )
        state.policies[event.asn] = replace(
            policy, **{event.field: not current}
        )
        return "policy"
    raise DeltaError(f"unknown event type {type(event).__name__}")
